"""Quickstart: train and evaluate a KG embedding model with a classic scoring function.

Run with::

    python examples/quickstart.py

The example builds the synthetic WN18RR-like benchmark, trains a DistMult model with the
1-vs-all multiclass log-loss, and reports filtered link-prediction metrics on the test
split -- the smallest end-to-end path through the library.
"""

from repro.bench import format_table
from repro.datasets import load_benchmark
from repro.eval import RankingEvaluator
from repro.models import KGEModel, Trainer, TrainerConfig
from repro.scoring import named_structure, render_structure


def main() -> None:
    # 1. Load a benchmark (a pattern-controlled synthetic stand-in for WN18RR).
    graph = load_benchmark("wn18rr_like", seed=0)
    print(graph)
    print(format_table([graph.statistics().as_row()], title="dataset statistics"))

    # 2. Pick a scoring function.  Classic bilinear models are named block structures.
    structure = named_structure("distmult")
    print("\nscoring function:", render_structure(structure))

    # 3. Train entity / relation embeddings with the multiclass log-loss and Adagrad.
    model = KGEModel(
        num_entities=graph.num_entities,
        num_relations=graph.num_relations,
        dim=48,
        scorers=structure,
        seed=0,
    )
    config = TrainerConfig(epochs=30, batch_size=256, learning_rate=0.5, valid_every=5, patience=3, seed=0)
    result = Trainer(config).fit(model, graph)
    print(f"\ntrained {result.epochs_run} epochs, best validation MRR {result.best_valid_mrr:.3f}")

    # 4. Evaluate with the standard filtered link-prediction protocol.
    metrics = RankingEvaluator(graph).evaluate(model, split="test")
    print(format_table([metrics.as_row()], title="filtered test metrics"))


if __name__ == "__main__":
    main()
