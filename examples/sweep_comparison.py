"""Sharded fair-comparison sweeps through the orchestrator, as a library call.

Run with::

    PYTHONPATH=src python examples/sweep_comparison.py

The example is the programmatic face of ``python -m repro sweep``: it declares a
(searcher x seed) grid as a :class:`~repro.runtime.orchestrator.SweepConfig`, runs it
on a 2-worker pool through :class:`~repro.runtime.orchestrator.SweepOrchestrator`,
and prints the aggregated per-searcher report (the paper's Figure 2 / Table IX
comparison axes).  It then demonstrates the two fault-tolerance properties the
orchestrator guarantees:

1. **resume** -- a second ``run(resume=True)`` over the same sweep directory skips
   every finished shard (nothing recomputes) and reproduces the identical report;
2. **determinism** -- a serial re-run of the same grid in a fresh directory yields a
   timing-stripped report that is bit-identical to the pooled run's, which is why a
   crashed-and-requeued shard can never change a comparison.
"""

import tempfile
import time
from pathlib import Path

from repro.runtime import SweepConfig, SweepOrchestrator, strip_timing
from repro.search.base import SearchBudget


def build_config(max_workers: int) -> SweepConfig:
    """A small search-only grid: ERAS vs random search, two seeds each."""
    return SweepConfig(
        searchers=("eras", "random"),
        seeds=(0, 1),
        datasets=("wn18rr_like",),
        budgets=(SearchBudget(max_steps=2),),
        scale=0.5,
        num_groups=2,
        search_epochs=2,
        num_candidates=4,
        derive_samples=8,
        dim=16,
        proxy_epochs=2,
        train_final=False,
        max_workers=max_workers,
    )


def main() -> None:
    scratch = Path(tempfile.mkdtemp(prefix="repro-sweep-example-"))

    print("=== pooled sweep (2 workers) ===")
    started = time.perf_counter()
    pooled = SweepOrchestrator(build_config(max_workers=2), scratch / "pooled").run()
    print(pooled.markdown_path.read_text())
    print(f"{len(pooled.payload['shards'])} shards in {time.perf_counter() - started:.2f}s; "
          f"artifacts under {pooled.path.parent}")

    print("=== resume: finished shards are skipped ===")
    started = time.perf_counter()
    resumed = SweepOrchestrator.from_directory(scratch / "pooled").run(resume=True)
    print(f"resume took {time.perf_counter() - started:.2f}s (no shard re-ran); "
          f"report identical: {strip_timing(resumed.payload) == strip_timing(pooled.payload)}")

    print("\n=== determinism: serial run matches the pooled report bit for bit ===")
    serial = SweepOrchestrator(build_config(max_workers=1), scratch / "serial").run()
    assert strip_timing(serial.payload) == strip_timing(pooled.payload)
    print("timing-stripped reports are bit-identical across worker counts")


if __name__ == "__main__":
    main()
