"""Relation-pattern analysis: the motivation behind relation-aware scoring functions.

Run with::

    python examples/pattern_analysis.py

The example reproduces the observation of Section III-A of the paper on the synthetic
benchmarks: scoring functions behave very differently on symmetric versus anti-symmetric
relations, so no single universal scoring function is uniformly best at the relation
level.
"""

from repro.bench import format_table, train_structure
from repro.datasets import load_benchmark
from repro.eval import PatternLevelEvaluator
from repro.kg import RelationPatternAnalyzer
from repro.scoring import expressiveness_table, named_structure, CLASSIC_STRUCTURES


def main() -> None:
    # 1. What can each classic scoring function express, symbolically?  (Table I)
    rows = []
    for name, report in expressiveness_table(CLASSIC_STRUCTURES):
        rows.append({"scoring_function": name, **report.as_row()})
    print(format_table(rows, title="symbolic expressiveness of classic scoring functions"))

    # 2. What patterns do the relations of a dataset actually exhibit?
    graph = load_benchmark("wn18rr_like", seed=0)
    analyzer = RelationPatternAnalyzer()
    print("\nper-relation pattern report for", graph.name)
    for report in analyzer.analyze(graph):
        name = graph.relation_vocab.symbol_of(report.relation)
        print(f"  {name}: {report}")

    # 3. How do trained scoring functions perform per pattern?  (Table III)
    pattern_rows = []
    evaluator = PatternLevelEvaluator(graph)
    for name in ("distmult", "complex", "simple"):
        model, _ = train_structure(graph, named_structure(name), dim=48, epochs=25, seed=0)
        pattern_rows.append({"scoring_function": name, **evaluator.hit1_by_pattern(model, split="test")})
    print()
    print(format_table(pattern_rows, title="pattern-level Hit@1 (in %) on " + graph.name))


if __name__ == "__main__":
    main()
