"""Using your own dataset: the standard train/valid/test TSV layout.

Run with::

    python examples/custom_dataset.py

The example writes a synthetic graph to disk in the same three-file layout the public
benchmarks (WN18, FB15k, ...) use, loads it back with the generic TSV loader, and trains a
model on it -- exactly the steps needed to run the library on a real downloaded benchmark
or on proprietary data.
"""

import tempfile
from pathlib import Path

from repro.bench import format_table
from repro.datasets import PatternSpec, SyntheticKGConfig, SyntheticKGGenerator
from repro.eval import RankingEvaluator
from repro.kg import RelationPattern, load_tsv_dataset, save_tsv_dataset
from repro.models import KGEModel, Trainer, TrainerConfig
from repro.scoring import named_structure


def main() -> None:
    # 1. Build (or bring) a dataset.  Here: a small synthetic KG with known patterns.
    config = SyntheticKGConfig(
        name="my_kg",
        num_entities=150,
        pattern_specs=(
            PatternSpec(RelationPattern.SYMMETRIC, 2),
            PatternSpec(RelationPattern.ANTI_SYMMETRIC, 3),
            PatternSpec(RelationPattern.INVERSE, 2),
        ),
        triples_per_relation=80,
    )
    graph = SyntheticKGGenerator(config).generate(seed=0)

    # 2. Persist it in the standard layout: train.txt / valid.txt / test.txt.
    with tempfile.TemporaryDirectory() as tmp:
        directory = save_tsv_dataset(graph, Path(tmp) / "my_kg")
        print("wrote", sorted(p.name for p in directory.iterdir()))

        # 3. Load it back with the generic loader (works for any dataset in this layout).
        loaded = load_tsv_dataset(directory)
        print(loaded)
        print(format_table([loaded.statistics().as_row()], title="loaded dataset"))

    # 4. Train and evaluate as usual.
    model = KGEModel(loaded.num_entities, loaded.num_relations, dim=32,
                     scorers=named_structure("simple"), seed=0)
    Trainer(TrainerConfig(epochs=20, batch_size=128, valid_every=5, patience=3, seed=0)).fit(model, loaded)
    metrics = RankingEvaluator(loaded).evaluate(model, split="test")
    print(format_table([metrics.as_row()], title="filtered test metrics"))


if __name__ == "__main__":
    main()
