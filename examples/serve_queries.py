"""Serving: persist a trained model and answer link-prediction queries against it.

Run with::

    python examples/serve_queries.py

The example trains a small model, stores it in a versioned artifact registry, reloads it
into a :class:`~repro.serve.engine.LinkPredictionEngine`, and serves a stream of
head/tail completion queries through the micro-batching
:class:`~repro.serve.service.PredictionService`, printing the top completions and the
latency/throughput statistics.
"""

import tempfile

import numpy as np

from repro.datasets import load_benchmark
from repro.models import KGEModel, Trainer, TrainerConfig
from repro.scoring import named_structure
from repro.serve import (
    LinkPredictionEngine,
    LinkQuery,
    ModelArtifactRegistry,
    PredictionService,
    ServiceConfig,
)


def main() -> None:
    # 1. Train a model (any scoring structure works; see examples/quickstart.py).
    graph = load_benchmark("wn18rr_like", scale=0.5, seed=0)
    model = KGEModel(
        num_entities=graph.num_entities,
        num_relations=graph.num_relations,
        dim=32,
        scorers=named_structure("complex"),
        seed=0,
    )
    result = Trainer(TrainerConfig(epochs=15, valid_every=5, patience=2, seed=0)).fit(model, graph)
    print(f"trained model: best validation MRR {result.best_valid_mrr:.3f}")

    with tempfile.TemporaryDirectory() as scratch:
        # 2. Publish the trained model into a versioned registry.
        registry = ModelArtifactRegistry(scratch)
        ref = registry.save(
            "wn18rr_like-complex",
            model,
            entity_vocab=graph.entity_vocab,
            relation_vocab=graph.relation_vocab,
            metadata={"valid_mrr": result.best_valid_mrr},
        )
        print(f"published artifact {ref.name} v{ref.version} at {ref.path}")

        # 3. Load it back into an inference engine with filtered candidates.
        engine = LinkPredictionEngine.from_artifact(registry, ref.name, graph=graph)
        engine.precompute_relation(0, direction="tail")  # warm one hot relation

        # 4. Serve a query stream through the micro-batching facade.
        service = PredictionService(engine, ServiceConfig(max_batch_size=64, default_k=5))
        rng = np.random.default_rng(0)
        queries = [
            LinkQuery(
                relation=int(rng.integers(graph.num_relations)),
                head=int(rng.integers(graph.num_entities)),
                k=5,
            )
            for _ in range(256)
        ]
        responses = service.query_many(queries)

        sample = responses[0]
        completions = ", ".join(f"{engine.label(e)} ({s:.2f})" for e, s in sample.pairs())
        print(f"\n(head={sample.query.head}, relation={sample.query.relation}, ?) -> {completions}")

        service.stats_table().show()
        service.cache_table().show()


if __name__ == "__main__":
    main()
