"""Triplet classification with per-relation thresholds (Table X protocol).

Run with::

    python examples/triplet_classification.py

The example trains two scoring functions on the FB15k237-like benchmark, fits
relation-specific decision thresholds on the validation split, and reports test accuracy.
"""

from repro.bench import format_table, train_structure
from repro.datasets import load_benchmark
from repro.eval import TripletClassifier
from repro.scoring import named_structure


def main() -> None:
    graph = load_benchmark("fb15k237_like", seed=0)
    classifier = TripletClassifier(graph, seed=0)

    rows = []
    for name in ("distmult", "complex", "simple"):
        model, _ = train_structure(graph, named_structure(name), dim=48, epochs=25, seed=0)
        result = classifier.evaluate(model)
        rows.append(
            {
                "model": name,
                "accuracy_%": round(100 * result.accuracy, 1),
                "evaluated_triples": result.count,
            }
        )
    print(format_table(rows, title=f"triplet classification on {graph.name}"))

    # Per-relation thresholds are part of the protocol: show a few of them.
    example_thresholds = dict(list(result.thresholds.items())[:5])
    print("\nexample relation-specific thresholds:", {k: round(v, 3) for k, v in example_thresholds.items()})


if __name__ == "__main__":
    main()
