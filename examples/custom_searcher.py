"""Registering a third-party searcher plugin with the unified Searcher protocol.

Run with::

    PYTHONPATH=src python examples/custom_searcher.py

The example implements a complete custom search algorithm -- a "classics sweep" that
stand-alone trains each hand-designed literature structure (DistMult, ComplEx,
SimplE, Analogy) and keeps the best -- as a plugin of the stepwise
:class:`~repro.search.base.Searcher` protocol, registers it under the name
``classics``, and then drives it through the stock :class:`~repro.runtime.runner.SearchRunner`:

1. a **budgeted** run (``budget_evals=2``) that stops half-way and writes a JSON
   checkpoint, exactly as ``python -m repro search --searcher classics
   --budget-evals 2 --checkpoint ...`` would;
2. a second run that **resumes** from the checkpoint and finishes the sweep.

Nothing in the runtime layer knows about the plugin -- checkpoint/resume, budgets,
``--workers`` pools and the CLI flags all come for free from the protocol.
"""

import json
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.kg.graph import KnowledgeGraph
from repro.runtime import RunConfig, SearchRunner
from repro.scoring.classics import CLASSIC_STRUCTURES
from repro.search import register_searcher, unregister_searcher
from repro.search.base import (
    Searcher,
    SearchState,
    trace_from_jsonable,
    trace_to_jsonable,
)
from repro.search.result import Candidate, SearchResult, TracePoint


@dataclass
class ClassicsSearchConfig:
    """Budget of the classics sweep: per-candidate training epochs, dim and seed."""

    dim: int = 16
    train_epochs: int = 3
    seed: int = 0


@dataclass
class ClassicsSearchState(SearchState):
    """State: the ordered classic names, the sweep position and the incumbent."""

    graph: KnowledgeGraph
    pool: "EvaluationPool"
    shared: Dict[str, object]
    fingerprint: Tuple
    names: List[str] = field(default_factory=lambda: list(CLASSIC_STRUCTURES))
    position: int = 0
    best_name: Optional[str] = None
    best_mrr: float = -np.inf
    steps_completed: int = 0
    evaluations: int = 0
    elapsed_seconds: float = 0.0
    trace: List[TracePoint] = field(default_factory=list)


class ClassicsSearcher(Searcher):
    """One protocol step = one classic structure trained stand-alone through the pool."""

    name = "Classics"

    def __init__(self, config: Optional[ClassicsSearchConfig] = None, pool=None) -> None:
        self.config = config or ClassicsSearchConfig()
        self._pool = pool

    def init_state(self, graph: KnowledgeGraph) -> ClassicsSearchState:
        from repro.models.trainer import TrainerConfig
        from repro.runtime.evaluation import EvaluationPool, graph_fingerprint, standalone_shared_payload

        trainer = TrainerConfig(epochs=self.config.train_epochs, valid_every=1, patience=2, seed=self.config.seed)
        return ClassicsSearchState(
            graph=graph,
            pool=self._pool if self._pool is not None else EvaluationPool(n_workers=1),
            shared=standalone_shared_payload(graph, trainer, self.config.dim),
            fingerprint=graph_fingerprint(graph),
        )

    def run_step(self, state: ClassicsSearchState) -> None:
        from repro.runtime.evaluation import train_candidate_standalone

        started = time.perf_counter()
        name = state.names[state.position]
        structure = CLASSIC_STRUCTURES[name]
        payload = {"structures": [structure.entries], "seed": self.config.seed}
        key = ("classics", self.fingerprint_key(state), name)
        mrr = state.pool.map(train_candidate_standalone, [payload], shared=state.shared, keys=[key])[0]
        state.position += 1
        state.evaluations = state.position
        if mrr > state.best_mrr:
            state.best_name, state.best_mrr = name, mrr
        state.steps_completed += 1
        state.elapsed_seconds += time.perf_counter() - started
        state.trace.append(
            TracePoint(
                elapsed_seconds=state.elapsed_seconds,
                evaluations=state.evaluations,
                valid_mrr=float(state.best_mrr),
                note=name,
            )
        )

    def fingerprint_key(self, state: ClassicsSearchState) -> Tuple:
        return (state.fingerprint, self.config.dim, self.config.train_epochs, self.config.seed)

    def is_complete(self, state: ClassicsSearchState) -> bool:
        return state.position >= len(state.names)

    def finalize(self, state: ClassicsSearchState) -> SearchResult:
        if state.best_name is None:
            raise RuntimeError("the classics sweep cannot finalize before any training")
        return SearchResult(
            searcher=self.name,
            dataset=state.graph.name,
            best_candidate=Candidate((CLASSIC_STRUCTURES[state.best_name],)),
            best_assignment=np.zeros(state.graph.num_relations, dtype=np.int64),
            best_valid_mrr=float(state.best_mrr),
            search_seconds=state.elapsed_seconds,
            evaluations=state.evaluations,
            trace=state.trace,
            extras={"best_classic": state.best_name},
        )

    def state_dict(self, state: ClassicsSearchState) -> Dict[str, object]:
        return {
            "position": state.position,
            "best_name": state.best_name,
            "best_mrr": float(state.best_mrr),
            "steps_completed": state.steps_completed,
            "evaluations": state.evaluations,
            "elapsed_seconds": state.elapsed_seconds,
            "trace": trace_to_jsonable(state.trace),
        }

    def load_state_dict(self, state: ClassicsSearchState, payload: Dict[str, object]) -> None:
        state.position = int(payload["position"])
        state.best_name = payload["best_name"]
        state.best_mrr = float(payload["best_mrr"]) if state.best_name is not None else -np.inf
        state.steps_completed = int(payload["steps_completed"])
        state.evaluations = int(payload["evaluations"])
        state.elapsed_seconds = float(payload["elapsed_seconds"])
        state.trace = trace_from_jsonable(payload["trace"])


def main() -> None:
    register_searcher("classics", lambda options, pool: ClassicsSearcher(
        ClassicsSearchConfig(dim=options.dim, seed=options.seed), pool=pool
    ))
    try:
        checkpoint = Path(tempfile.mkdtemp()) / "classics.json"

        def run_config() -> dict:
            return dict(
                dataset="wn18rr_like",
                scale=0.3,
                searcher="classics",
                dim=16,
                seed=0,
                train_final=False,
                checkpoint_path=str(checkpoint),
            )

        # 1. A budgeted run: stop after two candidate evaluations, checkpointing each step.
        budgeted = SearchRunner(RunConfig(**run_config(), budget_evals=2)).run().search_result
        print("budgeted run stopped early:", budgeted.extras["budget"]["stopped"])
        print("checkpoint written to:", checkpoint)

        # 2. Resume from the checkpoint and finish the sweep -- same runner, no budget.
        result = SearchRunner(RunConfig(**run_config())).run().search_result
        print(f"\nclassics sweep finished: best = {result.extras['best_classic']} "
              f"(valid MRR {result.best_valid_mrr:.4f}, {result.evaluations} trainings)")
        print(json.dumps(result.summary(), indent=2, sort_keys=True))
    finally:
        unregister_searcher("classics")


if __name__ == "__main__":
    main()
