"""Relation-aware scoring-function search with ERAS (the paper's headline experiment).

Run with::

    python examples/relation_aware_search.py [dataset]

The example searches relation-aware scoring functions on a synthetic benchmark with the
one-shot supernet (Algorithm 2 of the paper), re-trains the derived candidate from
scratch, and compares it against the task-aware ERAS_N=1 variant and a DistMult baseline.
"""

import sys

from repro.bench import format_table, quick_eras_config, retrain_searched, train_structure
from repro.datasets import load_benchmark
from repro.eval import RankingEvaluator
from repro.kg import RelationPatternAnalyzer
from repro.scoring import named_structure, render_relation_aware
from repro.search import ERASSearcher
from repro.search.variants import eras_n1


def main(dataset: str = "wn18rr_like") -> None:
    graph = load_benchmark(dataset, seed=0)
    evaluator = RankingEvaluator(graph)
    print(graph)
    print("detected relation patterns:", RelationPatternAnalyzer().summary(graph))

    rows = []

    # Baseline: a hand-designed scoring function trained stand-alone.
    baseline, _ = train_structure(graph, named_structure("distmult"), dim=48, epochs=30, seed=0)
    rows.append({"model": "DistMult", **evaluator.evaluate(baseline, split="test").as_row()})

    # Task-aware search (single relation group, AutoSF-style space).
    task_aware_result = eras_n1(quick_eras_config(num_groups=1, epochs=15)).search(graph)
    task_aware_model, _ = retrain_searched(graph, task_aware_result, dim=48, epochs=30, seed=0)
    rows.append({"model": "ERAS_N=1", **evaluator.evaluate(task_aware_model, split="test").as_row()})

    # Relation-aware search: three relation groups, each with its own scoring function.
    eras_result = ERASSearcher(quick_eras_config(num_groups=3, epochs=15)).search(graph)
    print(f"\nERAS search finished in {eras_result.search_seconds:.1f}s "
          f"after {eras_result.evaluations} one-shot evaluations")
    print("\nsearched relation-aware scoring functions:")
    group_relations = {
        group: [graph.relation_vocab.symbol_of(r) for r in relations]
        for group, relations in eras_result.relations_per_group().items()
    }
    print(render_relation_aware(eras_result.best_structures(), group_relations))

    eras_model, _ = retrain_searched(graph, eras_result, dim=48, epochs=30, seed=0)
    rows.append({"model": "ERAS", **evaluator.evaluate(eras_model, split="test").as_row()})

    print()
    print(format_table(rows, title=f"link prediction on {dataset}"))


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "wn18rr_like")
