"""Relation-aware scoring-function search with ERAS (the paper's headline experiment).

Run with::

    PYTHONPATH=src python examples/relation_aware_search.py [dataset]

The example drives the same :class:`~repro.runtime.runner.SearchRunner` facade as the
CLI -- it is the library-call twin of::

    PYTHONPATH=src python -m repro search --dataset wn18rr_like --epochs 15 --train

It searches relation-aware scoring functions on a synthetic benchmark with the one-shot
supernet (Algorithm 2 of the paper), re-trains the derived candidate from scratch, and
compares it against the task-aware ERAS_N=1 variant and a DistMult baseline.
"""

import sys

from repro.bench import format_table, train_structure
from repro.eval import RankingEvaluator
from repro.kg import RelationPatternAnalyzer
from repro.runtime import RunConfig, SearchRunner
from repro.scoring import named_structure, render_relation_aware


def main(dataset: str = "wn18rr_like") -> None:
    def run_config(searcher: str, num_groups: int) -> RunConfig:
        return RunConfig(
            dataset=dataset,
            searcher=searcher,
            num_groups=num_groups,
            search_epochs=15,
            dim=48,
            train_epochs=30,
            seed=0,
        )

    runner = SearchRunner(run_config("eras", num_groups=3))
    graph = runner.graph
    evaluator = RankingEvaluator(graph)
    print(graph)
    print("detected relation patterns:", RelationPatternAnalyzer().summary(graph))

    rows = []

    # Baseline: a hand-designed scoring function trained stand-alone.
    baseline, _ = train_structure(graph, named_structure("distmult"), dim=48, epochs=30, seed=0)
    rows.append({"model": "DistMult", **evaluator.evaluate(baseline, split="test").as_row()})

    # Task-aware search (single relation group, AutoSF-style space).
    task_aware = SearchRunner(run_config("eras_n1", num_groups=1)).run()
    rows.append({"model": "ERAS_N=1", **task_aware.metrics.as_row()})

    # Relation-aware search: three relation groups, each with its own scoring function.
    report = runner.run()
    eras_result = report.search_result
    print(f"\nERAS search finished in {eras_result.search_seconds:.1f}s "
          f"after {eras_result.evaluations} one-shot evaluations")
    print("\nsearched relation-aware scoring functions:")
    group_relations = {
        group: [graph.relation_vocab.symbol_of(r) for r in relations]
        for group, relations in eras_result.relations_per_group().items()
    }
    print(render_relation_aware(eras_result.best_structures(), group_relations))
    rows.append({"model": "ERAS", **report.metrics.as_row()})

    print()
    print(format_table(rows, title=f"link prediction on {dataset}"))


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "wn18rr_like")
