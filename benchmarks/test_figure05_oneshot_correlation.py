"""Figure 5: correlation between one-shot and stand-alone validation MRR.

The paper's shape: with validation MRR as the reward (the ERAS design), the one-shot
performance of a candidate on the shared-embedding supernet correlates positively with
its stand-alone performance; using the validation *loss* instead gives a weaker (or
negative) correlation, which is why ERAS_los underperforms.
"""

import numpy as np

from repro.bench import train_structure
from repro.eval import CorrelationStudy, RankingEvaluator
from repro.scoring import CLASSIC_STRUCTURES, BlockStructure
from repro.search import Candidate, SharedEmbeddingSupernet, SupernetConfig

from benchmarks.conftest import harness_graph, run_once

DATASET = "wn18rr_like"
NUM_RANDOM_CANDIDATES = 6
SUPERNET_EPOCHS = 15


def _build_study():
    graph = harness_graph(DATASET)
    rng = np.random.default_rng(0)
    pool = list(CLASSIC_STRUCTURES.values())
    pool += [BlockStructure.random(4, rng, nonzero_fraction=0.4) for _ in range(NUM_RANDOM_CANDIDATES)]

    supernet = SharedEmbeddingSupernet(graph, num_groups=1, config=SupernetConfig(dim=48, seed=0))
    for _ in range(SUPERNET_EPOCHS):
        for batch in supernet.training_batches():
            chosen = rng.choice(len(pool), size=2, replace=False)
            supernet.training_step([Candidate((pool[i],)) for i in chosen], batch)

    evaluator = RankingEvaluator(graph)
    mrr_study = CorrelationStudy(label="one-shot MRR vs stand-alone MRR")
    loss_study = CorrelationStudy(label="one-shot (neg) loss vs stand-alone MRR")
    for structure in pool:
        candidate = Candidate((structure,))
        one_shot_mrr = supernet.one_shot_validation_mrr(candidate)
        one_shot_loss = supernet.reward(candidate, graph.valid.array, metric="neg_loss")
        model, _ = train_structure(graph, structure, dim=48, epochs=20, seed=0)
        stand_alone = evaluator.evaluate(model, split="valid").mrr
        mrr_study.add(one_shot_mrr, stand_alone)
        loss_study.add(one_shot_loss, stand_alone)
    return mrr_study, loss_study


def test_figure05_oneshot_correlation(benchmark):
    mrr_study, loss_study = run_once(benchmark, _build_study)
    print()
    print("Figure 5(a):", mrr_study.summary())
    print("Figure 5(b):", loss_study.summary())
    # Paper shape: MRR as the one-shot measurement correlates positively with stand-alone
    # quality (Figure 5a) ...
    assert mrr_study.spearman() > 0.2
    # ... and is a better proxy than the validation loss (Figure 5b).
    assert mrr_study.spearman() >= loss_study.spearman() - 0.1
