"""Perf gate: vectorized filtered ranking vs the retained naive reference.

Filtered ranking is the hottest path in the repository -- every MRR the searchers,
trainers and tables report flows through it.  This benchmark replays the search-time
workload (a fresh evaluator per candidate model, the same validation sample re-ranked
each time) through both implementations:

* **naive** -- the seed's path, preserved in :mod:`repro.eval.reference`: dict-of-sets
  filter index rebuilt per candidate, one dense boolean mask per evaluation triple,
  Tensor scoring under ``no_grad``;
* **vectorized** -- the CSR :class:`~repro.kg.filter_index.FilterIndex` (memoised per
  graph), flat fancy-indexed filter application and the compiled no-grad kernels of
  :mod:`repro.scoring.kernels`.

The gate asserts bit-identical ranks and at least a 5x throughput win on the
fb15k_like synthetic dataset, and emits the timing row into ``BENCH_ranking.json``
(via :func:`repro.bench.reporting.write_bench_json`) so the perf trajectory
accumulates run over run.
"""

from repro.bench import TableReport, write_bench_json
from repro.datasets import load_benchmark
from repro.runtime.profiling import time_filtered_ranking

from benchmarks.conftest import run_once

DATASET = "fb15k_like"
MIN_SPEEDUP = 5.0


def _ranking_row():
    graph = load_benchmark(DATASET, scale=1.0, seed=0)
    return time_filtered_ranking(graph, num_models=8, sample_size=64, dim=64, seed=0)


def test_ranking_throughput(benchmark):
    row = run_once(benchmark, _ranking_row)
    report = TableReport("Filtered ranking: naive reference vs vectorized (CSR filters + no-grad kernels)")
    report.add_row(**row)
    report.show()
    path = write_bench_json("ranking", row)
    print(f"perf trajectory written to {path}")
    # The optimisation must never change a result: the vectorized path ranks every
    # query bit-identically to the seed implementation.
    assert row["ranks_match"]
    # The throughput win is the point of the PR; 5x is the gate, with generous
    # headroom against the ~10-15x observed on a single-core dev container.
    assert row["speedup"] >= MIN_SPEEDUP, (
        f"vectorized filtered ranking is only {row['speedup']}x faster than the naive "
        f"reference (gate: {MIN_SPEEDUP}x)"
    )
