"""Shared-memory pool benchmarks: the multi-core baseline rows of the parallel runtime.

Two workloads gate the PR's tentpole claims:

- :func:`repro.runtime.profiling.time_shm_transport` prices moving a whole graph
  bundle (splits + CSR filter index) into shared memory against the pickle
  round-trip the pre-shm pool paid per dispatch, and measures worker-side attach
  latency cold (first ``shm_open`` + ``mmap``) vs warm (refcounted memo hit).
  Written as ``BENCH_shm.json`` -- the same row ``python -m repro bench --workload
  shm`` produces.
- :func:`repro.runtime.profiling.time_derive_phase` (also run by
  ``benchmarks/test_figure02_search_efficiency.py``) supplies the warm-vs-cold pool
  latency and ``parallel_speedup`` fields asserted here under multi-core gates.

Correctness flags (``views_match``, ``segments_released``, ``scores_match``) are
hard failures on any host; strict wall-clock wins are gated on available cores,
following the repo's convention for speedup assertions on shared CI runners.
"""

import os

from repro.bench import TableReport, write_bench_json
from repro.datasets import load_benchmark
from repro.runtime.profiling import time_derive_phase, time_shm_transport

from benchmarks.conftest import run_once

TRANSPORT_DATASET = "fb15k_like"
DERIVE_DATASET = "fb15k_like"


def _transport_row():
    graph = load_benchmark(TRANSPORT_DATASET, scale=1.0, seed=0)
    return time_shm_transport(graph, workers=2, seed=0)


def test_shm_transport_fidelity_and_latency(benchmark):
    """Publish/attach a full graph bundle: byte-fidelity, cleanup and warm attach wins."""
    row = run_once(benchmark, _transport_row)
    report = TableReport("Shared-memory transport: publish/attach vs pickle round-trip")
    report.add_row(**row)
    report.show()
    path = write_bench_json("shm", row)
    print(f"perf trajectory written to {path}")
    # Hard correctness gates, host-independent: every worker saw byte-identical
    # views, and unpublishing left /dev/shm clean.
    assert row["views_match"]
    assert row["segments_released"]
    # The handle that crosses the queue is tiny compared to the payload it replaces.
    assert row["bundle_bytes"] > 100 * 1024  # the workload is big enough to matter
    # A warm (memoised) attach can never be slower than the cold shm_open+mmap path.
    assert row["warm_attach_seconds"] <= row["cold_attach_seconds"]


def _derive_row():
    graph = load_benchmark(DERIVE_DATASET, scale=1.0, seed=0)
    return time_derive_phase(graph, num_candidates=64, workers=2, dim=64, seed=0)


def test_warm_pool_beats_cold_and_serial(benchmark):
    """Warm-vs-cold worker latency and the ISSUE's parallel_speedup acceptance gate."""
    row = run_once(benchmark, _derive_row)
    report = TableReport("Warm pool: cold spawn+install pass vs steady-state pass")
    report.add_row(**row)
    report.show()
    path = write_bench_json("derive", row)
    print(f"perf trajectory written to {path}")
    # Bit-identity across serial, cold-pool, warm-pool and cached passes -- the
    # determinism contract this whole PR preserves.
    assert row["scores_match"]
    # The steady-state (warm) pass must beat the pass that pays worker spawn,
    # shm attach and payload install; that is the point of persistent workers.
    assert row["parallel_seconds"] < row["cold_parallel_seconds"]
    # The payload handle crossing the queue is orders of magnitude smaller than the
    # pickled supernet state the pre-shm pool shipped per map call.
    assert row["handle_bytes"] * 10 < row["payload_pickle_bytes"]
    # ROADMAP acceptance: on hosts with real spare cores the warm pool must deliver
    # a strict parallel win over the serial loop.  Single-core containers share one
    # CPU between fork workers, so the strict gate needs >= 2 cores.
    if (os.cpu_count() or 1) >= 2:
        assert row["parallel_speedup"] > 1.5, (
            f"parallel_speedup {row['parallel_speedup']} <= 1.5 on a "
            f"{os.cpu_count()}-core host: the warm pool is losing to serial"
        )
