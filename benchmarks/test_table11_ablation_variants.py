"""Table XI: ablation variants of ERAS (reward, optimisation level, grouping strategy).

The paper's shape: full ERAS (MRR reward, bi-level optimisation, dynamic EM grouping) is
the strongest configuration; the variants remain functional but give up part of the gain.
At this reproduction's scale the differences are small, so the bench asserts only that
every variant completes and that full ERAS is not dominated by more than a small margin.
"""

from repro.bench import TableReport, retrain_searched
from repro.eval import RankingEvaluator
from repro.search import ERASSearcher
from repro.search.variants import eras_los, eras_pde, eras_sig, eras_smt

from benchmarks.conftest import FINAL_EPOCHS, harness_eras_config, harness_graph, run_once

DATASET = "wn18rr_like"


def _variants():
    return {
        "ERAS": ERASSearcher(harness_eras_config(num_groups=3)),
        "ERAS_los": eras_los(harness_eras_config(num_groups=3)),
        "ERAS_sig": eras_sig(harness_eras_config(num_groups=3)),
        "ERAS_pde": eras_pde(harness_eras_config(num_groups=3), pretrain_epochs=6),
        "ERAS_smt": eras_smt(harness_eras_config(num_groups=3)),
    }


def _build_table():
    report = TableReport("Table XI -- ablation variants (test MRR on wn18rr_like)")
    graph = harness_graph(DATASET)
    evaluator = RankingEvaluator(graph)
    for label, searcher in _variants().items():
        result = searcher.search(graph)
        model, _ = retrain_searched(graph, result, dim=48, epochs=FINAL_EPOCHS, seed=0)
        metrics = evaluator.evaluate(model, split="test")
        report.add_row(variant=label, MRR=metrics.mrr, search_s=round(result.search_seconds, 1))
    return report


def test_table11_ablation_variants(benchmark):
    report = run_once(benchmark, _build_table)
    report.show()
    by_variant = {row["variant"]: row["MRR"] for row in report.rows}
    assert set(by_variant) == {"ERAS", "ERAS_los", "ERAS_sig", "ERAS_pde", "ERAS_smt"}
    # Paper shape: full ERAS is the reference point; no variant should beat it by a wide
    # margin (small-scale noise allowed).
    assert by_variant["ERAS"] >= 0.7 * max(by_variant.values())
    assert all(value > 0 for value in by_variant.values())
