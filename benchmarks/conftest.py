"""Shared configuration of the benchmark harness.

Every module in this directory regenerates one table or figure of the paper.  The
workloads run on the scaled-down synthetic benchmarks (see DESIGN.md) with budgets chosen
so the full harness finishes on a laptop CPU; the *qualitative* comparisons (who wins,
by roughly what factor, where the cross-overs fall) are what the benches check and print.

Every benchmark prints its table/figure with ``-s``; run e.g.::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.bench import bench_graph, quick_eras_config
from repro.search import ERASSearcher
from repro.search.variants import eras_n1

# Scale applied to every dataset used by the harness (1.0 = the default synthetic sizes).
BENCH_SCALE = 0.7
# Stand-alone training epochs for final models reported in the tables.
FINAL_EPOCHS = 20
# ERAS search epochs used by the harness.
SEARCH_EPOCHS = 12
BENCH_SEED = 0


def harness_graph(name: str):
    """Load a dataset at the harness scale."""
    return bench_graph(name, scale=BENCH_SCALE, seed=BENCH_SEED)


def harness_eras_config(num_groups: int = 3, num_blocks: int = 4, seed: int = BENCH_SEED):
    """ERAS budget used across the harness."""
    return quick_eras_config(
        num_groups=num_groups, num_blocks=num_blocks, epochs=SEARCH_EPOCHS, dim=48, seed=seed
    )


@pytest.fixture(scope="session")
def eras_results_cache():
    """Session-wide cache of ERAS / ERAS_N=1 search results keyed by (dataset, groups)."""
    cache = {}

    def run(dataset: str, num_groups: int):
        key = (dataset, num_groups)
        if key not in cache:
            graph = harness_graph(dataset)
            config = harness_eras_config(num_groups=num_groups)
            searcher = ERASSearcher(config) if num_groups > 1 else eras_n1(config)
            cache[key] = searcher.search(graph)
        return cache[key]

    return run


@pytest.fixture(scope="session", autouse=True)
def shm_leak_guard():
    """Assert zero leaked ``repro_shm_*`` segments after the benchmark session.

    Mirrors the guard in ``tests/conftest.py``: warm pools are shut down, every
    bundle this process still owns is unpublished, and ``/dev/shm`` must hold
    nothing that was not already there when the session started.
    """
    import gc

    from repro.runtime import shm
    from repro.runtime.evaluation import release_one_shot_model
    from repro.runtime.pool import shutdown_warm_pools

    baseline = set(shm.leaked_segments())
    yield
    shutdown_warm_pools()
    release_one_shot_model()
    gc.collect()
    shm.unpublish_all()
    leaked = [name for name in shm.leaked_segments() if name not in baseline]
    assert leaked == [], f"shared-memory segments leaked by the benchmark session: {leaked}"


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The harness workloads are minutes-long searches and trainings, so the default
    multi-round calibration of pytest-benchmark is disabled.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
