"""Streaming workload: live graph deltas interleaved with link-prediction queries.

Two phases share one ``BENCH_streaming.json`` row:

- **merge**: :func:`repro.runtime.profiling.time_streaming_updates` applies a stream
  of random deltas through :class:`~repro.stream.MutableGraphView` and the engine's
  cache-preserving :meth:`~repro.serve.engine.LinkPredictionEngine.apply_delta` swap,
  timing the incremental CSR merge against the full ``FilterIndex`` rebuild a
  non-incremental server would pay per delta.  The gate asserts the merged index is
  bit-identical to the rebuild and that the merge wins by at least
  ``MIN_MERGE_SPEEDUP`` for deltas under 1% of the graph.
- **serving**: a real :class:`~repro.serve.http.BackgroundHttpServer` takes a fleet
  of keep-alive predict clients while an updater client posts deltas to
  ``POST /v1/graph/delta``.  Every response carries the ``graph_version`` it was
  computed against, so the clients measure staleness directly: a response is *stale*
  when its version is older than the newest version the updater had already been
  acked when the request started.  The gate asserts zero failed requests and a
  staleness lag bounded by one version (the one in-flight micro-batch the frontend's
  snapshot-per-batch swap discipline allows).

``scripts/check_bench_regression.py`` gates the committed baseline automatically:
``merge_speedup`` higher-is-better, the ``*_seconds`` and ``*p50_ms``/``*p95_ms``
fields lower-is-better.
"""

import http.client
import json
import threading
import time

from repro.bench import bench_graph, summarize_latencies, train_structure, write_bench_json
from repro.bench.reporting import TableReport
from repro.runtime.profiling import _random_graph_delta, time_streaming_updates
from repro.scoring import named_structure
from repro.serve import (
    BackgroundHttpServer,
    FrontendConfig,
    LinkPredictionEngine,
    ServingFrontend,
)
from repro.stream import MutableGraphView
from repro.utils.rng import new_rng

from benchmarks.conftest import BENCH_SEED, run_once

# Merge phase: a larger graph so the rebuild cost is meaningful, deltas under 1%.
MERGE_SCALE = 6.0
MERGE_DELTAS = 12
MERGE_DELTA_TRIPLES = 32
MIN_MERGE_SPEEDUP = 5.0

# Serving phase: the http-benchmark serving setup plus one updater client.
STREAM_CLIENTS = 6
STREAM_REQUESTS_PER_CLIENT = 24
HTTP_DELTAS = 8
HTTP_DELTA_TRIPLES = 16
# Far above any sane single-core number; the committed baseline is the real gate.
MAX_SANE_P95_MS = 5000.0


def _post_json(conn, path, document):
    conn.request(
        "POST", path, body=json.dumps(document), headers={"Content-Type": "application/json"}
    )
    response = conn.getresponse()
    return response.status, json.loads(response.read().decode("utf-8"))


def _updater_loop(address, frontend, acked, lock, statuses, latencies_ms, delay_s):
    """One client streaming deltas at the server, recording each acked version."""
    rng = new_rng(BENCH_SEED + 1)
    conn = http.client.HTTPConnection(address[0], address[1], timeout=60.0)
    try:
        for _ in range(HTTP_DELTAS):
            # Deltas are generated against the live snapshot; the updater is the only
            # mutator, so each one is valid by construction when it arrives.
            delta = _random_graph_delta(frontend.graph_view.graph, HTTP_DELTA_TRIPLES, rng)
            document = {
                "adds": {split: array.tolist() for split, array in delta.adds.items()},
                "removes": {split: array.tolist() for split, array in delta.removes.items()},
            }
            started = time.perf_counter()
            status, body = _post_json(conn, "/v1/graph/delta", document)
            elapsed_ms = (time.perf_counter() - started) * 1000.0
            with lock:
                statuses.append(status)
                latencies_ms.append(elapsed_ms)
                if status == 200:
                    acked["version"] = int(body["graph_version"])
            time.sleep(delay_s)
    finally:
        conn.close()


def _query_loop(address, graph, seed, count, acked, lock, records, latencies_ms):
    """One keep-alive predict client; records the staleness of every response."""
    rng = new_rng(seed)
    conn = http.client.HTTPConnection(address[0], address[1], timeout=60.0)
    try:
        for index in range(count):
            body = {"relation": int(rng.integers(graph.num_relations)), "k": 10}
            body["head" if index % 2 == 0 else "tail"] = int(rng.integers(graph.num_entities))
            with lock:
                acked_at_start = acked["version"]
            started = time.perf_counter()
            status, payload = _post_json(conn, "/v1/predict", body)
            elapsed_ms = (time.perf_counter() - started) * 1000.0
            with lock:
                records.append((status, payload.get("graph_version", -1), acked_at_start))
                latencies_ms.append(elapsed_ms)
    finally:
        conn.close()


def _run_serving_phase():
    graph = bench_graph("wn18rr_like", scale=0.35, seed=BENCH_SEED)
    model, _ = train_structure(graph, named_structure("distmult"), dim=32, epochs=8, seed=BENCH_SEED)
    engine = LinkPredictionEngine.from_graph(model, graph)
    frontend = ServingFrontend(
        engine, model_name="bench", version=1,
        graph_view=MutableGraphView(graph),
        config=FrontendConfig(max_queue_depth=256, max_batch_size=32, flush_interval_s=0.002),
    )

    lock = threading.Lock()
    acked = {"version": 0}
    delta_statuses, update_ms = [], []
    records, query_ms = [], []
    with BackgroundHttpServer(frontend) as server:
        updater = threading.Thread(
            target=_updater_loop,
            args=(server.address, frontend, acked, lock, delta_statuses, update_ms, 0.02),
        )
        clients = [
            threading.Thread(
                target=_query_loop,
                args=(
                    server.address, graph, BENCH_SEED + 10 + index,
                    STREAM_REQUESTS_PER_CLIENT, acked, lock, records, query_ms,
                ),
            )
            for index in range(STREAM_CLIENTS)
        ]
        started = time.perf_counter()
        for thread in (updater, *clients):
            thread.start()
        for thread in (updater, *clients):
            thread.join(timeout=120.0)
        elapsed_s = time.perf_counter() - started
        assert not updater.is_alive() and not any(t.is_alive() for t in clients), "a client hung"
        metrics = frontend.metrics()

    stale_lags = [
        acked_at_start - version
        for status, version, acked_at_start in records
        if status == 200 and version < acked_at_start
    ]
    latency = summarize_latencies(query_ms)
    update_latency = summarize_latencies(update_ms)
    total = STREAM_CLIENTS * STREAM_REQUESTS_PER_CLIENT
    row = {
        "stream_requests": total,
        "stream_clients": STREAM_CLIENTS,
        "stream_qps": round(total / elapsed_s, 1),
        "stream_p50_ms": latency["p50_ms"],
        "stream_p95_ms": latency["p95_ms"],
        "http_deltas": HTTP_DELTAS,
        "delta_post_p50_ms": update_latency["p50_ms"],
        "delta_post_p95_ms": update_latency["p95_ms"],
        "stream_stale_results": len(stale_lags),
        "stream_max_stale_lag": max(stale_lags, default=0),
        "stream_failed": sum(1 for status, _, _ in records if status != 200),
    }
    return row, delta_statuses, records, metrics


def _run_workload():
    merge_graph = bench_graph("fb15k_like", scale=MERGE_SCALE, seed=BENCH_SEED)
    merge_row = time_streaming_updates(
        merge_graph,
        num_deltas=MERGE_DELTAS,
        delta_triples=MERGE_DELTA_TRIPLES,
        queries_per_delta=16,
        seed=BENCH_SEED,
    )
    serving_row, delta_statuses, records, metrics = _run_serving_phase()
    return {**merge_row, **serving_row}, delta_statuses, records, metrics


def test_streaming_updates(benchmark):
    row, delta_statuses, records, metrics = run_once(benchmark, _run_workload)
    report = TableReport("streaming -- incremental merge and live update/query serving")
    report.add_row(**row)
    report.show()
    path = write_bench_json("streaming", row)
    print(f"perf trajectory written to {path}")

    # Merge phase: bit-identical incremental merge, winning by the required factor
    # for deltas well under 1% of the graph.
    assert row["merge_matches_rebuild"] is True
    assert row["delta_fraction"] <= 0.01
    assert row["merge_speedup"] >= MIN_MERGE_SPEEDUP
    assert row["stale_results"] == 0 and row["failed_queries"] == 0

    # Serving phase: every delta accepted, every query answered, bounded staleness.
    assert delta_statuses == [200] * HTTP_DELTAS
    assert row["stream_failed"] == 0
    assert len(records) == row["stream_requests"]
    # The snapshot-per-batch swap allows at most one in-flight batch at the old
    # version; anything further behind means invalidation is broken.
    assert row["stream_max_stale_lag"] <= 1
    assert 0 < row["stream_p50_ms"] <= row["stream_p95_ms"] <= MAX_SANE_P95_MS
    # The server ended at the version the updater was last acked.
    assert metrics["graph"]["version"] == HTTP_DELTAS
    assert metrics["graph"]["deltas_accepted"] == HTTP_DELTAS
    assert metrics["graph"]["deltas_rejected"] == 0
    assert metrics["engine"]["deltas_applied"] == HTTP_DELTAS
