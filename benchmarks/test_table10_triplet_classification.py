"""Table X: triplet classification accuracy.

The paper's shape: the searched scoring functions (AutoSF-style / ERAS) are at least as
accurate as the hand-designed bilinear models, and all trained models are far above the
50% chance level.
"""

from repro.bench import TableReport, retrain_searched, train_structure
from repro.eval import TripletClassifier
from repro.scoring import named_structure

from benchmarks.conftest import FINAL_EPOCHS, harness_graph, run_once

DATASETS = ("wn18rr_like", "fb15k237_like")
BASELINES = ("distmult", "complex", "simple")


def _build_table(eras_results_cache):
    report = TableReport("Table X -- triplet classification accuracy (in %)")
    for dataset in DATASETS:
        graph = harness_graph(dataset)
        classifier = TripletClassifier(graph, seed=0)
        for name in BASELINES:
            model, _ = train_structure(graph, named_structure(name), dim=48, epochs=FINAL_EPOCHS, seed=0)
            result = classifier.evaluate(model)
            report.add_row(dataset=dataset, model=name, accuracy=round(100 * result.accuracy, 1))
        eras_result = eras_results_cache(dataset, 3)
        model, _ = retrain_searched(graph, eras_result, dim=48, epochs=FINAL_EPOCHS, seed=0)
        result = classifier.evaluate(model)
        report.add_row(dataset=dataset, model="ERAS", accuracy=round(100 * result.accuracy, 1))
    return report


def test_table10_triplet_classification(benchmark, eras_results_cache):
    report = run_once(benchmark, lambda: _build_table(eras_results_cache))
    report.show()
    rows = {(row["dataset"], row["model"]): row["accuracy"] for row in report.rows}
    for dataset in DATASETS:
        eras = rows[(dataset, "ERAS")]
        baselines = [rows[(dataset, name)] for name in BASELINES]
        assert eras > 55.0, dataset                       # far above chance
        assert eras >= 0.85 * max(baselines), dataset     # competitive with the best baseline
