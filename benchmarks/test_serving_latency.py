"""Serving workload: batched link-prediction throughput vs single-query looping.

This is the first benchmark oriented at query traffic rather than a paper table.  It
derives a relation-aware model with a short ERAS search, re-trains it briefly, ships it
through the artifact registry, and measures the inference engine's throughput three ways:

- one query per :meth:`~repro.serve.engine.LinkPredictionEngine.predict` call (the naive
  serving loop),
- micro-batched through :class:`~repro.serve.service.PredictionService`,
- micro-batched with the hottest relation precomputed.

The batched path must keep a solid throughput lead -- the vectorised all-entity matrix
op amortises the per-call Python overhead -- and the registry round-trip must preserve
top-k answers exactly.  Future serving PRs optimise against these numbers.

Gate history: the original gate demanded batched >= 5x single-query, most of which was
single-query *autodiff* overhead.  The no-grad kernel layer
(:mod:`repro.scoring.kernels`) made the single-query loop itself ~6x faster, so the
remaining amortisable overhead is plain Python dispatch and the honest ratio is ~2.5x
on a single-core container; the gate is 1.8x with noise headroom.  Absolute
throughputs of both paths are tracked in ``BENCH_serving.json``.
"""

import numpy as np

from repro.bench import TableReport, bench_graph, quick_eras_config, retrain_searched, write_bench_json
from repro.search import ERASSearcher
from repro.serve import (
    LinkPredictionEngine,
    LinkQuery,
    ModelArtifactRegistry,
    PredictionService,
    ServiceConfig,
)
from repro.utils.rng import new_rng

from benchmarks.conftest import BENCH_SEED, run_once

NUM_QUERIES = 512
MICRO_BATCH = 128
TOP_K = 10
MIN_BATCH_SPEEDUP = 1.8


def _serving_model(tmp_path_factory):
    """A small ERAS-derived model, persisted and reloaded through the registry."""
    graph = bench_graph("wn18rr_like", scale=0.35, seed=BENCH_SEED)
    config = quick_eras_config(num_groups=2, epochs=6, dim=32, seed=BENCH_SEED)
    search = ERASSearcher(config).search(graph)
    model, _ = retrain_searched(graph, search, dim=32, epochs=10, rerank_epochs=4, seed=BENCH_SEED)

    registry = ModelArtifactRegistry(tmp_path_factory.mktemp("registry"))
    registry.save("wn18rr_like-eras", model, metadata={"searcher": search.searcher})
    served = LinkPredictionEngine.from_artifact(
        registry, "wn18rr_like-eras", graph=graph, cache_size=0
    )
    direct = LinkPredictionEngine.from_graph(model, graph, cache_size=0)
    return graph, served, direct


def _query_stream(graph, rng) -> list:
    """A mixed head/tail completion stream skewed towards a few hot relations."""
    relations = rng.choice(graph.num_relations, size=NUM_QUERIES)
    hot = rng.choice(graph.num_relations, size=max(1, graph.num_relations // 4), replace=False)
    relations[: NUM_QUERIES // 2] = rng.choice(hot, size=NUM_QUERIES // 2)
    queries = []
    for i, relation in enumerate(relations):
        entity = int(rng.integers(graph.num_entities))
        if i % 2 == 0:
            queries.append(LinkQuery(relation=int(relation), head=entity, k=TOP_K))
        else:
            queries.append(LinkQuery(relation=int(relation), tail=entity, k=TOP_K))
    return queries


def _run_workload(tmp_path_factory):
    graph, served, direct = _serving_model(tmp_path_factory)
    rng = new_rng(BENCH_SEED)
    queries = _query_stream(graph, rng)

    # Round-trip fidelity: the reloaded artifact answers exactly like the live model.
    for query in queries[:32]:
        a = served.predict([query])[0]
        b = direct.predict([query])[0]
        np.testing.assert_array_equal(a.entities, b.entities)
    served.clear_caches()
    served.stats.lru_hits = served.stats.scored = served.stats.queries = served.stats.batches = 0

    # Naive loop: one engine call (one all-entity op) per query.
    loop_service = PredictionService(served, ServiceConfig(max_batch_size=1, default_k=TOP_K))
    for query in queries:
        loop_service.query(relation=query.relation, head=query.head, tail=query.tail, k=query.k)
    loop_qps = loop_service.stats.throughput_qps

    # Micro-batched: the same stream through a batching service on a fresh engine state.
    served.clear_caches()
    batch_service = PredictionService(served, ServiceConfig(max_batch_size=MICRO_BATCH, default_k=TOP_K))
    batch_service.query_many(queries)
    batch_qps = batch_service.stats.throughput_qps

    # Micro-batched with the hottest relations precomputed (LRU off isolates the effect).
    served.clear_caches()
    hot_relations = np.bincount([q.relation for q in queries], minlength=graph.num_relations)
    for relation in np.argsort(-hot_relations)[:2]:
        served.precompute_relation(int(relation), direction="tail")
        served.precompute_relation(int(relation), direction="head")
    hot_service = PredictionService(served, ServiceConfig(max_batch_size=MICRO_BATCH, default_k=TOP_K))
    hot_service.query_many(queries)
    hot_qps = hot_service.stats.throughput_qps

    report = TableReport("Serving latency -- single vs micro-batched link prediction")
    for label, service in (("single", loop_service), ("batched", batch_service), ("batched+hot", hot_service)):
        row = dict(mode=label)
        row.update(service.stats.as_row())
        report.add_row(**row)
    return report, loop_qps, batch_qps, hot_qps


def test_serving_latency(benchmark, tmp_path_factory):
    report, loop_qps, batch_qps, hot_qps = run_once(benchmark, lambda: _run_workload(tmp_path_factory))
    report.show()
    path = write_bench_json("serving", report.rows)
    print(f"perf trajectory written to {path}")
    assert loop_qps > 0 and batch_qps > 0 and hot_qps > 0
    # Micro-batching must keep amortising the per-query Python dispatch overhead.  The
    # factor is smaller than the original 5x because the no-grad kernels removed the
    # autodiff share of the single-query cost (see the module docstring).
    assert batch_qps >= MIN_BATCH_SPEEDUP * loop_qps, (loop_qps, batch_qps)
    # Precomputed hot relations must not be slower than plain batching by any real margin.
    assert hot_qps >= 0.5 * batch_qps, (batch_qps, hot_qps)
