"""Table VIII: pattern-level Hit@1 of ERAS vs ERAS_N=1.

The paper's shape: the relation-aware ERAS is at least as good as the task-aware
ERAS_N=1 at the relation-pattern level (it can give each pattern group its own scoring
function).
"""

from repro.bench import TableReport, retrain_searched
from repro.eval import PatternLevelEvaluator
from repro.kg import RelationPattern

from benchmarks.conftest import FINAL_EPOCHS, harness_graph, run_once

DATASETS = ("wn18rr_like", "fb15k237_like")


def _build_table(eras_results_cache):
    report = TableReport("Table VIII -- pattern-level Hit@1 (in %) of ERAS vs ERAS_N=1")
    for dataset in DATASETS:
        graph = harness_graph(dataset)
        evaluator = PatternLevelEvaluator(graph)
        for groups, label in ((1, "ERAS_N=1"), (3, "ERAS")):
            result = eras_results_cache(dataset, groups)
            model, _ = retrain_searched(graph, result, dim=48, epochs=FINAL_EPOCHS, seed=0)
            symmetric = evaluator.evaluate_pattern(model, RelationPattern.SYMMETRIC).metrics
            anti = evaluator.evaluate_pattern(model, RelationPattern.ANTI_SYMMETRIC).metrics
            report.add_row(
                dataset=dataset,
                model=label,
                symmetric_hit1=round(100 * symmetric.hit1, 1),
                anti_symmetric_hit1=round(100 * anti.hit1, 1),
            )
    return report


def test_table08_pattern_level(benchmark, eras_results_cache):
    report = run_once(benchmark, lambda: _build_table(eras_results_cache))
    report.show()
    rows = {(row["dataset"], row["model"]): row for row in report.rows}
    for dataset in DATASETS:
        relation_aware = rows[(dataset, "ERAS")]
        task_aware = rows[(dataset, "ERAS_N=1")]
        # Paper shape: relation-aware search does not lose on symmetric relations while
        # being free to pick different structures for the other patterns (allow slack for
        # the noisy small-scale proxy).
        assert relation_aware["symmetric_hit1"] >= 0.7 * task_aware["symmetric_hit1"], dataset
