"""Figures 3 and 4: case study -- the searched relation-aware scoring functions.

The paper plots the structures ERAS finds on WN18 and WN18RR and notes that the groups
align with relation patterns (symmetric / anti-symmetric / general asymmetric).  The bench
prints the searched structures together with the relations assigned to each group and
their detected patterns.
"""

from collections import Counter

from repro.kg import RelationPatternAnalyzer
from repro.scoring import render_relation_aware

from benchmarks.conftest import harness_graph, run_once

DATASETS = ("wn18_like", "wn18rr_like")


def _build_case_study(eras_results_cache):
    outputs = {}
    for dataset in DATASETS:
        graph = harness_graph(dataset)
        result = eras_results_cache(dataset, 3)
        patterns = {r.relation: r.pattern.value for r in RelationPatternAnalyzer().analyze(graph)}
        group_relations = {
            group: [f"r{relation}({patterns[relation]})" for relation in relations]
            for group, relations in result.relations_per_group().items()
        }
        rendering = render_relation_aware(result.best_structures(), group_relations)
        group_pattern_mix = {
            group: Counter(patterns[r] for r in relations)
            for group, relations in result.relations_per_group().items()
        }
        outputs[dataset] = (rendering, group_pattern_mix, result)
    return outputs


def test_figure03_04_case_study(benchmark, eras_results_cache):
    outputs = run_once(benchmark, lambda: _build_case_study(eras_results_cache))
    for dataset, (rendering, group_pattern_mix, result) in outputs.items():
        print(f"\n=== searched relation-aware scoring functions on {dataset} ===")
        print(rendering)
        print("group pattern mix:", dict(group_pattern_mix))
        # Structural checks: the searched candidate has the requested number of groups,
        # every group structure is non-degenerate, and every relation is assigned.
        assert result.best_candidate.num_groups == 3
        assert all(structure.nonzero_count() > 0 for structure in result.best_structures())
        assigned = sum(len(v) for v in result.relations_per_group().values())
        assert assigned == harness_graph(dataset).num_relations
