"""Table IX: running time of the automated approaches.

The paper's shape: AutoSF's greedy search (stand-alone training of every candidate) costs
at least an order of magnitude more wall-clock than ERAS's one-shot search; ERAS_N=1 and
ERAS cost roughly the same as training a couple of hand-designed models.
"""

import dataclasses

from repro.bench import TableReport, quick_autosf_config, train_structure
from repro.models.trainer import TrainerConfig
from repro.scoring import named_structure
from repro.search import AutoSFSearcher

from benchmarks.conftest import harness_eras_config, harness_graph, run_once
from repro.search import ERASSearcher
from repro.search.variants import eras_n1

DATASETS = ("wn18rr_like", "fb15k237_like")


def _autosf_config():
    return dataclasses.replace(
        quick_autosf_config(),
        max_budget=6,
        num_parents=2,
        num_sampled_children=6,
        top_k=2,
        trainer=TrainerConfig(epochs=8, valid_every=4, patience=1, seed=0),
    )


def _build_table():
    report = TableReport("Table IX -- search / training wall-clock (seconds)")
    for dataset in DATASETS:
        graph = harness_graph(dataset)
        autosf = AutoSFSearcher(_autosf_config()).search(graph)
        eras1 = eras_n1(harness_eras_config(num_groups=1)).search(graph)
        eras = ERASSearcher(harness_eras_config(num_groups=3)).search(graph)
        _, distmult_run = train_structure(graph, named_structure("distmult"), dim=48, epochs=20, seed=0)
        report.add_row(
            dataset=dataset,
            autosf_search_s=round(autosf.search_seconds, 1),
            eras_n1_search_s=round(eras1.search_seconds, 1),
            eras_search_s=round(eras.search_seconds, 1),
            distmult_training_s=round(distmult_run.wall_clock_seconds, 1),
            autosf_evaluations=autosf.evaluations,
            eras_evaluations=eras.evaluations,
        )
    return report


def test_table09_running_time(benchmark):
    report = run_once(benchmark, _build_table)
    report.show()
    for row in report.rows:
        # Paper shape: the one-shot ERAS search is much cheaper per candidate evaluation
        # than AutoSF's stand-alone protocol.
        autosf_cost = row["autosf_search_s"] / row["autosf_evaluations"]
        eras_cost = row["eras_search_s"] / row["eras_evaluations"]
        assert autosf_cost > 2 * eras_cost, row["dataset"]
        # ERAS's total search time is comparable to (a small multiple of) a single
        # hand-designed model's training time -- not orders of magnitude above it.
        assert row["eras_search_s"] < 30 * max(row["distmult_training_s"], 0.5), row["dataset"]
