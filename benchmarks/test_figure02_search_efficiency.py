"""Figure 2: search efficiency -- best validation MRR versus search wall-clock.

The paper's shape: ERAS and ERAS_N=1 finish their search one to two orders of magnitude
faster than the stand-alone AutoML baselines (AutoSF, random search, Bayes search) because
they never train candidates from scratch during the search.

This module also times the derive phase of Algorithm 2 under the PR-2 runtime (serial
seed loop vs :class:`~repro.runtime.evaluation.EvaluationPool` vs warm
:class:`~repro.runtime.evaluation.EvalCache`) through the same
:func:`repro.runtime.profiling.time_derive_phase` workload that backs
``python -m repro bench --workload derive``.
"""

import dataclasses
import os

from repro.bench import SeriesReport, TableReport, quick_bayes_config, quick_random_config, write_bench_json
from repro.datasets import load_benchmark
from repro.models.trainer import TrainerConfig
from repro.runtime.profiling import time_derive_phase
from repro.search import BayesSearcher, ERASSearcher, RandomSearcher
from repro.search.variants import eras_n1

from benchmarks.conftest import harness_eras_config, harness_graph, run_once

DATASET = "wn18rr_like"
# The derive-timing workload uses a bigger graph so each one-shot scoring is heavy
# enough for process-level parallelism to matter.
DERIVE_TIMING_DATASET = "fb15k_like"


def _cheap_trainer():
    return TrainerConfig(epochs=8, valid_every=4, patience=1, seed=0)


def _build_series():
    report = SeriesReport("Figure 2 -- search efficiency", x_label="seconds", y_label="best validation MRR")
    graph = harness_graph(DATASET)
    searchers = {
        "ERAS": ERASSearcher(harness_eras_config(num_groups=3)),
        "ERAS_N=1": eras_n1(harness_eras_config(num_groups=1)),
        "Random": RandomSearcher(dataclasses.replace(quick_random_config(num_candidates=5), trainer=_cheap_trainer())),
        "Bayes": BayesSearcher(dataclasses.replace(quick_bayes_config(num_candidates=5), trainer=_cheap_trainer())),
    }
    totals = {}
    per_evaluation = {}
    for label, searcher in searchers.items():
        result = searcher.search(graph)
        best = 0.0
        for point in result.trace:
            best = max(best, point.valid_mrr)
            report.add_point(label, point.elapsed_seconds, best)
        totals[label] = result.search_seconds
        per_evaluation[label] = result.search_seconds / max(result.evaluations, 1)
    return report, totals, per_evaluation


def test_figure02_search_efficiency(benchmark):
    report, totals, per_evaluation = run_once(benchmark, _build_series)
    report.show()
    print("total search seconds:", {k: round(v, 1) for k, v in totals.items()})
    print("seconds per candidate evaluation:", {k: round(v, 3) for k, v in per_evaluation.items()})
    # Paper shape: the one-shot searches evaluate candidates orders of magnitude more
    # cheaply than the stand-alone baselines (which must train every candidate from
    # scratch).  At the tiny harness scale the *total* wall clock of 5-candidate random /
    # Bayes runs is not meaningful, so the assertion is on the per-evaluation cost -- the
    # quantity that produces the paper's orders-of-magnitude gap at realistic budgets.
    assert per_evaluation["ERAS_N=1"] < 0.5 * per_evaluation["Random"]
    assert per_evaluation["ERAS_N=1"] < 0.5 * per_evaluation["Bayes"]
    assert per_evaluation["ERAS"] < per_evaluation["Random"]


def _derive_timing_row():
    graph = load_benchmark(DERIVE_TIMING_DATASET, scale=1.0, seed=0)
    return time_derive_phase(graph, num_candidates=64, workers=2, dim=64, seed=0)


def test_derive_phase_runtime_timing(benchmark):
    """Serial-vs-parallel-vs-cached derive-phase timing under the PR-2 runtime."""
    row = run_once(benchmark, _derive_timing_row)
    report = TableReport("Derive phase: serial seed loop vs EvaluationPool vs warm EvalCache")
    report.add_row(**row)
    report.show()
    path = write_bench_json("derive", row)
    print(f"perf trajectory written to {path}")
    # Parallelism must never change the result: every strategy scores bit-identically.
    assert row["scores_match"]
    # The cache makes re-scoring a candidate essentially free -- this is the regime of
    # the anchor pass and of converged controllers resampling the same structures, and
    # it holds on any machine.
    assert row["cached_seconds"] < 0.5 * row["serial_seconds"]
    # The warm pool ships payloads through shared memory and keeps workers alive, so
    # even with every process pinned to one core the steady-state parallel pass must
    # stay in the same ballpark as the serial loop (2x is a sanity bound against
    # pathological overhead, with headroom for noisy shared runners)...
    assert row["parallel_seconds"] < 2.0 * row["serial_seconds"]
    # ...and a strict wall-clock win needs real spare cores: single-CPU containers
    # share one core between the fork workers, and 2-vCPU CI runners are too noisy for
    # a strict inequality to be a reliable gate (benchmarks/test_shared_memory_pool.py
    # applies the >=2-core parallel_speedup > 1.5 acceptance gate).
    if (os.cpu_count() or 1) >= 4:
        assert row["parallel_seconds"] < row["serial_seconds"]
