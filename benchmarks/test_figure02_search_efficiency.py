"""Figure 2: search efficiency -- best validation MRR versus search wall-clock.

The paper's shape: ERAS and ERAS_N=1 finish their search one to two orders of magnitude
faster than the stand-alone AutoML baselines (AutoSF, random search, Bayes search) because
they never train candidates from scratch during the search.
"""

import dataclasses

from repro.bench import SeriesReport, quick_bayes_config, quick_random_config
from repro.models.trainer import TrainerConfig
from repro.search import BayesSearcher, ERASSearcher, RandomSearcher
from repro.search.variants import eras_n1

from benchmarks.conftest import harness_eras_config, harness_graph, run_once

DATASET = "wn18rr_like"


def _cheap_trainer():
    return TrainerConfig(epochs=8, valid_every=4, patience=1, seed=0)


def _build_series():
    report = SeriesReport("Figure 2 -- search efficiency", x_label="seconds", y_label="best validation MRR")
    graph = harness_graph(DATASET)
    searchers = {
        "ERAS": ERASSearcher(harness_eras_config(num_groups=3)),
        "ERAS_N=1": eras_n1(harness_eras_config(num_groups=1)),
        "Random": RandomSearcher(dataclasses.replace(quick_random_config(num_candidates=5), trainer=_cheap_trainer())),
        "Bayes": BayesSearcher(dataclasses.replace(quick_bayes_config(num_candidates=5), trainer=_cheap_trainer())),
    }
    totals = {}
    per_evaluation = {}
    for label, searcher in searchers.items():
        result = searcher.search(graph)
        best = 0.0
        for point in result.trace:
            best = max(best, point.valid_mrr)
            report.add_point(label, point.elapsed_seconds, best)
        totals[label] = result.search_seconds
        per_evaluation[label] = result.search_seconds / max(result.evaluations, 1)
    return report, totals, per_evaluation


def test_figure02_search_efficiency(benchmark):
    report, totals, per_evaluation = run_once(benchmark, _build_series)
    report.show()
    print("total search seconds:", {k: round(v, 1) for k, v in totals.items()})
    print("seconds per candidate evaluation:", {k: round(v, 3) for k, v in per_evaluation.items()})
    # Paper shape: the one-shot searches evaluate candidates orders of magnitude more
    # cheaply than the stand-alone baselines (which must train every candidate from
    # scratch).  At the tiny harness scale the *total* wall clock of 5-candidate random /
    # Bayes runs is not meaningful, so the assertion is on the per-evaluation cost -- the
    # quantity that produces the paper's orders-of-magnitude gap at realistic budgets.
    assert per_evaluation["ERAS_N=1"] < 0.5 * per_evaluation["Random"]
    assert per_evaluation["ERAS_N=1"] < 0.5 * per_evaluation["Bayes"]
    assert per_evaluation["ERAS"] < per_evaluation["Random"]
