"""Figure 6: impact of the number of relation groups N on quality and search time.

The paper's shape: search/training time grows with N, and some N > 1 is at least as good
as the task-aware N = 1 setting.
"""

from repro.bench import SeriesReport, retrain_searched
from repro.eval import RankingEvaluator
from repro.search import ERASSearcher
from repro.search.variants import eras_n1

from benchmarks.conftest import FINAL_EPOCHS, harness_eras_config, harness_graph, run_once

DATASET = "wn18rr_like"
GROUP_COUNTS = (1, 2, 3, 4)


def _build_series():
    report = SeriesReport("Figure 6 -- impact of the number of groups N",
                          x_label="N", y_label="test MRR")
    graph = harness_graph(DATASET)
    evaluator = RankingEvaluator(graph)
    times = {}
    for num_groups in GROUP_COUNTS:
        config = harness_eras_config(num_groups=num_groups)
        searcher = ERASSearcher(config) if num_groups > 1 else eras_n1(config)
        result = searcher.search(graph)
        model, _ = retrain_searched(graph, result, dim=48, epochs=FINAL_EPOCHS, seed=0)
        metrics = evaluator.evaluate(model, split="test")
        report.add_point("test_mrr", num_groups, metrics.mrr)
        report.add_point("search_seconds", num_groups, result.search_seconds)
        times[num_groups] = result.search_seconds
    return report, times


def test_figure06_group_number(benchmark):
    report, times = run_once(benchmark, _build_series)
    report.show()
    mrr_by_n = dict(report.series["test_mrr"])
    # Paper shape: relation-aware settings (N > 1) reach at least the task-aware quality.
    assert max(mrr_by_n[n] for n in GROUP_COUNTS if n > 1) >= 0.85 * mrr_by_n[1]
    # And the search cost grows with the number of groups.
    assert times[max(GROUP_COUNTS)] > times[1]
