"""Table I: expressiveness and complexity summary of scoring functions.

The paper's Table I marks which scoring functions are expressive / task-aware /
relation-aware and compares inference cost.  Here the expressiveness column is computed
symbolically from the block structures and the inference cost is measured directly.
"""

import numpy as np

from repro.autodiff import Tensor, no_grad
from repro.bench import TableReport
from repro.scoring import (
    CLASSIC_STRUCTURES,
    BlockScoringFunction,
    TransEScorer,
    analyze_structure,
)

from benchmarks.conftest import run_once


def _build_table():
    report = TableReport("Table I -- expressiveness of scoring functions")
    rng = np.random.default_rng(0)
    dim = 64
    head = Tensor(rng.normal(size=(256, dim)))
    relation = Tensor(rng.normal(size=(256, dim)))
    tail = Tensor(rng.normal(size=(256, dim)))

    rows = [("TransE", TransEScorer(), None)]
    rows += [(name, BlockScoringFunction(structure), structure) for name, structure in CLASSIC_STRUCTURES.items()]
    for name, scorer, structure in rows:
        if structure is not None:
            expressiveness = analyze_structure(structure)
            expressive = "yes" if expressiveness.fully_expressive else "no"
        else:
            expressive = "no"  # TransE cannot model symmetric relations (Table I of the paper)
        with no_grad():
            import time

            start = time.perf_counter()
            scorer.score(head, relation, tail)
            elapsed = time.perf_counter() - start
        report.add_row(
            scoring_function=name,
            expressive=expressive,
            task_aware="searched" if name == "autosf" else "no",
            relation_aware="no",
            inference_cost="O(d)",
            measured_us_per_triple=round(1e6 * elapsed / 256, 2),
        )
    report.add_row(
        scoring_function="ERAS (searched)",
        expressive="yes",
        task_aware="yes",
        relation_aware="yes",
        inference_cost="O(d)",
        measured_us_per_triple="(same bilinear form)",
    )
    return report


def test_table01_expressiveness(benchmark):
    report = run_once(benchmark, _build_table)
    report.show()
    by_name = {row["scoring_function"]: row for row in report.rows}
    # The paper's qualitative claims: DistMult and TransE are not fully expressive,
    # ComplEx/SimplE/Analogy are.
    assert by_name["distmult"]["expressive"] == "no"
    assert by_name["transe" if "transe" in by_name else "TransE"]["expressive"] == "no"
    assert by_name["complex"]["expressive"] == "yes"
    assert by_name["simple"]["expressive"] == "yes"
