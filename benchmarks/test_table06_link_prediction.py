"""Table VI: link-prediction comparison of ERAS against baselines on the five benchmarks.

The paper's shape: the searched, task-aware methods (AutoSF / ERAS_N=1) match or beat the
best hand-designed bilinear scoring functions, and relation-aware ERAS is at least as good
as its task-aware variant.  Absolute values differ from the paper because the datasets are
scaled-down synthetic stand-ins (see DESIGN.md).
"""


from repro.bench import TableReport, retrain_searched, train_structure
from repro.eval import RankingEvaluator
from repro.scoring import TransEScorer, named_structure

from benchmarks.conftest import FINAL_EPOCHS, harness_graph, run_once

DATASETS = ("wn18_like", "wn18rr_like", "fb15k_like", "fb15k237_like", "yago3_like")
BASELINES = {
    "TransE": lambda: TransEScorer(),
    "DistMult": lambda: named_structure("distmult"),
    "ComplEx": lambda: named_structure("complex"),
    "SimplE": lambda: named_structure("simple"),
}


def _build_table(eras_results_cache):
    report = TableReport("Table VI -- link prediction (filtered test metrics)")
    for dataset in DATASETS:
        graph = harness_graph(dataset)
        evaluator = RankingEvaluator(graph)
        best_baseline_mrr = 0.0
        for name, factory in BASELINES.items():
            model, _ = train_structure(graph, factory(), dim=48, epochs=FINAL_EPOCHS, seed=0)
            metrics = evaluator.evaluate(model, split="test")
            best_baseline_mrr = max(best_baseline_mrr, metrics.mrr)
            report.add_row(dataset=dataset, model=name, **metrics.as_row())
        for groups, label in ((1, "ERAS_N=1"), (3, "ERAS")):
            result = eras_results_cache(dataset, groups)
            model, _ = retrain_searched(graph, result, dim=48, epochs=FINAL_EPOCHS, seed=0)
            metrics = evaluator.evaluate(model, split="test")
            report.add_row(dataset=dataset, model=label, **metrics.as_row())
    return report


def test_table06_link_prediction(benchmark, eras_results_cache):
    report = run_once(benchmark, lambda: _build_table(eras_results_cache))
    report.show()
    rows = {(row["dataset"], row["model"]): row for row in report.rows}
    for dataset in DATASETS:
        baseline_mrrs = [rows[(dataset, name)]["MRR"] for name in BASELINES]
        eras_mrr = rows[(dataset, "ERAS")]["MRR"]
        # Paper shape: the searched scoring functions are competitive with the best
        # hand-designed baseline (allowing slack for the noisy small-scale proxy).
        assert eras_mrr >= 0.8 * max(baseline_mrrs), dataset
        # And clearly better than the weakest baseline.
        assert eras_mrr > min(baseline_mrrs), dataset
