"""Figure 7: impact of the number of embedding blocks M.

The paper's shape: M = 4 (the AutoSF default) is the sweet spot among {3, 4, 5}; other
block counts remain functional (which AutoSF itself cannot offer without a redesign), and
the search cost grows with M.
"""

from repro.bench import SeriesReport, retrain_searched
from repro.eval import RankingEvaluator
from repro.search import ERASSearcher

from benchmarks.conftest import FINAL_EPOCHS, harness_eras_config, harness_graph, run_once

DATASET = "wn18rr_like"
BLOCK_COUNTS = (3, 4, 5)


def _build_series():
    report = SeriesReport("Figure 7 -- impact of the number of blocks M",
                          x_label="M", y_label="test MRR")
    graph = harness_graph(DATASET)
    evaluator = RankingEvaluator(graph)
    for num_blocks in BLOCK_COUNTS:
        # The embedding dimension must stay divisible by M.
        dim = 48 if num_blocks in (3, 4) else 40
        config = harness_eras_config(num_groups=3, num_blocks=num_blocks)
        config.supernet.dim = dim
        result = ERASSearcher(config).search(graph)
        model, _ = retrain_searched(graph, result, dim=dim, epochs=FINAL_EPOCHS, seed=0)
        metrics = evaluator.evaluate(model, split="test")
        report.add_point("test_mrr", num_blocks, metrics.mrr)
        report.add_point("search_seconds", num_blocks, result.search_seconds)
    return report


def test_figure07_block_number(benchmark):
    report = run_once(benchmark, _build_series)
    report.show()
    mrr_by_m = dict(report.series["test_mrr"])
    assert set(mrr_by_m) == set(BLOCK_COUNTS)
    # Every block count must produce a working scoring function; M = 4 should be
    # competitive with the alternatives (the paper's observation), within noise.
    assert all(value > 0.0 for value in mrr_by_m.values())
    assert mrr_by_m[4] >= 0.7 * max(mrr_by_m.values())
