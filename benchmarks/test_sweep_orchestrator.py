"""Sweep workload: the paper's headline comparison grid through the orchestrator.

This is the Figure 2 / Table IX execution model at benchmark scale: ERAS, AutoSF,
random and Bayes search x 2 seeds, expanded into shards and run by
:class:`~repro.runtime.orchestrator.SweepOrchestrator` on a 2-worker pool -- with a
worker kill injected mid-step to prove the fault-tolerance contract under the same
conditions the unit tests assert it (the resumed sweep's timing-stripped aggregated
report is bit-identical to the uninterrupted serial reference).

The module also persists the serial-vs-pooled timing row as ``BENCH_sweep.json``
(through :func:`~repro.runtime.profiling.time_sweep`, the same code path as
``python -m repro bench --workload sweep``).  The structural gates hold on any host;
the ``pool(2) wall clock < serial sum`` gate -- the reason the orchestrator exists --
only applies where real parallelism is available (>= 2 cores), per the single-core-CI
rule of docs/PERFORMANCE.md.
"""

from __future__ import annotations

import os

from repro.bench import TableReport, write_bench_json
from repro.runtime import SweepConfig, SweepOrchestrator, strip_timing
from repro.runtime.orchestrator import KILL_ENV_VAR
from repro.runtime.profiling import time_sweep
from repro.search.base import SearchBudget

from benchmarks.conftest import BENCH_SEED, run_once

SWEEP_SCALE = 0.4
SWEEP_SEARCHERS = ("eras", "autosf", "random", "bayes")
SWEEP_SEEDS = (0, 1)
KILLED_SHARD = "eras-wn18rr_like-seed0-b0"


def _sweep_config(**overrides) -> SweepConfig:
    defaults = dict(
        searchers=SWEEP_SEARCHERS,
        seeds=SWEEP_SEEDS,
        datasets=("wn18rr_like",),
        budgets=(SearchBudget(max_steps=2),),
        scale=SWEEP_SCALE,
        data_seed=BENCH_SEED,
        num_groups=2,
        search_epochs=2,
        num_candidates=4,
        derive_samples=8,
        dim=16,
        proxy_epochs=2,
        train_final=False,
        max_workers=1,
    )
    defaults.update(overrides)
    return SweepConfig(**defaults)


def test_sweep_orchestrator_comparison_grid(benchmark, tmp_path, monkeypatch):
    # Uninterrupted serial reference: the ground truth every fault path must match.
    reference = run_once(
        benchmark, lambda: SweepOrchestrator(_sweep_config(), tmp_path / "serial").run()
    )
    assert reference.ok

    by_name = {entry["searcher"]: entry for entry in reference.payload["per_searcher"]}
    assert set(by_name) == set(SWEEP_SEARCHERS)
    assert all(entry["shards"] == len(SWEEP_SEEDS) for entry in by_name.values())
    # The cost asymmetry of Table IX survives aggregation: one stand-alone-training
    # evaluation (AutoSF) buys far fewer evaluations than one-shot scoring (ERAS).
    assert by_name["eras"]["mean_evaluations"] > by_name["autosf"]["mean_evaluations"]

    # Injected worker kill mid-step on the 2-worker pool, no retries left: the shard
    # fails, every other shard completes, and --resume finishes from the checkpoint.
    monkeypatch.setenv(KILL_ENV_VAR, f"{KILLED_SHARD}@1")
    killed_dir = tmp_path / "pooled"
    first = SweepOrchestrator(
        _sweep_config(max_workers=2, max_shard_retries=0), killed_dir
    ).run()
    assert first.failed == (KILLED_SHARD,)
    assert (killed_dir / "shards" / KILLED_SHARD / "kill.fired").is_file()

    resumed = SweepOrchestrator.from_directory(killed_dir).run(resume=True)
    assert resumed.ok
    assert strip_timing(resumed.payload) == strip_timing(reference.payload)

    report = TableReport("Sweep orchestration -- fair comparison (search-only shards)")
    for entry in reference.payload["per_searcher"]:
        report.add_row(**entry)
    report.show()


def test_sweep_throughput_row(benchmark):
    row = run_once(benchmark, lambda: time_sweep(workers=2, scale=SWEEP_SCALE))

    report = TableReport("Sweep workload -- serial vs pooled shard execution")
    report.add_row(**row)
    report.show()
    path = write_bench_json("sweep", row)
    print(f"perf trajectory written to {path}")

    assert row["reports_match"], "pooled sweep diverged from the serial reference"
    assert row["shards"] >= 4 and row["workers"] == 2
    assert row["serial_shard_seconds_sum"] > 0 and row["pool_wall_seconds"] > 0
    # The point of the pool: on hosts with real parallelism, running the grid on two
    # workers beats paying the shards' serial sum.  Fork workers share the single
    # core of the dev container, so the strict gate applies from 2 cores up.
    if (os.cpu_count() or 1) >= 2:
        assert row["pool_wall_seconds"] < row["serial_shard_seconds_sum"], (
            f"pool(2) took {row['pool_wall_seconds']}s against a serial sum of "
            f"{row['serial_shard_seconds_sum']}s on a {os.cpu_count()}-core host"
        )
