"""Benchmark harness package; the marker lets pytest import benchmark modules as
``benchmarks.<name>`` so basenames may repeat across ``tests/`` and ``benchmarks/``."""
