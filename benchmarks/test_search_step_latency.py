"""Search workload: one budgeted step of every registered searcher.

The unified :class:`~repro.search.base.Searcher` protocol makes "one step" a
comparable unit across algorithms -- an ERAS supernet epoch, an AutoSF greedy
shortlist round, a random/Bayes candidate batch -- all driven by the identical loop
under ``SearchBudget(max_steps=1)``.  This workload times that step per registered
searcher on the FB15k-like benchmark and persists the rows as ``BENCH_search.json``
(uploaded as a CI artifact alongside the ranking/derive/serving files), so the paper's
per-evaluation cost asymmetry (Table IX: stand-alone training vs one-shot scoring) is
tracked commit over commit for every algorithm at once.

The gates are deliberately structural rather than absolute-time: every registered
searcher must produce a row, every step must perform at least one candidate
evaluation, and the stand-alone AutoSF step must stay more expensive per evaluation
than the one-shot ERAS step (the qualitative asymmetry the reproduction preserves).
"""

from repro.bench import TableReport, bench_graph, write_bench_json
from repro.runtime.profiling import time_search_steps
from repro.search import available_searchers

from benchmarks.conftest import BENCH_SEED, run_once

SEARCH_STEP_SCALE = 0.35
STEP_DIM = 32


def test_search_step_latency(benchmark):
    graph = bench_graph("fb15k_like", scale=SEARCH_STEP_SCALE, seed=BENCH_SEED)
    rows = run_once(benchmark, lambda: time_search_steps(graph, workers=1, dim=STEP_DIM, seed=BENCH_SEED))

    report = TableReport("Search workload -- one budgeted step per registered searcher")
    for row in rows:
        report.add_row(**row)
    report.show()
    path = write_bench_json("search", rows)
    print(f"perf trajectory written to {path}")

    by_name = {row["searcher"]: row for row in rows}
    assert set(by_name) == set(available_searchers())
    assert all(row["step_seconds"] > 0 and row["evaluations"] >= 1 for row in rows)
    assert all(row["steps_completed"] == 1 for row in rows)  # max_steps=1 spent exactly
    # The cost asymmetry of Table IX: a stand-alone training evaluation (AutoSF) costs
    # more wall clock than a one-shot supernet reward evaluation (ERAS).
    assert by_name["autosf"]["seconds_per_evaluation"] > by_name["eras"]["seconds_per_evaluation"]
