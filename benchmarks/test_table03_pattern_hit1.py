"""Table III: Hit@1 of existing scoring functions on symmetric vs anti-symmetric relations.

The paper's observation: non-universal DistMult is strong on symmetric relations but weak
on anti-symmetric ones, while universal scoring functions are not uniformly better at the
relation-pattern level.  The bench trains each hand-designed scoring function on the
wn18rr-like and fb15k237-like benchmarks and reports pattern-level Hit@1.
"""


from repro.bench import TableReport, train_structure
from repro.eval import PatternLevelEvaluator
from repro.kg import RelationPattern
from repro.scoring import TransEScorer, named_structure

from benchmarks.conftest import FINAL_EPOCHS, harness_graph, run_once

DATASETS = ("wn18rr_like", "fb15k237_like")
SCORERS = {
    "TransE": TransEScorer(),
    "DistMult": named_structure("distmult"),
    "ComplEx": named_structure("complex"),
    "SimplE": named_structure("simple"),
    "Analogy": named_structure("analogy"),
}


def _build_table():
    report = TableReport("Table III -- pattern-level Hit@1 (in %) of existing scoring functions")
    for dataset in DATASETS:
        graph = harness_graph(dataset)
        evaluator = PatternLevelEvaluator(graph)
        for name, scorer in SCORERS.items():
            model, _ = train_structure(graph, scorer, dim=48, epochs=FINAL_EPOCHS, seed=0)
            symmetric = evaluator.evaluate_pattern(model, RelationPattern.SYMMETRIC).metrics
            anti = evaluator.evaluate_pattern(model, RelationPattern.ANTI_SYMMETRIC).metrics
            report.add_row(
                dataset=dataset,
                scoring_function=name,
                symmetric_hit1=round(100 * symmetric.hit1, 1),
                anti_symmetric_hit1=round(100 * anti.hit1, 1),
                overall_mrr=round(
                    PatternLevelEvaluator(graph)._ranking.evaluate(model, split="test").mrr, 3
                ),
            )
    return report


def test_table03_pattern_hit1(benchmark):
    report = run_once(benchmark, _build_table)
    report.show()
    rows = {(row["dataset"], row["scoring_function"]): row for row in report.rows}
    for dataset in DATASETS:
        distmult = rows[(dataset, "DistMult")]
        transe = rows[(dataset, "TransE")]
        # Paper shape: DistMult is strong on symmetric relations, TransE is weak there.
        assert distmult["symmetric_hit1"] >= transe["symmetric_hit1"]
    # And DistMult's symmetric Hit@1 dwarfs its anti-symmetric Hit@1 (the motivation of
    # relation-aware scoring functions).
    wn = rows[("wn18rr_like", "DistMult")]
    assert wn["symmetric_hit1"] > wn["anti_symmetric_hit1"]
