"""HTTP serving workload: end-to-end latency, throughput and overload shedding.

Drives the full network stack -- real sockets, HTTP parsing, admission queue,
micro-batching, scoring -- with concurrent keep-alive clients against a
:class:`~repro.serve.http.BackgroundHttpServer`, in two phases:

- **steady**: a closed-loop fleet of clients issues seeded link-prediction requests
  and records client-observed latencies; the row reports p50/p95 and end-to-end qps.
- **overload**: a deliberately slow engine behind a tiny admission queue is hammered
  with more concurrency than it can absorb; the row reports the shed rate and the
  gate asserts every request was answered (200 or 503 + ``Retry-After``) -- overload
  must degrade into fast rejections, never into hangs.

``BENCH_http.json`` extends the perf trajectory: the committed baseline pins
``predict_p50_ms`` / ``predict_p95_ms``, which ``scripts/check_bench_regression.py``
gates lower-is-better with the same noise floor as the wall-clock fields.
"""

import http.client
import json
import threading
import time

from repro.bench import bench_graph, summarize_latencies, train_structure, write_bench_json
from repro.bench.reporting import TableReport
from repro.scoring import named_structure
from repro.serve import (
    BackgroundHttpServer,
    FrontendConfig,
    LinkPredictionEngine,
    ServingFrontend,
)
from repro.utils.rng import new_rng

from benchmarks.conftest import BENCH_SEED, run_once

STEADY_CLIENTS = 8
STEADY_REQUESTS_PER_CLIENT = 20
OVERLOAD_CLIENTS = 8
OVERLOAD_REQUESTS_PER_CLIENT = 6
# Worst acceptable client-observed p95 for the tiny steady workload; far above the
# expected single-core number, so only a pathological stall trips it here (the real
# regression gate is the committed BENCH_http.json baseline).
MAX_SANE_P95_MS = 5000.0


class _SlowEngine:
    """Delays every batch so the admission queue actually fills under load."""

    def __init__(self, inner, delay_s):
        self.inner = inner
        self.delay_s = delay_s

    def validate_query(self, query):
        self.inner.validate_query(query)

    def predict(self, queries):
        time.sleep(self.delay_s)
        return self.inner.predict(queries)


def _client_loop(address, requests, statuses, latencies_ms, lock):
    """One keep-alive client issuing sequential predict requests."""
    conn = http.client.HTTPConnection(address[0], address[1], timeout=60.0)
    try:
        for body in requests:
            started = time.perf_counter()
            conn.request("POST", "/v1/predict", body=json.dumps(body),
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            response.read()
            elapsed_ms = (time.perf_counter() - started) * 1000.0
            with lock:
                statuses.append(response.status)
                latencies_ms.append(elapsed_ms)
            if response.status == 503:
                # shed responses may close the connection; reconnect for the next try
                conn.close()
                conn = http.client.HTTPConnection(address[0], address[1], timeout=60.0)
    finally:
        conn.close()


def _fire_clients(address, per_client_requests):
    statuses, latencies_ms, lock = [], [], threading.Lock()
    threads = [
        threading.Thread(target=_client_loop, args=(address, requests, statuses, latencies_ms, lock))
        for requests in per_client_requests
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120.0)
    assert not any(thread.is_alive() for thread in threads), "a benchmark client hung"
    return statuses, latencies_ms, time.perf_counter() - started


def _request_stream(graph, rng, count):
    stream = []
    for index in range(count):
        body = {"relation": int(rng.integers(graph.num_relations)), "k": 10}
        body["head" if index % 2 == 0 else "tail"] = int(rng.integers(graph.num_entities))
        stream.append(body)
    return stream


def _run_workload():
    graph = bench_graph("wn18rr_like", scale=0.35, seed=BENCH_SEED)
    model, _ = train_structure(graph, named_structure("distmult"), dim=32, epochs=8, seed=BENCH_SEED)
    engine = LinkPredictionEngine.from_graph(model, graph, cache_size=0)
    rng = new_rng(BENCH_SEED)

    # -------------------------------------------------------------- steady phase
    frontend = ServingFrontend(
        engine, model_name="bench", version=1,
        config=FrontendConfig(max_queue_depth=256, max_batch_size=32, flush_interval_s=0.002),
    )
    with BackgroundHttpServer(frontend) as server:
        streams = [
            _request_stream(graph, rng, STEADY_REQUESTS_PER_CLIENT) for _ in range(STEADY_CLIENTS)
        ]
        statuses, latencies_ms, elapsed_s = _fire_clients(server.address, streams)
    steady_total = STEADY_CLIENTS * STEADY_REQUESTS_PER_CLIENT
    assert statuses.count(200) == steady_total, f"steady phase saw non-200s: {set(statuses)}"
    latency = summarize_latencies(latencies_ms)
    qps = steady_total / elapsed_s

    # -------------------------------------------------------------- overload phase
    slow_frontend = ServingFrontend(
        _SlowEngine(engine, delay_s=0.05), model_name="bench", version=1,
        config=FrontendConfig(
            max_queue_depth=4, max_batch_size=1,
            default_deadline_s=25.0, max_deadline_s=30.0,
        ),
    )
    with BackgroundHttpServer(slow_frontend) as server:
        streams = [
            _request_stream(graph, rng, OVERLOAD_REQUESTS_PER_CLIENT)
            for _ in range(OVERLOAD_CLIENTS)
        ]
        overload_statuses, _, _ = _fire_clients(server.address, streams)
    overload_total = OVERLOAD_CLIENTS * OVERLOAD_REQUESTS_PER_CLIENT
    shed = overload_statuses.count(503)
    answered_ok = overload_statuses.count(200)

    row = {
        "requests": steady_total,
        "clients": STEADY_CLIENTS,
        "qps": round(qps, 1),
        "predict_p50_ms": latency["p50_ms"],
        "predict_p95_ms": latency["p95_ms"],
        "predict_max_ms": latency["max_ms"],
        "overload_requests": overload_total,
        "overload_ok": answered_ok,
        "shed": shed,
        "shed_rate": round(shed / overload_total, 3),
    }
    return row, statuses, overload_statuses


def test_http_serving_load(benchmark):
    row, steady_statuses, overload_statuses = run_once(benchmark, _run_workload)
    report = TableReport("HTTP serving -- steady latency and overload shedding")
    report.add_row(**row)
    report.show()
    path = write_bench_json("http", row)
    print(f"perf trajectory written to {path}")

    # Steady traffic is all answered, with sane client-observed tail latency.
    assert set(steady_statuses) == {200}
    assert row["qps"] > 0
    assert 0 < row["predict_p50_ms"] <= row["predict_p95_ms"] <= MAX_SANE_P95_MS
    # Overload degrades into fast shedding, never hangs: every request got an answer,
    # some were shed with 503, and everything admitted was eventually served.
    assert set(overload_statuses) <= {200, 503}
    assert len(overload_statuses) == row["overload_requests"]
    assert row["shed"] > 0, "overload phase never shed -- queue bound not exercised"
    assert row["overload_ok"] + row["shed"] == row["overload_requests"]
