#!/usr/bin/env python
"""Compare fresh ``BENCH_*.json`` timings against the committed baselines.

The repository root holds one committed ``BENCH_<workload>.json`` per workload -- the
regression baselines.  Benchmark runs (pytest ``benchmarks/`` or ``python -m repro
bench``) write fresh files into an output directory (default ``./bench-out/``).  This
script pairs the two and applies a noise-tolerant gate to every wall-clock field:

- a fresh timing more than ``--fail-ratio`` (default 2.5x) slower than its baseline
  **fails** the run;
- slower than ``--warn-ratio`` (default 1.5x) but under the fail ratio only warns;
- sub-``--min-seconds`` fresh timings are skipped entirely (at that granularity CI
  jitter dwarfs any real regression), and tiny baselines are clamped before the
  ratio so a 2 ms -> 6 ms wobble can never fail the build.

Speedup fields (``*_speedup``) are **higher-is-better** and gate inverted: a fresh
speedup more than ``--fail-ratio`` *below* its baseline fails, more than
``--warn-ratio`` below warns.  Speedup rows whose underlying timings sit below the
noise floor are skipped by the same ``--min-seconds`` rule applied to the row's
wall-clock fields.

Latency percentile fields (``*p50_ms`` / ``*p95_ms``, as ``BENCH_http.json`` and the
serving workloads emit) are **lower-is-better** like the wall-clock fields and gated
the same noise-floor-aware way, with ``--min-seconds`` converted to milliseconds:
fresh percentiles under the floor are skipped and tiny baselines are clamped before
the ratio, so serving latencies are enforced rather than merely recorded.

Memory fields (``*_mb``, as ``BENCH_scale.json`` emits: tracemalloc evaluation peaks
and the process ``peak_rss_mb`` high-water mark) are **lower-is-better** and gated
with the same ratio thresholds under their own ``--min-mb`` noise floor: fresh values
below the floor are skipped and tiny baselines are clamped, so allocator jitter on
small runs cannot fail the build while a genuine memory blow-up on the large tier
does.

Throughput fields (``*_per_second``), counters and flags are ignored -- this gate is
about wall clock (and its speedup ratios) only; correctness flags have their own
pytest gates.  Hosts differ (the committed baselines record their host block), so
treat FAIL as "investigate", not proof of a regression on your machine.

Usage (what the CI ``benchmarks`` job runs after the harness)::

    python scripts/check_bench_regression.py --fresh bench-out --baseline . \
        --workloads ranking search
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, Iterator, List, Tuple


def load_bench(path: Path) -> Dict[str, object]:
    """Parse one ``BENCH_*.json`` file (the ``write_bench_json`` layout)."""
    with path.open("r", encoding="utf-8") as handle:
        return json.load(handle)


def timing_entries(workload: str, results: object, suffix: str = "_seconds") -> Iterator[Tuple[str, float]]:
    """Yield ``(label, value)`` for every ``suffix`` field of a results payload.

    A dict payload yields its matching fields directly; a list payload (one row per
    searcher, as ``BENCH_search.json`` uses) yields each row's fields labelled by the
    row's ``searcher`` (or its index).  The default suffix selects the wall-clock
    fields; ``"_speedup"`` selects the higher-is-better speedup fields.
    """
    if isinstance(results, dict):
        for key, value in sorted(results.items()):
            if key.endswith(suffix) and isinstance(value, (int, float)):
                yield f"{workload}.{key}", float(value)
    elif isinstance(results, list):
        for index, row in enumerate(results):
            if not isinstance(row, dict):
                continue
            label = row.get("searcher", row.get("dataset", index))
            for key, value in sorted(row.items()):
                if key.endswith(suffix) and isinstance(value, (int, float)):
                    yield f"{workload}[{label}].{key}", float(value)


def compare_workload(
    workload: str,
    fresh_dir: Path,
    baseline_dir: Path,
    fail_ratio: float,
    warn_ratio: float,
    min_seconds: float,
    min_mb: float = 64.0,
) -> Tuple[List[str], List[str], List[str]]:
    """Compare one workload; returns (report lines, warnings, failures)."""
    lines: List[str] = []
    warnings: List[str] = []
    failures: List[str] = []
    fresh_path = fresh_dir / f"BENCH_{workload}.json"
    baseline_path = baseline_dir / f"BENCH_{workload}.json"
    if not baseline_path.is_file():
        warnings.append(f"{workload}: no committed baseline at {baseline_path}; skipping")
        return lines, warnings, failures
    if not fresh_path.is_file():
        failures.append(
            f"{workload}: expected a fresh result at {fresh_path} -- did the benchmark "
            "harness run (and write into the same --fresh directory)?"
        )
        return lines, warnings, failures

    fresh = load_bench(fresh_path)
    baseline = load_bench(baseline_path)
    fresh_host = fresh.get("host", {})
    baseline_host = baseline.get("host", {})
    if fresh_host.get("cpu_count") != baseline_host.get("cpu_count"):
        lines.append(
            f"  note: host differs from baseline (cpu_count {fresh_host.get('cpu_count')} "
            f"vs {baseline_host.get('cpu_count')}); ratios compare across hosts"
        )

    baseline_times = dict(timing_entries(workload, baseline.get("results")))
    fresh_times = dict(timing_entries(workload, fresh.get("results")))
    for label, fresh_seconds in fresh_times.items():
        base_seconds = baseline_times.get(label)
        if base_seconds is None:
            lines.append(f"  NEW   {label}: {fresh_seconds:.4f}s (no baseline field)")
            continue
        if fresh_seconds < min_seconds:
            lines.append(f"  skip  {label}: {fresh_seconds:.4f}s (below the {min_seconds}s noise floor)")
            continue
        # Clamp tiny baselines so millisecond wobble cannot produce silly ratios.
        ratio = fresh_seconds / max(base_seconds, min_seconds / 2.0)
        verdict = "ok   "
        if ratio > fail_ratio:
            verdict = "FAIL "
            failures.append(
                f"{label}: {fresh_seconds:.4f}s is {ratio:.2f}x the baseline "
                f"{base_seconds:.4f}s (fail threshold {fail_ratio}x)"
            )
        elif ratio > warn_ratio:
            verdict = "warn "
            warnings.append(
                f"{label}: {fresh_seconds:.4f}s is {ratio:.2f}x the baseline "
                f"{base_seconds:.4f}s (warn threshold {warn_ratio}x)"
            )
        lines.append(
            f"  {verdict} {label}: fresh {fresh_seconds:.4f}s vs baseline "
            f"{base_seconds:.4f}s ({ratio:.2f}x)"
        )

    # Latency percentiles are lower-is-better in milliseconds: same gate as the
    # wall-clock fields, with the noise floor converted to ms.  Only the p50/p95
    # fields are enforced; mean/p99/max stay informational (p99 of a small request
    # sample is dominated by a single straggler, which is jitter, not regression).
    min_ms = min_seconds * 1000.0
    for suffix in ("p50_ms", "p95_ms"):
        baseline_latencies = dict(timing_entries(workload, baseline.get("results"), suffix=suffix))
        for label, fresh_ms in timing_entries(workload, fresh.get("results"), suffix=suffix):
            base_ms = baseline_latencies.get(label)
            if base_ms is None:
                lines.append(f"  NEW   {label}: {fresh_ms:.3f}ms (no baseline field)")
                continue
            if fresh_ms < min_ms:
                lines.append(f"  skip  {label}: {fresh_ms:.3f}ms (below the {min_ms:.0f}ms noise floor)")
                continue
            ratio = fresh_ms / max(base_ms, min_ms / 2.0)
            verdict = "ok   "
            if ratio > fail_ratio:
                verdict = "FAIL "
                failures.append(
                    f"{label}: {fresh_ms:.3f}ms is {ratio:.2f}x the baseline "
                    f"{base_ms:.3f}ms (fail threshold {fail_ratio}x)"
                )
            elif ratio > warn_ratio:
                verdict = "warn "
                warnings.append(
                    f"{label}: {fresh_ms:.3f}ms is {ratio:.2f}x the baseline "
                    f"{base_ms:.3f}ms (warn threshold {warn_ratio}x)"
                )
            lines.append(
                f"  {verdict} {label}: fresh {fresh_ms:.3f}ms vs baseline "
                f"{base_ms:.3f}ms ({ratio:.2f}x)"
            )

    # Memory fields are lower-is-better in MB: same shape as the wall-clock gate,
    # under the dedicated --min-mb floor (tracemalloc peaks of small runs and the
    # base interpreter RSS sit in allocator-jitter territory).
    baseline_memory = dict(timing_entries(workload, baseline.get("results"), suffix="_mb"))
    for label, fresh_mb in timing_entries(workload, fresh.get("results"), suffix="_mb"):
        base_mb = baseline_memory.get(label)
        if base_mb is None:
            lines.append(f"  NEW   {label}: {fresh_mb:.1f}MB (no baseline field)")
            continue
        if fresh_mb < min_mb:
            lines.append(f"  skip  {label}: {fresh_mb:.1f}MB (below the {min_mb:.0f}MB noise floor)")
            continue
        ratio = fresh_mb / max(base_mb, min_mb / 2.0)
        verdict = "ok   "
        if ratio > fail_ratio:
            verdict = "FAIL "
            failures.append(
                f"{label}: {fresh_mb:.1f}MB is {ratio:.2f}x the baseline "
                f"{base_mb:.1f}MB (fail threshold {fail_ratio}x)"
            )
        elif ratio > warn_ratio:
            verdict = "warn "
            warnings.append(
                f"{label}: {fresh_mb:.1f}MB is {ratio:.2f}x the baseline "
                f"{base_mb:.1f}MB (warn threshold {warn_ratio}x)"
            )
        lines.append(
            f"  {verdict} {label}: fresh {fresh_mb:.1f}MB vs baseline "
            f"{base_mb:.1f}MB ({ratio:.2f}x)"
        )

    # Speedup fields are higher-is-better: gate on how far the fresh value fell
    # BELOW its baseline.  Rows whose wall clocks sit entirely under the noise floor
    # are skipped -- a speedup ratio of two sub-jitter timings means nothing.
    baseline_speedups = dict(timing_entries(workload, baseline.get("results"), suffix="_speedup"))
    for label, fresh_speedup in timing_entries(workload, fresh.get("results"), suffix="_speedup"):
        base_speedup = baseline_speedups.get(label)
        if base_speedup is None:
            lines.append(f"  NEW   {label}: {fresh_speedup:.2f}x (no baseline field)")
            continue
        row_prefix = label.rsplit(".", 1)[0]
        row_clocks = [
            seconds for clock_label, seconds in fresh_times.items()
            if clock_label.rsplit(".", 1)[0] == row_prefix
        ]
        if row_clocks and max(row_clocks) < min_seconds:
            lines.append(f"  skip  {label}: underlying timings below the {min_seconds}s noise floor")
            continue
        ratio = max(base_speedup, 0.01) / max(fresh_speedup, 0.01)
        verdict = "ok   "
        if ratio > fail_ratio:
            verdict = "FAIL "
            failures.append(
                f"{label}: speedup {fresh_speedup:.2f}x is {ratio:.2f}x below the baseline "
                f"{base_speedup:.2f}x (fail threshold {fail_ratio}x)"
            )
        elif ratio > warn_ratio:
            verdict = "warn "
            warnings.append(
                f"{label}: speedup {fresh_speedup:.2f}x is {ratio:.2f}x below the baseline "
                f"{base_speedup:.2f}x (warn threshold {warn_ratio}x)"
            )
        lines.append(
            f"  {verdict} {label}: fresh {fresh_speedup:.2f}x vs baseline "
            f"{base_speedup:.2f}x speedup"
        )
    return lines, warnings, failures


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fresh", type=Path, default=Path("bench-out"),
        help="directory holding the freshly produced BENCH_*.json files (default: bench-out)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=Path("."),
        help="directory holding the committed baseline BENCH_*.json files (default: .)",
    )
    parser.add_argument(
        "--workloads", nargs="+", default=["ranking", "search"], metavar="NAME",
        help="workload names to compare, i.e. the <name> of BENCH_<name>.json "
        "(default: ranking search)",
    )
    parser.add_argument(
        "--fail-ratio", type=float, default=2.5,
        help="fresh/baseline ratio above which the check fails (default: 2.5)",
    )
    parser.add_argument(
        "--warn-ratio", type=float, default=1.5,
        help="fresh/baseline ratio above which the check warns (default: 1.5)",
    )
    parser.add_argument(
        "--min-seconds", type=float, default=0.05,
        help="skip fresh timings below this many seconds -- CI jitter territory "
        "(default: 0.05)",
    )
    parser.add_argument(
        "--min-mb", type=float, default=64.0,
        help="skip fresh memory fields below this many MB -- allocator jitter "
        "territory (default: 64)",
    )
    args = parser.parse_args(argv)

    all_warnings: List[str] = []
    all_failures: List[str] = []
    for workload in args.workloads:
        print(f"{workload}:")
        lines, warnings, failures = compare_workload(
            workload, args.fresh, args.baseline, args.fail_ratio, args.warn_ratio,
            args.min_seconds, args.min_mb,
        )
        for line in lines:
            print(line)
        all_warnings.extend(warnings)
        all_failures.extend(failures)

    if all_warnings:
        print(f"\n{len(all_warnings)} warning(s):")
        for warning in all_warnings:
            print(f"  warn: {warning}")
    if all_failures:
        print(f"\n{len(all_failures)} regression(s) above the fail threshold:")
        for failure in all_failures:
            print(f"  FAIL: {failure}")
        return 1
    print("\nbench regression gate: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
