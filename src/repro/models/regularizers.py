"""Embedding regularisers."""

from __future__ import annotations

from typing import Iterable

from repro.autodiff import Tensor


def l2_regularization(embeddings: Iterable[Tensor], weight: float) -> Tensor:
    """Squared-L2 penalty over the given embedding tensors."""
    total: Tensor | None = None
    for embedding in embeddings:
        term = (embedding * embedding).sum()
        total = term if total is None else total + term
    if total is None:
        raise ValueError("l2_regularization received no embeddings")
    return total * weight


def n3_regularization(embeddings: Iterable[Tensor], weight: float) -> Tensor:
    """Nuclear 3-norm penalty (Lacroix et al., 2018), the standard choice for bilinear KGE."""
    total: Tensor | None = None
    for embedding in embeddings:
        term = (embedding.abs() ** 3).sum()
        total = term if total is None else total + term
    if total is None:
        raise ValueError("n3_regularization received no embeddings")
    return total * weight
