"""KG embedding models and their training loop."""

from repro.models.kge import KGEModel
from repro.models.trainer import Trainer, TrainerConfig, TrainingResult
from repro.models.regularizers import l2_regularization, n3_regularization

__all__ = [
    "KGEModel",
    "Trainer",
    "TrainerConfig",
    "TrainingResult",
    "l2_regularization",
    "n3_regularization",
]
