"""The knowledge-graph embedding model.

:class:`KGEModel` bundles entity/relation embedding tables with one scoring function per
relation *group*.  A plain task-aware model (AutoSF, the classics) is the special case of
a single group containing every relation; the relation-aware models of ERAS use ``N > 1``
groups with an explicit assignment vector.  The same class also backs the ERAS supernet,
whose shared embeddings are simply this model's embedding tables evaluated under
different sampled structures.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from repro.autodiff import Tensor, functional as F
from repro.nn import Embedding, Module
from repro.scoring.base import ScoringFunction
from repro.scoring.bilinear import BlockScoringFunction
from repro.scoring.kernels import kernel_for, score_candidate_range, validate_tile_range
from repro.scoring.structure import BlockStructure
from repro.utils.rng import SeedLike, new_rng, spawn_rng

ScorerLike = Union[BlockStructure, ScoringFunction]


class KGEModel(Module):
    """Entity/relation embeddings plus per-group scoring functions.

    Parameters
    ----------
    num_entities, num_relations:
        Sizes of the embedding tables.
    dim:
        Embedding dimension (must be divisible by the block count of block structures).
    scorers:
        One scoring function per relation group.  :class:`BlockStructure` instances are
        wrapped into :class:`BlockScoringFunction` automatically.
    assignment:
        Integer array of length ``num_relations`` mapping each relation to a group.
        Defaults to all relations in group 0 (task-aware setting).
    """

    def __init__(
        self,
        num_entities: int,
        num_relations: int,
        dim: int,
        scorers: Union[ScorerLike, Sequence[ScorerLike]],
        assignment: Optional[np.ndarray] = None,
        seed: SeedLike = None,
        init_scale: float = 0.1,
    ) -> None:
        super().__init__()
        if isinstance(scorers, (BlockStructure, ScoringFunction)):
            scorers = [scorers]
        if not scorers:
            raise ValueError("at least one scoring function is required")
        self.num_entities = num_entities
        self.num_relations = num_relations
        self.dim = dim
        self.scorers: List[ScoringFunction] = [self._wrap(s) for s in scorers]
        self.assignment = self._validate_assignment(assignment, len(self.scorers), num_relations)
        rng = new_rng(seed)
        entity_seed, relation_seed = spawn_rng(rng, 2)
        self.entities = Embedding(num_entities, dim, scale=init_scale, seed=entity_seed)
        self.relations = Embedding(num_relations, dim, scale=init_scale, seed=relation_seed)

    # ------------------------------------------------------------------ setup helpers
    @staticmethod
    def _wrap(scorer: ScorerLike) -> ScoringFunction:
        if isinstance(scorer, BlockStructure):
            return BlockScoringFunction(scorer)
        if isinstance(scorer, ScoringFunction):
            return scorer
        raise TypeError(f"unsupported scorer type {type(scorer).__name__}")

    @staticmethod
    def _validate_assignment(assignment: Optional[np.ndarray], num_groups: int, num_relations: int) -> np.ndarray:
        if assignment is None:
            return np.zeros(num_relations, dtype=np.int64)
        assignment = np.asarray(assignment, dtype=np.int64)
        if assignment.shape != (num_relations,):
            raise ValueError(f"assignment must have shape ({num_relations},), got {assignment.shape}")
        if assignment.size and (assignment.min() < 0 or assignment.max() >= num_groups):
            raise ValueError(
                f"assignment values must be in [0, {num_groups}), got range "
                f"[{assignment.min()}, {assignment.max()}]"
            )
        return assignment

    @property
    def num_groups(self) -> int:
        """Number of relation groups (scoring functions)."""
        return len(self.scorers)

    def set_scorers(self, scorers: Sequence[ScorerLike], assignment: Optional[np.ndarray] = None) -> None:
        """Swap the scoring functions (and optionally the assignment) while keeping embeddings.

        This is exactly the supernet operation of ERAS: the shared embeddings persist and
        only the architecture on top changes.
        """
        wrapped = [self._wrap(s) for s in scorers]
        if not wrapped:
            raise ValueError("at least one scoring function is required")
        if assignment is None and len(wrapped) != self.num_groups:
            raise ValueError("assignment must be provided when the number of groups changes")
        self.scorers = wrapped
        if assignment is not None:
            self.assignment = self._validate_assignment(assignment, len(wrapped), self.num_relations)

    def set_assignment(self, assignment: np.ndarray) -> None:
        """Replace the relation-to-group assignment."""
        self.assignment = self._validate_assignment(assignment, self.num_groups, self.num_relations)

    # ------------------------------------------------------------------ embedding access
    def embed_triples(self, triples: np.ndarray) -> tuple[Tensor, Tensor, Tensor]:
        """Look up head, relation and tail embeddings for an ``(n, 3)`` id array."""
        triples = np.asarray(triples, dtype=np.int64)
        return (
            self.entities(triples[:, 0]),
            self.relations(triples[:, 1]),
            self.entities(triples[:, 2]),
        )

    def relation_embedding_matrix(self) -> np.ndarray:
        """The relation embedding table as a plain array (used by the EM clustering)."""
        return self.relations.weight.data

    # ------------------------------------------------------------------ scoring
    def _group_slices(self, relations: np.ndarray) -> List[np.ndarray]:
        """Row indices of the batch belonging to each group."""
        groups = self.assignment[relations]
        return [np.where(groups == g)[0] for g in range(self.num_groups)]

    def score_triples(self, triples: np.ndarray) -> Tensor:
        """Scores of a batch of triples, shape ``(n,)``, respecting group assignment."""
        triples = np.asarray(triples, dtype=np.int64)
        head, relation, tail = self.embed_triples(triples)
        if self.num_groups == 1:
            return self.scorers[0].score(head, relation, tail)
        pieces: List[tuple[np.ndarray, Tensor]] = []
        for group, rows in enumerate(self._group_slices(triples[:, 1])):
            if rows.size == 0:
                continue
            piece = self.scorers[group].score(head[rows], relation[rows], tail[rows])
            pieces.append((rows, piece))
        return _scatter_rows(pieces, len(triples))

    def score_all_tails(self, triples: np.ndarray) -> Tensor:
        """For each triple, scores of every entity as the tail; shape ``(n, num_entities)``."""
        return self._score_all(triples, direction="tail")

    def score_all_heads(self, triples: np.ndarray) -> Tensor:
        """For each triple, scores of every entity as the head; shape ``(n, num_entities)``."""
        return self._score_all(triples, direction="head")

    def _score_all(self, triples: np.ndarray, direction: str) -> Tensor:
        triples = np.asarray(triples, dtype=np.int64)
        head, relation, tail = self.embed_triples(triples)
        candidates = self.entities.all()
        if self.num_groups == 1:
            scorer = self.scorers[0]
            if direction == "tail":
                return scorer.score_all_tails(head, relation, candidates)
            return scorer.score_all_heads(tail, relation, candidates)
        pieces: List[tuple[np.ndarray, Tensor]] = []
        for group, rows in enumerate(self._group_slices(triples[:, 1])):
            if rows.size == 0:
                continue
            scorer = self.scorers[group]
            if direction == "tail":
                piece = scorer.score_all_tails(head[rows], relation[rows], candidates)
            else:
                piece = scorer.score_all_heads(tail[rows], relation[rows], candidates)
            pieces.append((rows, piece))
        return _scatter_rows(pieces, len(triples), width=self.num_entities)

    def score_all_arrays(self, triples: np.ndarray, direction: str) -> np.ndarray:
        """No-grad 1-vs-all scores as a plain array, via the compiled scoring kernels.

        Bit-identical to ``score_all_tails(triples).data`` / ``score_all_heads(...)``
        (same arithmetic in the same order) but skips autodiff ``Tensor`` construction
        entirely -- the hot path of ranking evaluation, one-shot search rewards and
        serving.  The returned array is freshly allocated and writable, so callers may
        mask it in place.  Internally the candidate table streams in absolute
        :data:`~repro.scoring.kernels.ENTITY_TILE` tiles, so this is exactly the
        concatenation of :meth:`score_chunk_entities` over any tile-aligned partition.
        """
        return self.score_chunk_entities(triples, direction, 0, self.num_entities)

    def score_chunk_entities(
        self, triples: np.ndarray, direction: str, start: int, stop: int
    ) -> np.ndarray:
        """Scores against the candidate entities ``[start, stop)`` only.

        The memory-bounded building block of all-entity scoring: peak temporary memory
        is ``O(len(triples) * (stop - start))`` instead of ``O(len(triples) *
        num_entities)``.  ``start`` must sit on the absolute
        :data:`~repro.scoring.kernels.ENTITY_TILE` grid (``stop`` on the grid or at
        ``num_entities``), which guarantees the chunked pass issues the identical
        kernel calls as :meth:`score_all_arrays` -- results are bit-identical by
        construction, not merely close.
        """
        if direction not in ("tail", "head"):
            raise ValueError(f"direction must be 'tail' or 'head', got {direction!r}")
        validate_tile_range(start, stop, self.num_entities)
        triples = np.asarray(triples, dtype=np.int64)
        if triples.size and (triples.min() < 0 or triples[:, (0, 2)].max() >= self.num_entities
                             or triples[:, 1].max() >= self.num_relations):
            raise IndexError("triple ids out of range for this model")
        entities = self.entities.weight.data
        anchor = entities[triples[:, 0] if direction == "tail" else triples[:, 2]]
        relation = self.relations.weight.data[triples[:, 1]]
        if self.num_groups == 1:
            return score_candidate_range(
                kernel_for(self.scorers[0]), anchor, relation, entities, direction, start, stop
            )
        scores = np.empty((len(triples), stop - start), dtype=np.float64)
        produced = False
        for group, rows in enumerate(self._group_slices(triples[:, 1])):
            if rows.size == 0:
                continue
            produced = True
            scores[rows] = score_candidate_range(
                kernel_for(self.scorers[group]),
                anchor[rows],
                relation[rows],
                entities,
                direction,
                start,
                stop,
            )
        if not produced:
            raise ValueError("no scores produced; is the assignment consistent with the batch?")
        return scores

    # ------------------------------------------------------------------ training loss
    def multiclass_loss(self, triples: np.ndarray) -> Tensor:
        """1-vs-all multiclass log-loss over tails and heads (the paper's training objective)."""
        triples = np.asarray(triples, dtype=np.int64)
        tail_logits = self.score_all_tails(triples)
        head_logits = self.score_all_heads(triples)
        tail_loss = F.cross_entropy(tail_logits, triples[:, 2])
        head_loss = F.cross_entropy(head_logits, triples[:, 0])
        return (tail_loss + head_loss) * 0.5

    def forward(self, triples: np.ndarray) -> Tensor:
        return self.score_triples(triples)

    # ------------------------------------------------------------------ persistence
    def save(self, directory, entity_vocab=None, relation_vocab=None, metadata=None):
        """Persist the model (weights, scorers, assignment, vocabularies) to ``directory``.

        Thin wrapper over :func:`repro.serve.artifacts.save_model_artifact`; use
        :class:`repro.serve.artifacts.ModelArtifactRegistry` for versioned storage.
        Returns the directory path.
        """
        from repro.serve.artifacts import save_model_artifact  # local import: serve sits above models

        return save_model_artifact(
            self,
            directory,
            entity_vocab=entity_vocab,
            relation_vocab=relation_vocab,
            metadata=metadata,
        )

    @classmethod
    def load(cls, directory) -> "KGEModel":
        """Reconstruct a model saved with :meth:`save` (drops the manifest)."""
        from repro.serve.artifacts import load_model_artifact

        model, _ = load_model_artifact(directory)
        return model


def _scatter_rows(pieces: List[tuple[np.ndarray, Tensor]], length: int, width: Optional[int] = None) -> Tensor:
    """Reassemble per-group score pieces into batch order.

    Uses concatenation followed by an index permutation so that gradients flow back into
    each piece.
    """
    if not pieces:
        raise ValueError("no scores produced; is the assignment consistent with the batch?")
    rows = np.concatenate([rows for rows, _ in pieces])
    stacked = F.concat([piece for _, piece in pieces], axis=0)
    inverse = np.argsort(rows)
    return stacked[inverse]
