"""Stand-alone training of a :class:`~repro.models.kge.KGEModel`.

This is the "train to convergence" step used everywhere in the paper: evaluating
candidate scoring functions in AutoSF / random / Bayesian search, re-training the final
structure derived by ERAS, and producing the baseline numbers of Tables III, VI, VIII
and X.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.kg.graph import KnowledgeGraph
from repro.kg.sampling import BatchIterator
from repro.models.kge import KGEModel
from repro.models.regularizers import n3_regularization
from repro.nn.optim import Adagrad, Adam, Optimizer, SGD
from repro.utils.rng import new_rng


@dataclass
class TrainerConfig:
    """Hyper-parameters of the stand-alone training loop.

    The fields mirror the hyper-parameter set the paper tunes with HyperOpt: learning
    rate, L2 penalty (here the weight of the N3 regulariser), decay rate, batch size and
    the number of epochs.

    Fields
    ------
    epochs:
        Maximum training epochs (default 40, > 0).
    batch_size:
        Training mini-batch size (default 256, > 0).
    learning_rate:
        Optimiser learning rate (default 0.5, > 0).
    optimizer:
        One of ``"adagrad"`` (the paper's choice for embeddings), ``"adam"``, ``"sgd"``.
    regularization_weight:
        Weight of the N3 regulariser (default 1e-4, >= 0; 0 disables it).
    lr_decay:
        Multiplicative per-epoch learning-rate decay (default 1.0, in (0, 1]).
    valid_every:
        Compute validation MRR for early stopping every this many epochs
        (default 5, > 0).
    patience:
        Stop after this many validations without improvement (default 4).
    valid_sample_size:
        Optional validation subsample size for cheap early-stopping checks
        (default None: the full split).
    seed:
        Seed of batching and validation sampling (default 0).
    """

    epochs: int = 40
    batch_size: int = 256
    learning_rate: float = 0.5
    optimizer: str = "adagrad"
    regularization_weight: float = 1e-4
    lr_decay: float = 1.0
    valid_every: int = 5
    patience: int = 4
    valid_sample_size: Optional[int] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.epochs <= 0:
            raise ValueError("epochs must be positive")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.optimizer not in ("adagrad", "adam", "sgd"):
            raise ValueError(f"unknown optimizer {self.optimizer!r}")
        if not 0 < self.lr_decay <= 1.0:
            raise ValueError("lr_decay must be in (0, 1]")
        if self.valid_every <= 0:
            raise ValueError("valid_every must be positive")


@dataclass
class TrainingResult:
    """Outcome of a training run."""

    best_valid_mrr: float
    best_epoch: int
    epochs_run: int
    wall_clock_seconds: float
    loss_history: List[float] = field(default_factory=list)
    valid_mrr_history: List[float] = field(default_factory=list)
    best_state: Optional[Dict[str, np.ndarray]] = None


class Trainer:
    """Trains a KGE model with the 1-vs-all multiclass log-loss and Adagrad/Adam/SGD."""

    def __init__(self, config: Optional[TrainerConfig] = None) -> None:
        self.config = config or TrainerConfig()

    # ------------------------------------------------------------------ public API
    def fit(self, model: KGEModel, graph: KnowledgeGraph, evaluator: Optional["RankingEvaluator"] = None) -> TrainingResult:
        """Train ``model`` on ``graph.train``; track validation MRR for early stopping.

        ``evaluator`` defaults to a fast filtered ranking evaluator over (a sample of) the
        validation split.
        """
        from repro.eval.ranking import RankingEvaluator  # local import to avoid a cycle

        config = self.config
        rng = new_rng(config.seed)
        optimizer = self._build_optimizer(model)
        evaluator = evaluator or RankingEvaluator(graph)

        loss_history: List[float] = []
        valid_history: List[float] = []
        best_mrr, best_epoch, best_state = -1.0, -1, None
        epochs_without_improvement = 0
        started = time.perf_counter()

        for epoch in range(1, config.epochs + 1):
            epoch_loss = self._run_epoch(model, graph, optimizer, rng)
            loss_history.append(epoch_loss)
            if config.lr_decay < 1.0:
                optimizer.decay_lr(config.lr_decay)

            if epoch % config.valid_every == 0 or epoch == config.epochs:
                metrics = evaluator.evaluate(
                    model, split="valid", sample_size=config.valid_sample_size, seed=int(rng.integers(1 << 31))
                )
                valid_history.append(metrics.mrr)
                if metrics.mrr > best_mrr:
                    best_mrr, best_epoch = metrics.mrr, epoch
                    # state_dict() returns copied arrays, so this snapshot is already
                    # independent of the live parameters (enforced by a regression test).
                    best_state = model.state_dict()
                    epochs_without_improvement = 0
                else:
                    epochs_without_improvement += 1
                if epochs_without_improvement >= config.patience:
                    break

        if best_state is not None:
            model.load_state_dict(best_state)
        elapsed = time.perf_counter() - started
        return TrainingResult(
            best_valid_mrr=best_mrr,
            best_epoch=best_epoch,
            epochs_run=len(loss_history),
            wall_clock_seconds=elapsed,
            loss_history=loss_history,
            valid_mrr_history=valid_history,
            best_state=best_state,
        )

    # ------------------------------------------------------------------ internals
    def _build_optimizer(self, model: KGEModel) -> Optimizer:
        config = self.config
        if config.optimizer == "adagrad":
            return Adagrad(model.parameters(), lr=config.learning_rate)
        if config.optimizer == "adam":
            return Adam(model.parameters(), lr=config.learning_rate)
        return SGD(model.parameters(), lr=config.learning_rate)

    def _run_epoch(self, model: KGEModel, graph: KnowledgeGraph, optimizer: Optimizer, rng: np.random.Generator) -> float:
        config = self.config
        iterator = BatchIterator(graph.train, config.batch_size, seed=int(rng.integers(1 << 31)))
        total_loss, batches = 0.0, 0
        for batch in iterator:
            optimizer.zero_grad()
            loss = model.multiclass_loss(batch)
            if config.regularization_weight > 0:
                head, relation, tail = model.embed_triples(batch)
                loss = loss + n3_regularization([head, relation, tail], config.regularization_weight)
            loss.backward()
            optimizer.step()
            total_loss += float(loss.data)
            batches += 1
        return total_loss / max(batches, 1)
