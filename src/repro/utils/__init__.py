"""Shared utilities: deterministic RNG handling, configuration objects, logging, serialization."""

from repro.utils.rng import RngMixin, new_rng, spawn_rng
from repro.utils.config import frozen_dataclass_repr
from repro.utils.timer import Timer

__all__ = ["RngMixin", "new_rng", "spawn_rng", "frozen_dataclass_repr", "Timer"]
