"""Small helpers for configuration dataclasses used across the library."""

from __future__ import annotations

import dataclasses
from typing import Any, Mapping


def frozen_dataclass_repr(obj: Any) -> str:
    """Compact ``repr`` for configuration dataclasses that omits default values."""
    if not dataclasses.is_dataclass(obj):
        return repr(obj)
    parts = []
    for field in dataclasses.fields(obj):
        value = getattr(obj, field.name)
        default = field.default
        if default is not dataclasses.MISSING and value == default:
            continue
        parts.append(f"{field.name}={value!r}")
    return f"{type(obj).__name__}({', '.join(parts)})"


def as_dict(obj: Any) -> dict:
    """Convert a (possibly nested) configuration dataclass to a plain dictionary."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {f.name: as_dict(getattr(obj, f.name)) for f in dataclasses.fields(obj)}
    if isinstance(obj, Mapping):
        return {k: as_dict(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return type(obj)(as_dict(v) for v in obj)
    return obj


def validate_positive(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value`` is strictly positive."""
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")


def validate_non_negative(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value`` is zero or positive."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")


def validate_in_range(name: str, value: float, low: float, high: float) -> None:
    """Raise ``ValueError`` unless ``low <= value <= high``."""
    if not (low <= value <= high):
        raise ValueError(f"{name} must be in [{low}, {high}], got {value}")
