"""Deterministic random-number handling.

Every stochastic component in the library (dataset generators, negative samplers,
controllers, searchers) accepts either an integer seed or a ``numpy.random.Generator``.
Centralising the conversion here keeps experiments reproducible and avoids the global
``numpy.random`` state entirely.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def new_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` from a seed, an existing generator, or None.

    Passing an existing generator returns it unchanged so that callers can thread a
    single stream through a pipeline of components.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rng(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``count`` independent child generators.

    Children are derived through ``SeedSequence.spawn`` so that the parent stream is not
    consumed and the children do not overlap.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    seeds = rng.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


class RngMixin:
    """Mixin giving a component a private, lazily created random generator."""

    def __init__(self, seed: SeedLike = None) -> None:
        self._seed = seed
        self._rng: Optional[np.random.Generator] = None

    @property
    def rng(self) -> np.random.Generator:
        """The component's random generator, created on first use."""
        if self._rng is None:
            self._rng = new_rng(self._seed)
        return self._rng

    def reseed(self, seed: SeedLike) -> None:
        """Reset the generator with a new seed."""
        self._seed = seed
        self._rng = new_rng(seed)
