"""Minimal logging helpers.

The library uses the standard :mod:`logging` machinery; this module only provides a
consistently named logger factory and a convenience function to switch on human-readable
output in examples and benchmarks.
"""

from __future__ import annotations

import logging

_ROOT_NAME = "repro"


def get_logger(name: str) -> logging.Logger:
    """Return a logger namespaced under the library root ("repro.<name>")."""
    if name.startswith(_ROOT_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def configure_logging(level: int = logging.INFO) -> None:
    """Attach a stream handler with a compact format to the library root logger."""
    logger = logging.getLogger(_ROOT_NAME)
    logger.setLevel(level)
    if not logger.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter("[%(asctime)s] %(name)s %(levelname)s: %(message)s"))
        logger.addHandler(handler)
