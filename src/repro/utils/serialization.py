"""JSON serialisation helpers for search results and experiment records.

Search outputs (block structures, group assignments, metric traces) are plain Python and
NumPy objects.  These helpers convert them to and from JSON-compatible structures so that
examples and benchmarks can persist results without pickling.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Union

import numpy as np

PathLike = Union[str, Path]


def to_jsonable(obj: Any) -> Any:
    """Recursively convert NumPy scalars/arrays and tuples into JSON-compatible values."""
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, (np.bool_,)):
        return bool(obj)
    if isinstance(obj, dict):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(v) for v in obj]
    return obj


def save_json(obj: Any, path: PathLike, indent: int = 2) -> Path:
    """Serialise ``obj`` to ``path`` as JSON (creating parent directories)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as fh:
        json.dump(to_jsonable(obj), fh, indent=indent, sort_keys=True)
    return path


def load_json(path: PathLike) -> Any:
    """Load a JSON document written by :func:`save_json`."""
    with Path(path).open("r", encoding="utf-8") as fh:
        return json.load(fh)
