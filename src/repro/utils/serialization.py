"""JSON / NPZ serialisation helpers for search results and model artifacts.

Search outputs (block structures, group assignments, metric traces) are plain Python and
NumPy objects.  These helpers convert them to and from JSON-compatible structures so that
examples and benchmarks can persist results without pickling.  The NPZ helpers back the
model artifact registry (:mod:`repro.serve.artifacts`): arrays are stored in
uncompressed ``.npz`` archives with ``allow_pickle=False`` on both ends, so artifacts
stay portable and safe to load from untrusted paths.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, Union

import numpy as np

PathLike = Union[str, Path]


def to_jsonable(obj: Any) -> Any:
    """Recursively convert NumPy scalars/arrays and tuples into JSON-compatible values."""
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, (np.bool_,)):
        return bool(obj)
    if isinstance(obj, dict):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(v) for v in obj]
    return obj


def save_json(obj: Any, path: PathLike, indent: int = 2) -> Path:
    """Serialise ``obj`` to ``path`` as JSON (creating parent directories)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as fh:
        json.dump(to_jsonable(obj), fh, indent=indent, sort_keys=True)
    return path


def load_json(path: PathLike) -> Any:
    """Load a JSON document written by :func:`save_json`."""
    with Path(path).open("r", encoding="utf-8") as fh:
        return json.load(fh)


def save_npz(arrays: Dict[str, np.ndarray], path: PathLike) -> Path:
    """Save a name-to-array mapping as an ``.npz`` archive (creating parent directories).

    Keys may contain dots (e.g. qualified parameter names like ``entities.weight``);
    values are converted with ``np.asarray`` so lists and scalars are accepted.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    converted = {name: np.asarray(value) for name, value in arrays.items()}
    for name, value in converted.items():
        if value.dtype == object:
            raise TypeError(f"array {name!r} has dtype object; only numeric arrays can be saved")
    with path.open("wb") as fh:
        np.savez(fh, **converted)
    return path


def load_npz(path: PathLike) -> Dict[str, np.ndarray]:
    """Load an ``.npz`` archive written by :func:`save_npz` into a plain dict."""
    with np.load(Path(path), allow_pickle=False) as archive:
        return {name: archive[name] for name in archive.files}


def file_checksum(path: PathLike, algorithm: str = "sha256") -> str:
    """Hex digest of a file's contents (used to detect corrupted artifacts)."""
    digest = hashlib.new(algorithm)
    with Path(path).open("rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()
