"""Wall-clock timing helper used by the search-efficiency experiments (Table IX, Figure 2)."""

from __future__ import annotations

import time
from typing import Optional


class Timer:
    """A simple cumulative stopwatch.

    The timer can be used either as a context manager::

        timer = Timer()
        with timer:
            do_work()
        print(timer.elapsed)

    or through explicit ``start`` / ``stop`` calls.  Repeated sessions accumulate into
    :attr:`elapsed`, which is what the running-time tables report.
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._started_at: Optional[float] = None

    def start(self) -> "Timer":
        """Begin a timing session; raises if one is already running."""
        if self._started_at is not None:
            raise RuntimeError("Timer is already running")
        self._started_at = time.perf_counter()
        return self

    def stop(self) -> float:
        """End the current session and return the cumulative elapsed time."""
        if self._started_at is None:
            raise RuntimeError("Timer is not running")
        self.elapsed += time.perf_counter() - self._started_at
        self._started_at = None
        return self.elapsed

    def reset(self) -> None:
        """Zero the cumulative time and discard any running session."""
        self.elapsed = 0.0
        self._started_at = None

    @property
    def running(self) -> bool:
        """Whether a session is currently open."""
        return self._started_at is not None

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
