"""Human-readable rendering of searched scoring functions (Figures 3 and 4 of the paper)."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.scoring.structure import BlockStructure


def render_structure(structure: BlockStructure, function_name: str = "f") -> str:
    """Render a structure as ``f(h,r,t) = <h1,r1,t1> - <h2,r3,t4> + ...``."""
    items = structure.nonzero_items()
    if not items:
        return f"{function_name}(h,r,t) = 0"
    parts: List[str] = []
    for index, (head_block, tail_block, value) in enumerate(items):
        sign = "+" if value > 0 else "-"
        term = f"<h{head_block + 1},r{abs(value)},t{tail_block + 1}>"
        if index == 0 and sign == "+":
            parts.append(term)
        else:
            parts.append(f"{sign} {term}")
    return f"{function_name}(h,r,t) = " + " ".join(parts)


def render_matrix(structure: BlockStructure) -> str:
    """Render the raw entry matrix with ``+rk`` / ``-rk`` / ``.`` cells."""
    rows = []
    for row in structure.entries:
        cells = []
        for value in row:
            if value == 0:
                cells.append("   . ")
            else:
                sign = "+" if value > 0 else "-"
                cells.append(f" {sign}r{abs(int(value))} ")
        rows.append("".join(cells))
    return "\n".join(rows)


def render_relation_aware(
    structures: Sequence[BlockStructure],
    group_relations: Dict[int, Sequence[str]] | None = None,
) -> str:
    """Render a full relation-aware scoring function set: one block per group.

    ``group_relations`` optionally maps group index to the relation names assigned to it,
    which reproduces the presentation of Figures 3 and 4.
    """
    lines: List[str] = []
    for group, structure in enumerate(structures):
        lines.append(f"group {group + 1}: {render_structure(structure, function_name=f'f{group + 1}')}")
        if group_relations and group in group_relations and group_relations[group]:
            names = ", ".join(str(name) for name in group_relations[group])
            lines.append(f"  relations: {names}")
        lines.append(render_matrix(structure))
        lines.append("")
    return "\n".join(lines).rstrip()
