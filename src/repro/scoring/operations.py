"""The operation set ``O = {0, +r_1 ... +r_M, -r_1 ... -r_M}`` and its token encoding.

Both the LSTM controller and the search-space utilities reason about operations as token
indices ``k in [0, 2M]``; this module centralises the mapping between token indices and
signed block values so the two encodings can never drift apart:

* token 0            -> the zero operation (entry value 0)
* tokens 1 .. M      -> +r_1 .. +r_M      (entry values +1 .. +M)
* tokens M+1 .. 2M   -> -r_1 .. -r_M      (entry values -1 .. -M)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class OperationSet:
    """The operation vocabulary for a search space with ``num_blocks`` relation blocks."""

    num_blocks: int

    def __post_init__(self) -> None:
        if self.num_blocks < 1:
            raise ValueError(f"num_blocks must be at least 1, got {self.num_blocks}")

    @property
    def size(self) -> int:
        """Number of distinct operations, ``2M + 1``."""
        return 2 * self.num_blocks + 1

    # ------------------------------------------------------------------ conversions
    def token_to_value(self, token: int) -> int:
        """Convert a token index to a signed block value (0, +k or -k)."""
        if not 0 <= token < self.size:
            raise ValueError(f"token {token} out of range [0, {self.size})")
        if token == 0:
            return 0
        if token <= self.num_blocks:
            return token
        return -(token - self.num_blocks)

    def value_to_token(self, value: int) -> int:
        """Convert a signed block value to its token index."""
        if abs(value) > self.num_blocks:
            raise ValueError(f"block value {value} out of range for M={self.num_blocks}")
        if value == 0:
            return 0
        if value > 0:
            return value
        return self.num_blocks - value  # value is negative: -1 -> M+1, -2 -> M+2, ...

    def tokens_to_values(self, tokens: List[int]) -> List[int]:
        """Vectorised :meth:`token_to_value`."""
        return [self.token_to_value(int(t)) for t in tokens]

    def values_to_tokens(self, values: List[int]) -> List[int]:
        """Vectorised :meth:`value_to_token`."""
        return [self.value_to_token(int(v)) for v in values]

    # ------------------------------------------------------------------ descriptions
    def describe(self, token: int) -> str:
        """Human-readable description of a token ("0", "+r2", "-r4", ...)."""
        value = self.token_to_value(token)
        if value == 0:
            return "0"
        sign = "+" if value > 0 else "-"
        return f"{sign}r{abs(value)}"

    def all_descriptions(self) -> List[str]:
        """Descriptions of every operation, in token order."""
        return [self.describe(token) for token in range(self.size)]
