"""Symbolic expressiveness analysis of block structures (Table I of the paper).

A block structure induces, for a relation embedding ``r = (r_1 .. r_M)``, the block matrix
``g(r)`` whose (i, j) block is ``sign * diag(r_k)``.  Treating each relation block as a
free scalar variable, a structure can *handle*

* **symmetric** relations  iff some non-trivial assignment makes ``g(r)`` symmetric,
* **anti-symmetric** relations iff some non-trivial assignment makes ``g(r)`` skew-symmetric,
* **general asymmetric** relations iff some assignment makes ``g(r)`` neither symmetric
  nor skew-symmetric,
* **inversion** iff there are non-trivial assignments ``r``, ``r'`` with ``g(r') = g(r)^T``.

All four conditions are systems of linear equations in the relation-block variables, so
they are decided exactly with a null-space computation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.scoring.structure import BlockStructure

_TOLERANCE = 1e-9


@dataclass(frozen=True)
class ExpressivenessReport:
    """Which relation patterns a structure can represent."""

    structure: BlockStructure
    handles_symmetric: bool
    handles_anti_symmetric: bool
    handles_general_asymmetric: bool
    handles_inversion: bool

    @property
    def fully_expressive(self) -> bool:
        """Whether all four patterns of Table I are covered."""
        return (
            self.handles_symmetric
            and self.handles_anti_symmetric
            and self.handles_general_asymmetric
            and self.handles_inversion
        )

    def as_row(self) -> Dict[str, object]:
        """Dictionary row for tabular reports."""
        return {
            "symmetric": self.handles_symmetric,
            "anti_symmetric": self.handles_anti_symmetric,
            "general_asymmetric": self.handles_general_asymmetric,
            "inversion": self.handles_inversion,
            "fully_expressive": self.fully_expressive,
        }


def _coefficient_row(structure: BlockStructure, i: int, j: int, num_variables: int, offset: int = 0) -> np.ndarray:
    """Linear coefficients of entry (i, j) of g(r) as a function of the block variables."""
    row = np.zeros(num_variables)
    value = int(structure.entries[i, j])
    if value != 0:
        row[offset + abs(value) - 1] = 1.0 if value > 0 else -1.0
    return row


def _has_nontrivial_solution(constraints: np.ndarray, num_variables: int,
                             nonzero_checks: List[np.ndarray]) -> bool:
    """Whether the homogeneous system ``constraints @ v = 0`` has a solution for which at
    least one of the ``nonzero_checks`` linear forms is non-zero (i.e. g(v) != 0)."""
    if constraints.size == 0:
        null_space = np.eye(num_variables)
    else:
        _, singular_values, vh = np.linalg.svd(constraints, full_matrices=True)
        rank = int(np.sum(singular_values > _TOLERANCE))
        null_space = vh[rank:].T  # columns span the null space
    if null_space.size == 0:
        return False
    for check in nonzero_checks:
        projected = check @ null_space
        if np.linalg.norm(projected) > _TOLERANCE:
            return True
    return False


def _can_be(structure: BlockStructure, relation: str) -> bool:
    """Whether g(r) can be made symmetric ("symmetric") or skew-symmetric ("skew")."""
    num_blocks = structure.num_blocks
    sign = 1.0 if relation == "symmetric" else -1.0
    constraints = []
    nonzero_checks = []
    for i in range(num_blocks):
        for j in range(num_blocks):
            row_ij = _coefficient_row(structure, i, j, num_blocks)
            row_ji = _coefficient_row(structure, j, i, num_blocks)
            if j >= i:
                constraints.append(row_ij - sign * row_ji)
            if np.any(row_ij):
                nonzero_checks.append(row_ij)
    constraints = np.asarray(constraints) if constraints else np.zeros((0, num_blocks))
    return _has_nontrivial_solution(constraints, num_blocks, nonzero_checks)


def _can_be_general(structure: BlockStructure) -> bool:
    """Whether some assignment makes g(r) neither symmetric nor skew-symmetric.

    This holds iff the symmetric part and the skew-symmetric part of g(r) can be non-zero
    simultaneously, i.e. there exist off-diagonal-position pairs whose coefficient rows
    are linearly independent, or a diagonal entry plus an "asymmetric" pair.  We test it
    directly by looking for an assignment v where both "g(v) - g(v)^T != 0" and
    "g(v) + g(v)^T != 0" hold; a random vector in the unconstrained variable space decides
    this almost surely, so we check a deterministic spread of sample points instead.
    """
    num_blocks = structure.num_blocks
    rng = np.random.default_rng(7)
    for _ in range(32):
        assignment = rng.normal(size=num_blocks)
        g = np.zeros((num_blocks, num_blocks))
        for i, j, value in structure.nonzero_items():
            g[i, j] = np.sign(value) * assignment[abs(value) - 1]
        symmetric_part = g + g.T
        skew_part = g - g.T
        if np.linalg.norm(symmetric_part) > _TOLERANCE and np.linalg.norm(skew_part) > _TOLERANCE:
            return True
    return False


def _can_invert(structure: BlockStructure) -> bool:
    """Whether there exist assignments r, r' (both giving non-zero g) with g(r') = g(r)^T."""
    num_blocks = structure.num_blocks
    num_variables = 2 * num_blocks  # variables of r followed by variables of r'
    constraints = []
    nonzero_checks_r = []
    nonzero_checks_rp = []
    for i in range(num_blocks):
        for j in range(num_blocks):
            row_r = _coefficient_row(structure, i, j, num_variables, offset=0)
            row_rp = _coefficient_row(structure, i, j, num_variables, offset=num_blocks)
            row_r_transposed = _coefficient_row(structure, j, i, num_variables, offset=0)
            # g(r')_{ij} must equal g(r)_{ji}
            constraints.append(row_rp - row_r_transposed)
            if np.any(row_r):
                nonzero_checks_r.append(row_r)
            if np.any(row_rp):
                nonzero_checks_rp.append(row_rp)
    constraints = np.asarray(constraints) if constraints else np.zeros((0, num_variables))
    # Both g(r) and g(r') must be realisable as non-zero.  Because the constraint couples
    # them through a transpose, non-zero g(r) implies non-zero g(r'), so checking one side
    # of the null space suffices.
    return _has_nontrivial_solution(constraints, num_variables, nonzero_checks_r)


def analyze_structure(structure: BlockStructure) -> ExpressivenessReport:
    """Full expressiveness report for a block structure."""
    if structure.nonzero_count() == 0:
        return ExpressivenessReport(structure, False, False, False, False)
    return ExpressivenessReport(
        structure=structure,
        handles_symmetric=_can_be(structure, "symmetric"),
        handles_anti_symmetric=_can_be(structure, "skew"),
        handles_general_asymmetric=_can_be_general(structure),
        handles_inversion=_can_invert(structure),
    )


def expressiveness_table(structures: Dict[str, BlockStructure]) -> List[Tuple[str, ExpressivenessReport]]:
    """Analyse a named collection of structures (the rows of Table I)."""
    return [(name, analyze_structure(structure)) for name, structure in structures.items()]
