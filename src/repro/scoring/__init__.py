"""Scoring functions.

The central object is :class:`~repro.scoring.structure.BlockStructure`, the bilinear
block representation ``f(h, r, t) = sum_{i,j} <h_i, o_ij, t_j>`` with
``o_ij in {0, +/- r_1 ... +/- r_M}`` that defines the AutoSF / ERAS search space.
Classic scoring functions (DistMult, ComplEx, SimplE, Analogy) are expressed as named
structures; TransE and RotatE are provided as non-bilinear baselines.
"""

from repro.scoring.operations import OperationSet
from repro.scoring.structure import BlockStructure
from repro.scoring.base import ScoringFunction
from repro.scoring.bilinear import BlockScoringFunction
from repro.scoring.classics import (
    CLASSIC_STRUCTURES,
    analogy_structure,
    complex_structure,
    distmult_structure,
    simple_structure,
    named_structure,
)
from repro.scoring.translational import TransEScorer, RotatEScorer
from repro.scoring.kernels import compile_block_kernel, kernel_for
from repro.scoring.expressiveness import ExpressivenessReport, analyze_structure, expressiveness_table
from repro.scoring.render import render_structure, render_relation_aware

__all__ = [
    "OperationSet",
    "BlockStructure",
    "ScoringFunction",
    "BlockScoringFunction",
    "CLASSIC_STRUCTURES",
    "distmult_structure",
    "complex_structure",
    "simple_structure",
    "analogy_structure",
    "named_structure",
    "TransEScorer",
    "RotatEScorer",
    "compile_block_kernel",
    "kernel_for",
    "ExpressivenessReport",
    "analyze_structure",
    "expressiveness_table",
    "render_structure",
    "render_relation_aware",
]
