"""Translational (distance-based) baselines: TransE and RotatE.

These are outside the bilinear family -- they are included because Table III and Table VI
of the paper compare against them, in particular TransE's failure on symmetric relations.
Scores are negated distances so that "higher is better" holds uniformly across the
library.
"""

from __future__ import annotations

import numpy as np

from repro.autodiff import Tensor
from repro.scoring.base import ScoringFunction


class TransEScorer(ScoringFunction):
    """TransE: ``score(h, r, t) = -|| h + r - t ||_p`` with p in {1, 2}."""

    def __init__(self, norm: int = 1) -> None:
        if norm not in (1, 2):
            raise ValueError(f"norm must be 1 or 2, got {norm}")
        self.norm = norm
        self.name = f"transe_l{norm}"

    def _distance(self, difference: Tensor) -> Tensor:
        if self.norm == 1:
            return difference.abs().sum(axis=-1)
        return (difference * difference).sum(axis=-1).sqrt()

    def score(self, head: Tensor, relation: Tensor, tail: Tensor) -> Tensor:
        return -self._distance(head + relation - tail)

    def score_all_tails(self, head: Tensor, relation: Tensor, candidates: Tensor) -> Tensor:
        translated = head + relation                       # (batch, dim)
        batch, dim = translated.shape
        expanded = translated.reshape(batch, 1, dim) - candidates.reshape(1, len(candidates), dim)
        return -self._distance(expanded)

    def score_all_heads(self, tail: Tensor, relation: Tensor, candidates: Tensor) -> Tensor:
        target = tail - relation                            # h should equal t - r
        batch, dim = target.shape
        expanded = candidates.reshape(1, len(candidates), dim) - target.reshape(batch, 1, dim)
        return -self._distance(expanded)


class RotatEScorer(ScoringFunction):
    """RotatE: relations act as rotations in the complex plane.

    Embeddings of dimension ``d`` are interpreted as ``d/2`` complex numbers: the first
    half is the real part and the second half the imaginary part.  The relation embedding
    supplies phases through ``cos``/``sin`` of its first half.
    """

    def __init__(self) -> None:
        self.name = "rotate"

    @staticmethod
    def _halves(embeddings: Tensor) -> tuple[Tensor, Tensor]:
        dim = embeddings.shape[-1]
        if dim % 2 != 0:
            raise ValueError(f"RotatE requires an even embedding dimension, got {dim}")
        half = dim // 2
        return embeddings[..., :half], embeddings[..., half:]

    def _rotate(self, head: Tensor, relation: Tensor) -> tuple[Tensor, Tensor]:
        head_re, head_im = self._halves(head)
        phase, _ = self._halves(relation)
        cos = Tensor(np.cos(phase.data))
        sin = Tensor(np.sin(phase.data))
        rotated_re = head_re * cos - head_im * sin
        rotated_im = head_re * sin + head_im * cos
        return rotated_re, rotated_im

    def score(self, head: Tensor, relation: Tensor, tail: Tensor) -> Tensor:
        rotated_re, rotated_im = self._rotate(head, relation)
        tail_re, tail_im = self._halves(tail)
        diff_re = rotated_re - tail_re
        diff_im = rotated_im - tail_im
        return -((diff_re * diff_re + diff_im * diff_im + 1e-12).sqrt()).sum(axis=-1)

    def score_all_tails(self, head: Tensor, relation: Tensor, candidates: Tensor) -> Tensor:
        rotated_re, rotated_im = self._rotate(head, relation)
        cand_re, cand_im = self._halves(candidates)
        batch, half = rotated_re.shape
        num_candidates = len(candidates)
        diff_re = rotated_re.reshape(batch, 1, half) - cand_re.reshape(1, num_candidates, half)
        diff_im = rotated_im.reshape(batch, 1, half) - cand_im.reshape(1, num_candidates, half)
        return -((diff_re * diff_re + diff_im * diff_im + 1e-12).sqrt()).sum(axis=-1)

    def score_all_heads(self, tail: Tensor, relation: Tensor, candidates: Tensor) -> Tensor:
        # Rotate every candidate head by the relation phase and compare with the tail.
        tail_re, tail_im = self._halves(tail)
        cand_re, cand_im = self._halves(candidates)
        phase, _ = self._halves(relation)
        cos = Tensor(np.cos(phase.data))
        sin = Tensor(np.sin(phase.data))
        batch, half = tail_re.shape
        num_candidates = len(candidates)
        cand_re_b = cand_re.reshape(1, num_candidates, half)
        cand_im_b = cand_im.reshape(1, num_candidates, half)
        cos_b = cos.reshape(batch, 1, half)
        sin_b = sin.reshape(batch, 1, half)
        rotated_re = cand_re_b * cos_b - cand_im_b * sin_b
        rotated_im = cand_re_b * sin_b + cand_im_b * cos_b
        diff_re = rotated_re - tail_re.reshape(batch, 1, half)
        diff_im = rotated_im - tail_im.reshape(batch, 1, half)
        return -((diff_re * diff_re + diff_im * diff_im + 1e-12).sqrt()).sum(axis=-1)
