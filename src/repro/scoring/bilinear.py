"""Bilinear block scoring function: evaluates a :class:`BlockStructure` on embeddings."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.autodiff import Tensor
from repro.scoring.base import ScoringFunction
from repro.scoring.structure import BlockStructure


class BlockScoringFunction(ScoringFunction):
    """Evaluate ``f(h, r, t) = sum_{(i,j) nonzero} sign * <h_i, r_k, t_j>``.

    The embedding dimension must be divisible by the number of blocks; block ``i`` of an
    embedding is the contiguous slice ``[i*dim/M, (i+1)*dim/M)``.

    ``score_all_tails`` / ``score_all_heads`` avoid materialising per-candidate products
    by first collapsing the head-relation (respectively relation-tail) interaction per
    tail (head) block and finishing with a block-wise matrix product against the
    candidate table -- the same trick the original AutoSF/ERAS implementations use to keep
    1-vs-all training cheap.
    """

    def __init__(self, structure: BlockStructure, name: Optional[str] = None) -> None:
        self.structure = structure
        self.name = name or f"block_sf_M{structure.num_blocks}"
        self._kernel = None

    def kernel(self):
        """The compiled raw-NumPy ``score_all`` closure of this structure (memoised).

        Built by :func:`repro.scoring.kernels.compile_block_kernel`; safe to cache
        because :class:`BlockStructure` is immutable.  Evaluation and serving call it
        through :meth:`repro.models.kge.KGEModel.score_all_arrays` to skip autodiff
        graph construction entirely.
        """
        if self._kernel is None:
            from repro.scoring.kernels import compile_block_kernel  # local import: kernels sits above bilinear

            self._kernel = compile_block_kernel(self.structure)
        return self._kernel

    # ------------------------------------------------------------------ helpers
    def _split(self, embeddings: Tensor) -> List[Tensor]:
        dim = embeddings.shape[-1]
        num_blocks = self.structure.num_blocks
        if dim % num_blocks != 0:
            raise ValueError(
                f"embedding dimension {dim} is not divisible by the number of blocks {num_blocks}"
            )
        block_dim = dim // num_blocks
        return [embeddings[:, i * block_dim : (i + 1) * block_dim] for i in range(num_blocks)]

    def _items(self) -> List[Tuple[int, int, int]]:
        return self.structure.nonzero_items()

    # ------------------------------------------------------------------ interface
    def score(self, head: Tensor, relation: Tensor, tail: Tensor) -> Tensor:
        head_blocks = self._split(head)
        relation_blocks = self._split(relation)
        tail_blocks = self._split(tail)
        total: Optional[Tensor] = None
        for head_block, tail_block, value in self._items():
            sign = 1.0 if value > 0 else -1.0
            relation_block = relation_blocks[abs(value) - 1]
            term = (head_blocks[head_block] * relation_block * tail_blocks[tail_block]).sum(axis=1) * sign
            total = term if total is None else total + term
        if total is None:
            # Degenerate all-zero structure: score is identically zero.
            return head.sum(axis=1) * 0.0
        return total

    def score_all_tails(self, head: Tensor, relation: Tensor, candidates: Tensor) -> Tensor:
        head_blocks = self._split(head)
        relation_blocks = self._split(relation)
        candidate_blocks = self._split(candidates)
        num_blocks = self.structure.num_blocks
        # Collapse the head-relation interaction per tail block j, then one matmul per block.
        queries: List[Optional[Tensor]] = [None] * num_blocks
        for head_block, tail_block, value in self._items():
            sign = 1.0 if value > 0 else -1.0
            relation_block = relation_blocks[abs(value) - 1]
            contribution = head_blocks[head_block] * relation_block * sign
            queries[tail_block] = (
                contribution if queries[tail_block] is None else queries[tail_block] + contribution
            )
        total: Optional[Tensor] = None
        for tail_block, query in enumerate(queries):
            if query is None:
                continue
            term = query @ candidate_blocks[tail_block].T
            total = term if total is None else total + term
        if total is None:
            return (head @ candidates.T) * 0.0
        return total

    def score_all_heads(self, tail: Tensor, relation: Tensor, candidates: Tensor) -> Tensor:
        tail_blocks = self._split(tail)
        relation_blocks = self._split(relation)
        candidate_blocks = self._split(candidates)
        num_blocks = self.structure.num_blocks
        queries: List[Optional[Tensor]] = [None] * num_blocks
        for head_block, tail_block, value in self._items():
            sign = 1.0 if value > 0 else -1.0
            relation_block = relation_blocks[abs(value) - 1]
            contribution = relation_block * tail_blocks[tail_block] * sign
            queries[head_block] = (
                contribution if queries[head_block] is None else queries[head_block] + contribution
            )
        total: Optional[Tensor] = None
        for head_block, query in enumerate(queries):
            if query is None:
                continue
            term = query @ candidate_blocks[head_block].T
            total = term if total is None else total + term
        if total is None:
            return (tail @ candidates.T) * 0.0
        return total

    def __repr__(self) -> str:
        return f"BlockScoringFunction(name={self.name!r}, structure={self.structure!r})"
