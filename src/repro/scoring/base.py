"""The abstract scoring-function interface shared by bilinear and translational models."""

from __future__ import annotations

import abc

from repro.autodiff import Tensor


class ScoringFunction(abc.ABC):
    """Scores triples given already-looked-up head/relation/tail embeddings.

    All three methods accept and return :class:`~repro.autodiff.Tensor` objects so that
    gradients can flow into the embeddings during training; evaluation wraps the calls in
    ``no_grad`` for speed.
    """

    name: str = "scoring_function"

    @abc.abstractmethod
    def score(self, head: Tensor, relation: Tensor, tail: Tensor) -> Tensor:
        """Score a batch of triples.

        All inputs have shape ``(batch, dim)``; the result has shape ``(batch,)``.
        """

    @abc.abstractmethod
    def score_all_tails(self, head: Tensor, relation: Tensor, candidates: Tensor) -> Tensor:
        """Score every candidate entity as the tail.

        ``head`` and ``relation`` have shape ``(batch, dim)``, ``candidates`` has shape
        ``(num_entities, dim)``; the result has shape ``(batch, num_entities)``.
        """

    @abc.abstractmethod
    def score_all_heads(self, tail: Tensor, relation: Tensor, candidates: Tensor) -> Tensor:
        """Score every candidate entity as the head (same shapes as :meth:`score_all_tails`)."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
