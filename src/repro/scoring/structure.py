"""The :class:`BlockStructure` representation of a bilinear scoring function.

A structure with ``M`` blocks is an ``M x M`` integer matrix whose entry ``(i, j)`` is the
signed block value of the operation assigned to the multiplicative item ``<h_i, o, t_j>``:
``0`` (item absent), ``+k`` (use ``+r_k``) or ``-k`` (use ``-r_k``).

The same object serves as

* the output of the controller / searchers,
* the specification consumed by :class:`~repro.scoring.bilinear.BlockScoringFunction`,
* the unit of analysis for the expressiveness checks (Table I) and the rendered case
  studies (Figures 3 and 4).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple, Union

import numpy as np

from repro.scoring.operations import OperationSet

EntryMatrix = Union[np.ndarray, Sequence[Sequence[int]]]


class BlockStructure:
    """An immutable ``M x M`` signed-block matrix defining a bilinear scoring function."""

    def __init__(self, entries: EntryMatrix) -> None:
        array = np.asarray(entries, dtype=np.int64)
        if array.ndim != 2 or array.shape[0] != array.shape[1]:
            raise ValueError(f"entries must be a square matrix, got shape {array.shape}")
        num_blocks = array.shape[0]
        if num_blocks < 1:
            raise ValueError("structure must have at least one block")
        if np.abs(array).max(initial=0) > num_blocks:
            raise ValueError(
                f"entry values must be in [-{num_blocks}, {num_blocks}], got max abs {np.abs(array).max()}"
            )
        self._entries = array
        self._entries.setflags(write=False)

    # ------------------------------------------------------------------ basic accessors
    @property
    def entries(self) -> np.ndarray:
        """The read-only ``M x M`` signed entry matrix."""
        return self._entries

    @property
    def num_blocks(self) -> int:
        """The number of blocks M."""
        return self._entries.shape[0]

    @property
    def operation_set(self) -> OperationSet:
        """The operation vocabulary this structure draws from."""
        return OperationSet(self.num_blocks)

    def nonzero_items(self) -> List[Tuple[int, int, int]]:
        """All multiplicative items as ``(head_block, tail_block, signed_value)`` tuples."""
        items = []
        for i in range(self.num_blocks):
            for j in range(self.num_blocks):
                value = int(self._entries[i, j])
                if value != 0:
                    items.append((i, j, value))
        return items

    def nonzero_count(self) -> int:
        """Number of non-zero multiplicative items (the "budget" b of AutoSF)."""
        return int(np.count_nonzero(self._entries))

    def used_relation_blocks(self) -> set:
        """The set of relation block indices (1-based) that appear in the structure."""
        return {abs(int(v)) for v in self._entries.reshape(-1) if v != 0}

    def uses_all_relation_blocks(self) -> bool:
        """The "exploitative constraint" of Section IV-B2: every r_k appears at least once."""
        return self.used_relation_blocks() == set(range(1, self.num_blocks + 1))

    # ------------------------------------------------------------------ token encoding
    def to_tokens(self) -> List[int]:
        """Row-major flattening into ``M^2`` operation tokens (controller encoding)."""
        ops = self.operation_set
        return [ops.value_to_token(int(v)) for v in self._entries.reshape(-1)]

    @classmethod
    def from_tokens(cls, tokens: Sequence[int], num_blocks: int) -> "BlockStructure":
        """Inverse of :meth:`to_tokens`."""
        tokens = list(tokens)
        if len(tokens) != num_blocks * num_blocks:
            raise ValueError(f"expected {num_blocks * num_blocks} tokens, got {len(tokens)}")
        ops = OperationSet(num_blocks)
        values = np.asarray(ops.tokens_to_values(tokens), dtype=np.int64)
        return cls(values.reshape(num_blocks, num_blocks))

    # ------------------------------------------------------------------ named constructors
    @classmethod
    def zeros(cls, num_blocks: int) -> "BlockStructure":
        """The all-zero (degenerate) structure."""
        return cls(np.zeros((num_blocks, num_blocks), dtype=np.int64))

    @classmethod
    def diagonal(cls, num_blocks: int) -> "BlockStructure":
        """The DistMult-style structure: ``entry(i, i) = +r_i``."""
        return cls(np.diag(np.arange(1, num_blocks + 1)))

    @classmethod
    def random(cls, num_blocks: int, rng: np.random.Generator, nonzero_fraction: float = 0.5,
               require_all_blocks: bool = True, max_attempts: int = 200) -> "BlockStructure":
        """Sample a random structure.

        Entries are non-zero with probability ``nonzero_fraction``; non-zero entries draw a
        uniformly random signed block.  When ``require_all_blocks`` is set the sampler
        retries until the exploitative constraint holds (falling back to the diagonal
        structure if ``max_attempts`` is exhausted, which only happens for extreme
        ``nonzero_fraction`` values).
        """
        if not 0.0 < nonzero_fraction <= 1.0:
            raise ValueError("nonzero_fraction must be in (0, 1]")
        for _ in range(max_attempts):
            mask = rng.random((num_blocks, num_blocks)) < nonzero_fraction
            blocks = rng.integers(1, num_blocks + 1, size=(num_blocks, num_blocks))
            signs = rng.choice([-1, 1], size=(num_blocks, num_blocks))
            entries = np.where(mask, signs * blocks, 0)
            structure = cls(entries)
            if structure.nonzero_count() == 0:
                continue
            if not require_all_blocks or structure.uses_all_relation_blocks():
                return structure
        return cls.diagonal(num_blocks)

    # ------------------------------------------------------------------ algebra
    def transposed(self) -> "BlockStructure":
        """Structure of the reversed triple direction: ``f'(h, r, t) = f(t, r, h)``."""
        return BlockStructure(self._entries.T.copy())

    def negated(self) -> "BlockStructure":
        """Structure with every sign flipped."""
        return BlockStructure(-self._entries)

    def signature(self) -> Tuple[int, ...]:
        """A hashable canonical form (row-major entries)."""
        return tuple(int(v) for v in self._entries.reshape(-1))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BlockStructure):
            return NotImplemented
        return self.num_blocks == other.num_blocks and np.array_equal(self._entries, other._entries)

    def __hash__(self) -> int:
        return hash(self.signature())

    def __repr__(self) -> str:
        rows = "; ".join(" ".join(f"{int(v):+d}" if v else "0" for v in row) for row in self._entries)
        return f"BlockStructure(M={self.num_blocks}, [{rows}])"

    # ------------------------------------------------------------------ helpers for search
    def with_item(self, head_block: int, tail_block: int, value: int) -> "BlockStructure":
        """Return a copy with one multiplicative item replaced (used by AutoSF's greedy step)."""
        if not 0 <= head_block < self.num_blocks or not 0 <= tail_block < self.num_blocks:
            raise IndexError("block index out of range")
        if abs(value) > self.num_blocks:
            raise ValueError(f"value {value} out of range for M={self.num_blocks}")
        entries = self._entries.copy()
        entries[head_block, tail_block] = value
        return BlockStructure(entries)

    def free_positions(self) -> List[Tuple[int, int]]:
        """All (head_block, tail_block) positions currently set to zero."""
        return [(int(i), int(j)) for i, j in zip(*np.where(self._entries == 0))]


def structures_equal(first: Iterable[BlockStructure], second: Iterable[BlockStructure]) -> bool:
    """Whether two sequences of structures are element-wise equal."""
    first, second = list(first), list(second)
    return len(first) == len(second) and all(a == b for a, b in zip(first, second))
