"""Classic hand-designed scoring functions expressed as block structures.

Following AutoSF (Zhang et al., ICDE 2020), the well-known bilinear models are special
points of the block search space with ``M = 4`` blocks.  With the convention that an
embedding ``x`` is split into four blocks ``x1..x4`` (for ComplEx-style models blocks
1-2 play the role of the real part and blocks 3-4 of the imaginary part), the classics are:

* **DistMult**  ``<h1,r1,t1> + <h2,r2,t2> + <h3,r3,t3> + <h4,r4,t4>``
* **ComplEx**   DistMult plus the cross real/imaginary terms with one negative sign
* **SimplE**    the head-to-tail / tail-to-head coupling ``<h1,r1,t3> + <h2,r2,t4> + <h3,r3,t1> + <h4,r4,t2>``
* **Analogy**   DistMult on the first two blocks plus a ComplEx-style pair on the last two
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.scoring.structure import BlockStructure


def distmult_structure(num_blocks: int = 4) -> BlockStructure:
    """DistMult: a diagonal structure (only handles symmetric relations)."""
    return BlockStructure.diagonal(num_blocks)


def complex_structure() -> BlockStructure:
    """ComplEx with four blocks: (h1,h2)=real, (h3,h4)=imaginary.

    score = <Re(h),Re(r),Re(t)> + <Im(h),Re(r),Im(t)> + <Re(h),Im(r),Im(t)> - <Im(h),Im(r),Re(t)>
    with Re(r) represented by blocks (r1, r2) and Im(r) by blocks (r3, r4).
    """
    entries = np.zeros((4, 4), dtype=np.int64)
    entries[0, 0] = 1   # <h1, r1, t1>
    entries[1, 1] = 2   # <h2, r2, t2>
    entries[2, 2] = 1   # <h3, r1, t3>
    entries[3, 3] = 2   # <h4, r2, t4>
    entries[0, 2] = 3   # <h1, r3, t3>
    entries[1, 3] = 4   # <h2, r4, t4>
    entries[2, 0] = -3  # -<h3, r3, t1>
    entries[3, 1] = -4  # -<h4, r4, t2>
    return BlockStructure(entries)


def simple_structure() -> BlockStructure:
    """SimplE: head-role and tail-role embeddings coupled through inverse relation blocks."""
    entries = np.zeros((4, 4), dtype=np.int64)
    entries[0, 2] = 1  # <h1, r1, t3>
    entries[1, 3] = 2  # <h2, r2, t4>
    entries[2, 0] = 3  # <h3, r3, t1>
    entries[3, 1] = 4  # <h4, r4, t2>
    return BlockStructure(entries)


def analogy_structure() -> BlockStructure:
    """Analogy: DistMult on blocks 1-2 plus a ComplEx-style rotation on blocks 3-4."""
    entries = np.zeros((4, 4), dtype=np.int64)
    entries[0, 0] = 1   # DistMult part
    entries[1, 1] = 2
    entries[2, 2] = 3   # ComplEx-style part on the last two blocks
    entries[3, 3] = 3
    entries[2, 3] = 4
    entries[3, 2] = -4
    return BlockStructure(entries)


def autosf_wn18_structure() -> BlockStructure:
    """The best structure AutoSF reports for WN18-style data (used as the AutoSF stand-in
    for Table III where the searched structure is not re-derived)."""
    entries = np.zeros((4, 4), dtype=np.int64)
    entries[0, 0] = 1
    entries[1, 1] = 2
    entries[2, 3] = 3
    entries[3, 2] = -3
    entries[2, 2] = 4
    entries[3, 3] = 4
    return BlockStructure(entries)


CLASSIC_STRUCTURES: Dict[str, BlockStructure] = {
    "distmult": distmult_structure(),
    "complex": complex_structure(),
    "simple": simple_structure(),
    "analogy": analogy_structure(),
}


def named_structure(name: str) -> BlockStructure:
    """Look up a classic structure by (case-insensitive) name."""
    try:
        return CLASSIC_STRUCTURES[name.lower()]
    except KeyError:
        raise KeyError(f"unknown classic scoring function {name!r}; available: {sorted(CLASSIC_STRUCTURES)}") from None
