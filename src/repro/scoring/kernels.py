"""No-grad scoring kernels: raw-NumPy 1-vs-all scoring without autodiff bookkeeping.

Evaluation and serving only need forward score values, yet the seed implementation ran
them through the :class:`~repro.autodiff.Tensor` machinery (object wrappers, graph
checks, closure allocation) for every op.  This module compiles each scoring function
into a plain-array ``score_all`` closure:

* :func:`compile_block_kernel` turns a :class:`~repro.scoring.structure.BlockStructure`'s
  nonzero items into a closure that collapses the anchor-relation interaction per
  candidate block and finishes with one matmul per block -- the identical arithmetic
  (same operations, same order, same float64 dtype) as
  :meth:`~repro.scoring.bilinear.BlockScoringFunction.score_all_tails`, so scores are
  **bit-identical** to the autodiff path; only the Tensor wrappers disappear.
* :func:`kernel_for` dispatches: block scoring functions get their compiled kernel
  (memoised per instance), anything else (TransE, RotatE, custom scorers) falls back to
  the Tensor implementation under ``no_grad`` and unwraps the result.

Kernels return freshly allocated, writable arrays -- callers may mask scores in place
without a defensive copy (``RankingEvaluator`` relies on this; the fallback copies in
the rare case a scorer returns a view).  The kernels back
:meth:`repro.models.kge.KGEModel.score_all_arrays`, which is the shared fast path of
:class:`~repro.eval.ranking.RankingEvaluator`, the supernet's one-shot rewards and
:class:`~repro.serve.engine.LinkPredictionEngine`.

Entity tiling
-------------

All-candidate scoring streams the candidate table in fixed tiles of
:data:`ENTITY_TILE` entities (see :func:`score_candidate_range`).  The tile grid is
*absolute* -- tile ``k`` always covers entity ids ``[k * ENTITY_TILE, (k + 1) *
ENTITY_TILE)`` regardless of which range a caller requests -- because BLAS matmuls are
only reproducible for byte-identical operands: ``Q @ C[a:b].T`` is generally NOT
bitwise equal to ``(Q @ C.T)[:, a:b]``.  By pinning every kernel call to the same
grid, a chunked pass over ``[0, E)`` issues literally the same matmuls as one full
pass, which is what makes :meth:`~repro.models.kge.KGEModel.score_chunk_entities`
bit-identical to the unchunked path by construction rather than by luck.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro.autodiff import Tensor, no_grad
from repro.scoring.base import ScoringFunction
from repro.scoring.structure import BlockStructure

# A kernel maps (anchor, relation, candidates, direction) -> (n, num_candidates) scores.
# ``anchor`` is the head embedding for direction 'tail' and the tail embedding for 'head'.
ScoreAllKernel = Callable[[np.ndarray, np.ndarray, np.ndarray, str], np.ndarray]

# Width of the absolute candidate-tile grid used by all 1-vs-all scoring.  Chunk
# boundaries handed to score_candidate_range must land on this grid (or on the table
# end), so chunked and unchunked passes decompose into the identical kernel calls.
ENTITY_TILE = 512


def normalize_chunk_size(entity_chunk_size: int) -> int:
    """Round a requested entity chunk size up to the ``ENTITY_TILE`` grid.

    Chunk boundaries must land on the absolute tile grid for chunked scoring to stay
    bit-identical, so callers configure an approximate budget and get back the nearest
    usable value (minimum one tile).
    """
    if entity_chunk_size <= 0:
        raise ValueError(f"entity_chunk_size must be positive, got {entity_chunk_size}")
    tiles = -(-int(entity_chunk_size) // ENTITY_TILE)
    return tiles * ENTITY_TILE


def validate_tile_range(start: int, stop: int, num_candidates: int) -> None:
    """Reject candidate ranges that do not sit on the absolute ``ENTITY_TILE`` grid.

    ``start`` must be a tile boundary and ``stop`` either a tile boundary or the end of
    the candidate table; anything else would change which matmuls run and silently
    break bit-identity with the unchunked path.
    """
    if not 0 <= start < stop <= num_candidates:
        raise ValueError(
            f"candidate range [{start}, {stop}) out of bounds for {num_candidates} candidates"
        )
    if start % ENTITY_TILE != 0:
        raise ValueError(f"chunk start {start} is not a multiple of ENTITY_TILE={ENTITY_TILE}")
    if stop % ENTITY_TILE != 0 and stop != num_candidates:
        raise ValueError(
            f"chunk stop {stop} must be a multiple of ENTITY_TILE={ENTITY_TILE} "
            f"or the table end {num_candidates}"
        )


def score_candidate_range(
    kernel: ScoreAllKernel,
    anchor: np.ndarray,
    relation: np.ndarray,
    candidates: np.ndarray,
    direction: str,
    start: int = 0,
    stop: Optional[int] = None,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Score candidates ``[start, stop)`` by streaming absolute ``ENTITY_TILE`` tiles.

    Issues one kernel call per grid tile intersecting the range and writes each
    result into the matching column span.  Because the tiles are absolute, any
    tile-aligned partition of ``[0, num_candidates)`` reproduces the full pass bit for
    bit.  ``out``, when given, must have shape ``(n, stop - start)``; otherwise a fresh
    writable array is returned (single-tile requests return the kernel result
    directly, keeping small graphs copy-free).
    """
    num_candidates = candidates.shape[0]
    if stop is None:
        stop = num_candidates
    validate_tile_range(start, stop, num_candidates)
    first_tile = start // ENTITY_TILE
    last_tile = (stop - 1) // ENTITY_TILE
    if out is None and first_tile == last_tile:
        return kernel(anchor, relation, candidates[start:stop], direction)
    if out is None:
        out = np.empty((anchor.shape[0], stop - start), dtype=np.float64)
    elif out.shape != (anchor.shape[0], stop - start):
        raise ValueError(
            f"out has shape {out.shape}, expected {(anchor.shape[0], stop - start)}"
        )
    for tile in range(first_tile, last_tile + 1):
        a = tile * ENTITY_TILE
        b = min(a + ENTITY_TILE, stop)
        out[:, a - start : b - start] = kernel(anchor, relation, candidates[a:b], direction)
    return out


def compile_block_kernel(structure: BlockStructure) -> ScoreAllKernel:
    """Compile a block structure's nonzero items into a raw-NumPy ``score_all`` closure.

    The closure mirrors :class:`~repro.scoring.bilinear.BlockScoringFunction` exactly:
    per item ``<h_i, r_k, t_j>`` the anchor-relation product (times the sign) is
    accumulated into the query of the opposite block, then each non-empty query hits the
    candidate table with one matmul.  Item order and block-accumulation order match the
    Tensor path, keeping results bit-identical.
    """
    items = structure.nonzero_items()
    num_blocks = structure.num_blocks

    def split(array: np.ndarray) -> List[np.ndarray]:
        dim = array.shape[-1]
        if dim % num_blocks != 0:
            raise ValueError(
                f"embedding dimension {dim} is not divisible by the number of blocks {num_blocks}"
            )
        block_dim = dim // num_blocks
        return [array[:, i * block_dim : (i + 1) * block_dim] for i in range(num_blocks)]

    def score_all(anchor: np.ndarray, relation: np.ndarray, candidates: np.ndarray, direction: str) -> np.ndarray:
        anchor_blocks = split(anchor)
        relation_blocks = split(relation)
        candidate_blocks = split(candidates)
        queries: List[Optional[np.ndarray]] = [None] * num_blocks
        for head_block, tail_block, value in items:
            sign = 1.0 if value > 0 else -1.0
            relation_block = relation_blocks[abs(value) - 1]
            if direction == "tail":
                contribution = anchor_blocks[head_block] * relation_block * sign
                target_block = tail_block
            else:
                contribution = relation_block * anchor_blocks[tail_block] * sign
                target_block = head_block
            queries[target_block] = (
                contribution if queries[target_block] is None else queries[target_block] + contribution
            )
        total: Optional[np.ndarray] = None
        for block, query in enumerate(queries):
            if query is None:
                continue
            term = query @ candidate_blocks[block].T
            total = term if total is None else total + term
        if total is None:
            # Degenerate all-zero structure: the score is identically zero.
            return np.zeros((anchor.shape[0], candidates.shape[0]), dtype=np.float64)
        return total

    return score_all


def _fallback_kernel(scorer: ScoringFunction) -> ScoreAllKernel:
    """Wrap a scorer's Tensor implementation as a plain-array kernel (``no_grad``)."""

    def score_all(anchor: np.ndarray, relation: np.ndarray, candidates: np.ndarray, direction: str) -> np.ndarray:
        with no_grad():
            if direction == "tail":
                result = scorer.score_all_tails(Tensor(anchor), Tensor(relation), Tensor(candidates))
            else:
                result = scorer.score_all_heads(Tensor(anchor), Tensor(relation), Tensor(candidates))
        data = result.data
        # Kernels promise a fresh writable array; copy only if the scorer returned a view.
        return data if data.base is None and data.flags.writeable else data.copy()

    return score_all


def kernel_for(scorer: ScoringFunction) -> ScoreAllKernel:
    """The fastest available ``score_all`` kernel of a scoring function.

    Block scoring functions expose a compiled kernel
    (:meth:`~repro.scoring.bilinear.BlockScoringFunction.kernel`, memoised per
    instance); every other scorer is served through the Tensor fallback, which is
    bit-identical by construction.
    """
    kernel = getattr(scorer, "kernel", None)
    if callable(kernel):
        return kernel()
    return _fallback_kernel(scorer)
