"""No-grad scoring kernels: raw-NumPy 1-vs-all scoring without autodiff bookkeeping.

Evaluation and serving only need forward score values, yet the seed implementation ran
them through the :class:`~repro.autodiff.Tensor` machinery (object wrappers, graph
checks, closure allocation) for every op.  This module compiles each scoring function
into a plain-array ``score_all`` closure:

* :func:`compile_block_kernel` turns a :class:`~repro.scoring.structure.BlockStructure`'s
  nonzero items into a closure that collapses the anchor-relation interaction per
  candidate block and finishes with one matmul per block -- the identical arithmetic
  (same operations, same order, same float64 dtype) as
  :meth:`~repro.scoring.bilinear.BlockScoringFunction.score_all_tails`, so scores are
  **bit-identical** to the autodiff path; only the Tensor wrappers disappear.
* :func:`kernel_for` dispatches: block scoring functions get their compiled kernel
  (memoised per instance), anything else (TransE, RotatE, custom scorers) falls back to
  the Tensor implementation under ``no_grad`` and unwraps the result.

Kernels return freshly allocated, writable arrays -- callers may mask scores in place
without a defensive copy (``RankingEvaluator`` relies on this; the fallback copies in
the rare case a scorer returns a view).  The kernels back
:meth:`repro.models.kge.KGEModel.score_all_arrays`, which is the shared fast path of
:class:`~repro.eval.ranking.RankingEvaluator`, the supernet's one-shot rewards and
:class:`~repro.serve.engine.LinkPredictionEngine`.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro.autodiff import Tensor, no_grad
from repro.scoring.base import ScoringFunction
from repro.scoring.structure import BlockStructure

# A kernel maps (anchor, relation, candidates, direction) -> (n, num_candidates) scores.
# ``anchor`` is the head embedding for direction 'tail' and the tail embedding for 'head'.
ScoreAllKernel = Callable[[np.ndarray, np.ndarray, np.ndarray, str], np.ndarray]


def compile_block_kernel(structure: BlockStructure) -> ScoreAllKernel:
    """Compile a block structure's nonzero items into a raw-NumPy ``score_all`` closure.

    The closure mirrors :class:`~repro.scoring.bilinear.BlockScoringFunction` exactly:
    per item ``<h_i, r_k, t_j>`` the anchor-relation product (times the sign) is
    accumulated into the query of the opposite block, then each non-empty query hits the
    candidate table with one matmul.  Item order and block-accumulation order match the
    Tensor path, keeping results bit-identical.
    """
    items = structure.nonzero_items()
    num_blocks = structure.num_blocks

    def split(array: np.ndarray) -> List[np.ndarray]:
        dim = array.shape[-1]
        if dim % num_blocks != 0:
            raise ValueError(
                f"embedding dimension {dim} is not divisible by the number of blocks {num_blocks}"
            )
        block_dim = dim // num_blocks
        return [array[:, i * block_dim : (i + 1) * block_dim] for i in range(num_blocks)]

    def score_all(anchor: np.ndarray, relation: np.ndarray, candidates: np.ndarray, direction: str) -> np.ndarray:
        anchor_blocks = split(anchor)
        relation_blocks = split(relation)
        candidate_blocks = split(candidates)
        queries: List[Optional[np.ndarray]] = [None] * num_blocks
        for head_block, tail_block, value in items:
            sign = 1.0 if value > 0 else -1.0
            relation_block = relation_blocks[abs(value) - 1]
            if direction == "tail":
                contribution = anchor_blocks[head_block] * relation_block * sign
                target_block = tail_block
            else:
                contribution = relation_block * anchor_blocks[tail_block] * sign
                target_block = head_block
            queries[target_block] = (
                contribution if queries[target_block] is None else queries[target_block] + contribution
            )
        total: Optional[np.ndarray] = None
        for block, query in enumerate(queries):
            if query is None:
                continue
            term = query @ candidate_blocks[block].T
            total = term if total is None else total + term
        if total is None:
            # Degenerate all-zero structure: the score is identically zero.
            return np.zeros((anchor.shape[0], candidates.shape[0]), dtype=np.float64)
        return total

    return score_all


def _fallback_kernel(scorer: ScoringFunction) -> ScoreAllKernel:
    """Wrap a scorer's Tensor implementation as a plain-array kernel (``no_grad``)."""

    def score_all(anchor: np.ndarray, relation: np.ndarray, candidates: np.ndarray, direction: str) -> np.ndarray:
        with no_grad():
            if direction == "tail":
                result = scorer.score_all_tails(Tensor(anchor), Tensor(relation), Tensor(candidates))
            else:
                result = scorer.score_all_heads(Tensor(anchor), Tensor(relation), Tensor(candidates))
        data = result.data
        # Kernels promise a fresh writable array; copy only if the scorer returned a view.
        return data if data.base is None and data.flags.writeable else data.copy()

    return score_all


def kernel_for(scorer: ScoringFunction) -> ScoreAllKernel:
    """The fastest available ``score_all`` kernel of a scoring function.

    Block scoring functions expose a compiled kernel
    (:meth:`~repro.scoring.bilinear.BlockScoringFunction.kernel`, memoised per
    instance); every other scorer is served through the Tensor fallback, which is
    bit-identical by construction.
    """
    kernel = getattr(scorer, "kernel", None)
    if callable(kernel):
        return kernel()
    return _fallback_kernel(scorer)
