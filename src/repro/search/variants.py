"""Ablation variants of ERAS (Section V-E / Table XI of the paper).

Factory functions return configured searchers whose ``name`` identifies the variant:

* ``eras_n1``  -- task-aware only: a single relation group (same space as AutoSF).
* ``eras_los`` -- validation *loss* replaces MRR as the controller reward.
* ``eras_dif`` -- differentiable architecture weights optimised by gradient descent on
  the validation loss (NASP-style), instead of reinforcement learning.
* ``eras_sig`` -- single-level optimisation: the controller reward is computed on
  training mini-batches.
* ``eras_pde`` -- relation groups are fixed from embeddings pre-trained with SimplE and
  never updated during the search.
* ``eras_smt`` -- relation groups are fixed from the detected semantic patterns
  (symmetric / anti-symmetric / inverse / general asymmetric).
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.autodiff import Tensor, functional as F
from repro.kg.graph import KnowledgeGraph
from repro.kg.patterns import RelationPattern, RelationPatternAnalyzer
from repro.models.kge import KGEModel
from repro.models.trainer import Trainer, TrainerConfig
from repro.nn import Adam, Module, Parameter
from repro.scoring.classics import simple_structure
from repro.scoring.structure import BlockStructure
from repro.search.base import (
    Searcher,
    SearchState,
    restore_rng,
    rng_state,
    trace_from_jsonable,
    trace_to_jsonable,
)
from repro.search.clustering import EMRelationClustering
from repro.search.eras import ERASConfig, ERASSearcher
from repro.search.result import Candidate, SearchResult, TracePoint
from repro.search.space import RelationAwareSearchSpace
from repro.search.supernet import SharedEmbeddingSupernet
from repro.utils.rng import new_rng

__all__ = [
    "eras_n1",
    "eras_los",
    "eras_sig",
    "eras_pde",
    "eras_smt",
    "eras_dif",
    "ERASDifferentiableSearcher",
    "DifferentiableSearchState",
    "semantic_assignment",
    "pretrained_assignment",
]


# ---------------------------------------------------------------------- assignment helpers
def semantic_assignment(graph: KnowledgeGraph, num_groups: int) -> np.ndarray:
    """Group relations by detected semantic pattern (the ERAS_smt grouping)."""
    analyzer = RelationPatternAnalyzer()
    pattern_order = [
        RelationPattern.SYMMETRIC,
        RelationPattern.ANTI_SYMMETRIC,
        RelationPattern.INVERSE,
        RelationPattern.GENERAL_ASYMMETRIC,
    ]
    pattern_to_group = {pattern: min(index, num_groups - 1) for index, pattern in enumerate(pattern_order)}
    assignment = np.zeros(graph.num_relations, dtype=np.int64)
    for report in analyzer.analyze(graph):
        assignment[report.relation] = pattern_to_group[report.pattern]
    return assignment


def pretrained_assignment(
    graph: KnowledgeGraph,
    num_groups: int,
    dim: int = 32,
    epochs: int = 10,
    seed: int = 0,
) -> np.ndarray:
    """Group relations by clustering embeddings pre-trained with SimplE (the ERAS_pde grouping)."""
    model = KGEModel(graph.num_entities, graph.num_relations, dim=dim, scorers=simple_structure(), seed=seed)
    trainer = Trainer(TrainerConfig(epochs=epochs, valid_every=max(1, epochs // 2), patience=2, seed=seed))
    trainer.fit(model, graph)
    clustering = EMRelationClustering(num_groups, seed=seed)
    return clustering.assign(model.relation_embedding_matrix())


# ---------------------------------------------------------------------- RL-based variants
def _configured(base: Optional[ERASConfig], **overrides) -> ERASConfig:
    base = base or ERASConfig()
    return dataclasses.replace(base, **overrides)


def eras_n1(config: Optional[ERASConfig] = None, pool: Optional["EvaluationPool"] = None) -> ERASSearcher:
    """ERAS restricted to a single relation group (task-aware, like AutoSF).

    ``pool`` optionally parallelises the derive-phase scorings, exactly as in
    :class:`~repro.search.eras.ERASSearcher`.
    """
    searcher = ERASSearcher(_configured(config, num_groups=1), pool=pool)
    searcher.name = "ERAS_N=1"
    return searcher


def eras_los(config: Optional[ERASConfig] = None) -> ERASSearcher:
    """ERAS with the validation loss as the (negated) reward instead of MRR."""
    searcher = ERASSearcher(_configured(config, reward_metric="neg_loss"))
    searcher.name = "ERAS_los"
    return searcher


def eras_sig(config: Optional[ERASConfig] = None) -> ERASSearcher:
    """Single-level ERAS: the controller reward is computed on training mini-batches."""
    searcher = ERASSearcher(_configured(config, controller_on_train=True))
    searcher.name = "ERAS_sig"
    return searcher


def eras_pde(config: Optional[ERASConfig] = None, pretrain_epochs: int = 10) -> ERASSearcher:
    """ERAS with the grouping fixed from SimplE-pretrained embeddings (no dynamic update)."""
    config = _configured(config, update_assignment=False)

    def assignment_fn(graph: KnowledgeGraph) -> np.ndarray:
        return pretrained_assignment(graph, config.num_groups, epochs=pretrain_epochs, seed=config.seed)

    searcher = ERASSearcher(config, initial_assignment_fn=assignment_fn)
    searcher.name = "ERAS_pde"
    return searcher


def eras_smt(config: Optional[ERASConfig] = None) -> ERASSearcher:
    """ERAS with the grouping fixed from detected semantic patterns (no dynamic update)."""
    config = _configured(config, update_assignment=False)

    def assignment_fn(graph: KnowledgeGraph) -> np.ndarray:
        return semantic_assignment(graph, config.num_groups)

    searcher = ERASSearcher(config, initial_assignment_fn=assignment_fn)
    searcher.name = "ERAS_smt"
    return searcher


# ---------------------------------------------------------------------- differentiable variant
class _MixtureArchitecture(Module):
    """Continuous architecture weights A of shape (groups, M^2, ops) with softmax relaxation."""

    def __init__(self, num_groups: int, num_blocks: int, seed: int = 0) -> None:
        super().__init__()
        self.num_groups = num_groups
        self.num_blocks = num_blocks
        self.num_ops = 2 * num_blocks + 1
        rng = new_rng(seed)
        self.weights = Parameter(
            0.01 * rng.normal(size=(num_groups, num_blocks * num_blocks, self.num_ops)), name="arch"
        )

    def probabilities(self) -> Tensor:
        """Softmax over operations for every (group, position)."""
        flat = self.weights.reshape(self.num_groups * self.num_blocks * self.num_blocks, self.num_ops)
        return F.softmax(flat, axis=-1).reshape(self.num_groups, self.num_blocks * self.num_blocks, self.num_ops)

    def discretize(self) -> List[BlockStructure]:
        """Argmax decode into one discrete structure per group."""
        space = RelationAwareSearchSpace(self.num_blocks, self.num_groups)
        tokens: List[int] = []
        probs = self.probabilities().data
        for group in range(self.num_groups):
            tokens.extend(int(t) for t in probs[group].argmax(axis=-1))
        return space.structures_from_tokens(tokens)


@dataclass
class DifferentiableSearchState(SearchState):
    """Mutable state of an in-progress ERAS_dif search.

    Fields
    ------
    graph:
        The dataset being searched.
    supernet:
        Shared-embedding supernet holding the one-shot model.
    architecture:
        The continuous per-group mixture weights over operations.
    architecture_optimizer:
        Adam optimiser of the architecture weights.
    clustering:
        The EM/k-means relation clustering refreshing the grouping each epoch.
    rng:
        The search-level random stream (per-epoch batch seeds).
    steps_completed:
        Finished protocol steps (one epoch each).
    evaluations:
        Architecture-gradient evaluations performed so far (one per epoch).
    elapsed_seconds:
        Cumulative search wall clock across completed steps.
    trace:
        Search-progress points, one per epoch.
    """

    graph: KnowledgeGraph
    supernet: SharedEmbeddingSupernet
    architecture: "_MixtureArchitecture"
    architecture_optimizer: Adam
    clustering: EMRelationClustering
    rng: np.random.Generator
    steps_completed: int = 0
    evaluations: int = 0
    elapsed_seconds: float = 0.0
    trace: List[TracePoint] = field(default_factory=list)


class ERASDifferentiableSearcher(Searcher):
    """ERAS_dif: DARTS/NASP-style differentiable search over the supernet.

    The architecture is a per-group softmax mixture over operations.  Shared embeddings
    are updated on training batches with the mixture loss; architecture weights are
    updated on validation mini-batches by gradient descent (the validation loss is
    differentiable, unlike MRR); the relation grouping is refreshed by EM clustering each
    epoch.  The final structure is the argmax decode of the mixture weights.

    Implements the shared stepwise :class:`~repro.search.base.Searcher` protocol (one
    epoch per step).  ``pool`` is accepted for factory uniformity but unused -- the
    differentiable search has no pooled candidate evaluations.
    """

    name = "ERAS_dif"

    def __init__(self, config: Optional[ERASConfig] = None, pool: Optional["EvaluationPool"] = None) -> None:
        self.config = config or ERASConfig()
        del pool  # no derive phase, nothing to fan out

    # -------------------------------------------------------------- candidate scoring
    def _mixture_loss(
        self,
        supernet: SharedEmbeddingSupernet,
        architecture: _MixtureArchitecture,
        batch: np.ndarray,
    ) -> Tensor:
        """Cross-entropy of the mixture-weighted scores on one batch."""
        model = supernet.model
        probabilities = architecture.probabilities()
        # Build, per group, the expected structure as a dense weighting of signed ops and
        # evaluate it directly: expected score = sum_v sum_k p_vk * sign_k <h_i, r_b(k), t_j>.
        head, relation, tail = model.embed_triples(batch)
        candidates = model.entities.all()
        num_blocks = architecture.num_blocks
        block_dim = model.dim // num_blocks
        head_blocks = [head[:, b * block_dim : (b + 1) * block_dim] for b in range(num_blocks)]
        relation_blocks = [relation[:, b * block_dim : (b + 1) * block_dim] for b in range(num_blocks)]
        tail_blocks = [tail[:, b * block_dim : (b + 1) * block_dim] for b in range(num_blocks)]
        candidate_blocks = [candidates[:, b * block_dim : (b + 1) * block_dim] for b in range(num_blocks)]

        groups = supernet.assignment[batch[:, 1]]
        total_loss: Optional[Tensor] = None
        for group in range(architecture.num_groups):
            rows = np.where(groups == group)[0]
            if rows.size == 0:
                continue
            tail_logits: Optional[Tensor] = None
            head_logits: Optional[Tensor] = None
            for position in range(num_blocks * num_blocks):
                i, j = divmod(position, num_blocks)
                for block in range(1, num_blocks + 1):
                    plus = probabilities[group, position, block]
                    minus = probabilities[group, position, num_blocks + block]
                    weight = plus - minus
                    hr = head_blocks[i][rows] * relation_blocks[block - 1][rows] * weight
                    rt = relation_blocks[block - 1][rows] * tail_blocks[j][rows] * weight
                    tail_term = hr @ candidate_blocks[j].T
                    head_term = rt @ candidate_blocks[i].T
                    tail_logits = tail_term if tail_logits is None else tail_logits + tail_term
                    head_logits = head_term if head_logits is None else head_logits + head_term
            loss = (
                F.cross_entropy(tail_logits, batch[rows, 2]) + F.cross_entropy(head_logits, batch[rows, 0])
            ) * (0.5 * rows.size / len(batch))
            total_loss = loss if total_loss is None else total_loss + loss
        if total_loss is None:
            raise RuntimeError("empty batch in mixture loss")
        return total_loss

    # -------------------------------------------------------------- protocol
    def init_state(self, graph: KnowledgeGraph) -> DifferentiableSearchState:
        """Build the supernet, mixture architecture, optimiser and clustering."""
        config = self.config
        supernet = SharedEmbeddingSupernet(graph, num_groups=config.num_groups, config=config.supernet)
        architecture = _MixtureArchitecture(config.num_groups, config.num_blocks, seed=config.seed)
        clustering = EMRelationClustering(config.num_groups, seed=config.seed)
        if config.num_groups > 1:
            supernet.set_assignment(clustering.assign(supernet.relation_embeddings()))
        return DifferentiableSearchState(
            graph=graph,
            supernet=supernet,
            architecture=architecture,
            architecture_optimizer=Adam(architecture.parameters(), lr=config.controller.learning_rate),
            clustering=clustering,
            rng=new_rng(config.seed),
        )

    def run_step(self, state: DifferentiableSearchState) -> None:
        """One epoch: embedding updates on the mixture loss, grouping refresh, then
        one gradient step on the architecture weights from a validation mini-batch."""
        config = self.config
        supernet, architecture = state.supernet, state.architecture
        started = time.perf_counter()
        for batch in supernet.training_batches(seed=int(state.rng.integers(1 << 31))):
            supernet.optimizer.zero_grad()
            loss = self._mixture_loss(supernet, architecture, batch)
            loss.backward()
            supernet.optimizer.step()
        if config.update_assignment and config.num_groups > 1:
            supernet.set_assignment(
                state.clustering.assign(supernet.relation_embeddings(), initial_assignment=supernet.assignment)
            )
        validation_batch = supernet.sample_validation_batch()
        state.architecture_optimizer.zero_grad()
        validation_loss = self._mixture_loss(supernet, architecture, validation_batch)
        validation_loss.backward()
        state.architecture_optimizer.step()
        state.evaluations += 1
        state.steps_completed += 1
        candidate = Candidate(tuple(architecture.discretize()))
        mrr = supernet.reward(candidate, validation_batch)
        state.elapsed_seconds += time.perf_counter() - started
        state.trace.append(
            TracePoint(
                elapsed_seconds=state.elapsed_seconds,
                evaluations=state.evaluations,
                valid_mrr=mrr,
                note=f"epoch {state.steps_completed}",
            )
        )

    def is_complete(self, state: DifferentiableSearchState) -> bool:
        """True once every configured epoch has run."""
        return state.steps_completed >= self.config.epochs

    def finalize(self, state: DifferentiableSearchState) -> SearchResult:
        """Argmax-decode the mixture weights and score the result one-shot."""
        best_candidate = Candidate(tuple(state.architecture.discretize()))
        best_mrr = state.supernet.one_shot_validation_mrr(best_candidate)
        return SearchResult(
            searcher=self.name,
            dataset=state.graph.name,
            best_candidate=best_candidate,
            best_assignment=state.supernet.assignment.copy(),
            best_valid_mrr=float(best_mrr),
            search_seconds=state.elapsed_seconds,
            evaluations=state.evaluations,
            trace=state.trace,
        )

    def state_dict(self, state: DifferentiableSearchState) -> Dict[str, object]:
        """Embeddings, architecture weights, both optimisers, streams and counters."""
        return {
            "steps_completed": state.steps_completed,
            "evaluations": state.evaluations,
            "elapsed_seconds": state.elapsed_seconds,
            "rng": rng_state(state.rng),
            "supernet": {
                "model": state.supernet.model.state_dict(),
                "optimizer": state.supernet.optimizer.state_dict(),
                "rng": rng_state(state.supernet._rng),
                "assignment": state.supernet.assignment.tolist(),
            },
            "architecture": {
                "model": state.architecture.state_dict(),
                "optimizer": state.architecture_optimizer.state_dict(),
            },
            "clustering_rng": rng_state(state.clustering._rng),
            "trace": trace_to_jsonable(state.trace),
        }

    def load_state_dict(self, state: DifferentiableSearchState, payload: Dict[str, object]) -> None:
        """Overwrite every piece of mutable state of a fresh ``state`` in place."""
        supernet_payload = payload["supernet"]
        state.supernet.model.load_state_dict(
            {name: np.asarray(value, dtype=np.float64) for name, value in supernet_payload["model"].items()}
        )
        state.supernet.optimizer.load_state_dict(supernet_payload["optimizer"])
        restore_rng(state.supernet._rng, supernet_payload["rng"])
        state.supernet.set_assignment(np.asarray(supernet_payload["assignment"], dtype=np.int64))
        architecture_payload = payload["architecture"]
        state.architecture.load_state_dict(
            {name: np.asarray(value, dtype=np.float64) for name, value in architecture_payload["model"].items()}
        )
        state.architecture_optimizer.load_state_dict(architecture_payload["optimizer"])
        restore_rng(state.clustering._rng, payload["clustering_rng"])
        restore_rng(state.rng, payload["rng"])
        state.steps_completed = int(payload["steps_completed"])
        state.evaluations = int(payload["evaluations"])
        state.elapsed_seconds = float(payload["elapsed_seconds"])
        state.trace = trace_from_jsonable(payload["trace"])


def eras_dif(config: Optional[ERASConfig] = None) -> ERASDifferentiableSearcher:
    """Factory mirroring the other variants."""
    return ERASDifferentiableSearcher(config)
