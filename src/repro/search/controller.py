"""The LSTM architecture controller trained with REINFORCE (Section IV-B of the paper).

The controller generates a candidate autoregressively: at decision step ``v`` it emits a
distribution over the ``2M + 1`` operations, a token is sampled, embedded, and fed back
into the LSTM to produce step ``v + 1``.  The REINFORCE gradient (Eq. 7) with a moving
average baseline updates the controller towards candidates with a high one-shot reward.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.autodiff import Tensor, functional as F
from repro.nn import Adam, Embedding, Linear, LSTMCell, Module
from repro.search.result import Candidate
from repro.search.space import RelationAwareSearchSpace
from repro.utils.rng import new_rng, spawn_rng


@dataclass
class ControllerConfig:
    """Controller hyper-parameters (Section IV-B, Eq. 7).

    Fields
    ------
    hidden_size:
        Hidden state width of the LSTM policy (default 64, > 0).
    token_embedding_dim:
        Dimension of the operation-token embeddings fed back into the LSTM
        (default 32, > 0).
    learning_rate:
        Adam learning rate of the REINFORCE update (default 0.01, > 0).
    baseline_decay:
        Decay of the exponential moving-average reward baseline b in Eq. 7
        (default 0.7, in [0, 1)).
    entropy_weight:
        Weight of the optional entropy bonus encouraging exploration
        (default 0.0, >= 0; 0 disables it).
    zero_operation_bias:
        Initial logit bias towards the zero operation so early candidates are sparse,
        mirroring AutoSF's budget prior (default 1.5; the controller unlearns it).
    seed:
        Seed of the parameter initialisation and fallback sampling stream (default 0).
    """

    hidden_size: int = 64
    token_embedding_dim: int = 32
    learning_rate: float = 0.01
    baseline_decay: float = 0.7
    entropy_weight: float = 0.0
    zero_operation_bias: float = 1.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.hidden_size <= 0 or self.token_embedding_dim <= 0:
            raise ValueError("hidden_size and token_embedding_dim must be positive")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0.0 <= self.baseline_decay < 1.0:
            raise ValueError("baseline_decay must be in [0, 1)")


@dataclass
class SampledCandidate:
    """A candidate together with the differentiable log-probability of sampling it."""

    candidate: Candidate
    tokens: np.ndarray
    log_prob: Tensor
    entropy: float


class ArchitectureController(Module):
    """LSTM policy ``pi(A; theta)`` over token sequences of the search space."""

    def __init__(self, space: RelationAwareSearchSpace, config: Optional[ControllerConfig] = None) -> None:
        super().__init__()
        self.space = space
        self.config = config or ControllerConfig()
        vocabulary = space.num_operations
        rng = new_rng(self.config.seed)
        seeds = spawn_rng(rng, 3)
        # Token "vocabulary + 1" reserves the last id as the start-of-sequence symbol.
        self.token_embedding = Embedding(vocabulary + 1, self.config.token_embedding_dim, seed=seeds[0])
        self.cell = LSTMCell(self.config.token_embedding_dim, self.config.hidden_size, seed=seeds[1])
        self.output = Linear(self.config.hidden_size, vocabulary, seed=seeds[2])
        # Bias the policy towards the zero operation so that early candidates are sparse,
        # mirroring AutoSF's budgeted structures; the controller unlearns it if dense
        # structures pay off.
        self.output.bias.data[0] = self.config.zero_operation_bias
        self._start_token = vocabulary
        self._rng = new_rng(self.config.seed)

    # ------------------------------------------------------------------ sampling
    def sample_one(self, rng: Optional[np.random.Generator] = None, greedy: bool = False) -> SampledCandidate:
        """Sample a single candidate, returning its differentiable log-probability."""
        rng = rng if rng is not None else self._rng
        state = self.cell.initial_state(1)
        previous = self._start_token
        log_prob_terms: List[Tensor] = []
        entropy = 0.0
        tokens = np.zeros(self.space.token_count, dtype=np.int64)
        for step in range(self.space.token_count):
            embedded = self.token_embedding(np.array([previous]))
            state = self.cell(embedded, state)
            logits = self.output(state[0])
            log_probs = F.log_softmax(logits, axis=-1)
            probabilities = np.exp(log_probs.data[0])
            probabilities = probabilities / probabilities.sum()
            if greedy:
                token = int(np.argmax(probabilities))
            else:
                token = int(rng.choice(self.space.num_operations, p=probabilities))
            tokens[step] = token
            log_prob_terms.append(log_probs[0, token])
            entropy += float(-(probabilities * np.log(probabilities + 1e-12)).sum())
            previous = token
        total_log_prob = log_prob_terms[0]
        for term in log_prob_terms[1:]:
            total_log_prob = total_log_prob + term
        candidate = Candidate(tuple(self.space.structures_from_tokens(tokens)))
        return SampledCandidate(candidate=candidate, tokens=tokens, log_prob=total_log_prob, entropy=entropy)

    def sample(self, count: int, rng: Optional[np.random.Generator] = None, greedy: bool = False) -> List[SampledCandidate]:
        """Sample ``count`` candidates independently."""
        if count <= 0:
            raise ValueError("count must be positive")
        return [self.sample_one(rng=rng, greedy=greedy) for _ in range(count)]


class ReinforceUpdater:
    """Policy-gradient updates with an exponential moving-average baseline (Eq. 7)."""

    def __init__(self, controller: ArchitectureController) -> None:
        self.controller = controller
        self.optimizer = Adam(controller.parameters(), lr=controller.config.learning_rate)
        self.baseline: Optional[float] = None
        self._decay = controller.config.baseline_decay
        self._entropy_weight = controller.config.entropy_weight

    def update(self, samples: Sequence[SampledCandidate], rewards: Sequence[float]) -> float:
        """One REINFORCE step; returns the mean reward of the batch."""
        if len(samples) != len(rewards) or not samples:
            raise ValueError("samples and rewards must be non-empty and of equal length")
        mean_reward = float(np.mean(rewards))
        if self.baseline is None:
            self.baseline = mean_reward
        else:
            self.baseline = self._decay * self.baseline + (1.0 - self._decay) * mean_reward

        self.optimizer.zero_grad()
        loss: Optional[Tensor] = None
        for sample, reward in zip(samples, rewards):
            advantage = float(reward) - self.baseline
            term = sample.log_prob * (-advantage)
            if self._entropy_weight:
                term = term - Tensor(self._entropy_weight * sample.entropy)
            loss = term if loss is None else loss + term
        loss = loss * (1.0 / len(samples))
        loss.backward()
        self.optimizer.step()
        return mean_reward
