"""One lifecycle protocol for every scoring-function search algorithm.

Every searcher in :mod:`repro.search` -- ERAS, its ablation variants, AutoSF, random
and Bayes search -- implements the same stepwise :class:`Searcher` protocol:

- :meth:`~Searcher.init_state` builds a fresh :class:`SearchState` for a graph,
- :meth:`~Searcher.run_step` advances the search by one resumable unit of work
  (an ERAS epoch, one AutoSF shortlist round, one random/Bayes candidate batch),
- :meth:`~Searcher.finalize` packages the state into a
  :class:`~repro.search.result.SearchResult`,
- :meth:`~Searcher.state_dict` / :meth:`~Searcher.load_state_dict` serialise the
  state to plain JSON structures, which is what makes checkpoint/resume
  (:mod:`repro.runtime.checkpoint`) work identically for every algorithm.

:meth:`Searcher.search` is the default driver that runs the stepwise loop end to end,
so existing ``searcher.search(graph)`` call sites keep working unchanged.  The driver
also enforces an optional :class:`SearchBudget` -- a uniform stopping rule over steps,
candidate evaluations and wall clock -- which is how the runtime layer grants every
algorithm the *same* budget when comparing them (the fairness requirement behind the
paper's Figure 2 / Table IX efficiency claims).

The module also hosts the JSON helpers shared by the concrete ``state_dict``
implementations (RNG streams, candidates, traces), so the searchers and the runtime
checkpoint format cannot drift apart.
"""

from __future__ import annotations

import abc
import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.kg.graph import KnowledgeGraph
from repro.scoring.structure import BlockStructure
from repro.search.result import Candidate, SearchResult, TracePoint


# ---------------------------------------------------------------------------- state
class SearchState:
    """Base contract of a searcher's mutable state.

    Concrete states are dataclasses owning whatever their algorithm updates between
    steps (supernets, predictors, observation lists, live evaluation pools, ...).
    The protocol only requires four common attributes, which the driver loop and
    :class:`SearchBudget` read uniformly:

    - ``graph`` -- the :class:`~repro.kg.graph.KnowledgeGraph` being searched,
    - ``steps_completed`` -- finished :meth:`Searcher.run_step` calls,
    - ``evaluations`` -- candidate evaluations performed so far,
    - ``elapsed_seconds`` -- cumulative search wall clock across completed steps
      (excluding time spent suspended on disk between checkpoint and resume).
    """

    __slots__ = ()


# ---------------------------------------------------------------------------- budget
@dataclass(frozen=True)
class SearchBudget:
    """Uniform stopping rules enforced by the stepwise driver loop.

    The driver checks the budget *between* steps: a fresh state always gets its first
    step, and a limit reached mid-step stops the search before the next one.  The
    reason string is recorded in ``SearchResult.extras['budget']``.

    Fields
    ------
    max_steps:
        Stop once this many steps completed (default None = unlimited, >= 1).
    max_evaluations:
        Stop once this many candidate evaluations were performed
        (default None = unlimited, >= 1).
    max_seconds:
        Stop once the cumulative search wall clock reaches this many seconds
        (default None = unlimited, > 0).
    """

    max_steps: Optional[int] = None
    max_evaluations: Optional[int] = None
    max_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_steps is not None and self.max_steps < 1:
            raise ValueError("max_steps must be >= 1 (or None for unlimited)")
        if self.max_evaluations is not None and self.max_evaluations < 1:
            raise ValueError("max_evaluations must be >= 1 (or None for unlimited)")
        if self.max_seconds is not None and self.max_seconds <= 0:
            raise ValueError("max_seconds must be positive (or None for unlimited)")

    def exhausted(self, state: SearchState) -> Optional[str]:
        """The reason the budget stops ``state``'s search, or None to keep going."""
        if self.max_steps is not None and state.steps_completed >= self.max_steps:
            return f"step budget reached ({state.steps_completed}/{self.max_steps} steps)"
        if self.max_evaluations is not None and state.evaluations >= self.max_evaluations:
            return (
                f"evaluation budget reached ({state.evaluations}/{self.max_evaluations} evaluations)"
            )
        if self.max_seconds is not None and state.elapsed_seconds >= self.max_seconds:
            return (
                f"wall-clock budget reached ({state.elapsed_seconds:.2f}s of {self.max_seconds}s)"
            )
        return None


# ---------------------------------------------------------------------------- protocol
class Searcher(abc.ABC):
    """The stepwise lifecycle every search algorithm implements.

    ``init_state -> run_step* -> finalize`` is the whole contract; ``state_dict`` /
    ``load_state_dict`` make any in-progress search serialisable, and the default
    :meth:`search` drives the loop (optionally under a :class:`SearchBudget`), so a
    monolithic ``search(graph)`` call and an externally driven stepwise loop are the
    same computation.  Resuming a restored state must be bit-identical to never
    having paused (``tests/test_runtime.py`` enforces this for every registered
    searcher).
    """

    #: Human-readable algorithm name, recorded in results and checkpoints.
    name: str = "Searcher"
    #: The algorithm's configuration dataclass (set by each concrete ``__init__``).
    config: object

    @abc.abstractmethod
    def init_state(self, graph: KnowledgeGraph) -> SearchState:
        """Build a fresh search state for ``graph`` (no search work happens yet)."""

    @abc.abstractmethod
    def run_step(self, state: SearchState) -> None:
        """Advance the search by one resumable step, mutating ``state`` in place."""

    @abc.abstractmethod
    def is_complete(self, state: SearchState) -> bool:
        """True once the algorithm's own schedule has no more steps to run."""

    @abc.abstractmethod
    def finalize(self, state: SearchState) -> SearchResult:
        """Package ``state`` into a result; valid after any number of steps >= 1."""

    @abc.abstractmethod
    def state_dict(self, state: SearchState) -> Dict[str, object]:
        """``state`` as plain JSON structures (consumed by :meth:`load_state_dict`)."""

    @abc.abstractmethod
    def load_state_dict(self, state: SearchState, payload: Dict[str, object]) -> None:
        """Restore a :meth:`state_dict` payload into a freshly initialised ``state``."""

    # ------------------------------------------------------------------ driver
    def search(self, graph: KnowledgeGraph, budget: Optional[SearchBudget] = None) -> SearchResult:
        """Run the search end to end: the stepwise loop behind one call."""
        return self.drive(self.init_state(graph), budget=budget)

    def drive(
        self,
        state: SearchState,
        budget: Optional[SearchBudget] = None,
        on_step: Optional[Callable[[SearchState], None]] = None,
    ) -> SearchResult:
        """The shared driver loop: step until complete or out of budget, then finalize.

        ``on_step`` is invoked after every completed step (the runtime layer hooks
        its checkpoint writes here).  When a budget stops the search early, the
        reason is recorded under ``result.extras['budget']``.
        """
        stopped: Optional[str] = None
        while not self.is_complete(state):
            if budget is not None:
                stopped = budget.exhausted(state)
                if stopped is not None:
                    break
            self.run_step(state)
            if on_step is not None:
                on_step(state)
        result = self.finalize(state)
        if stopped is not None:
            result.extras["budget"] = {
                "stopped": stopped,
                "steps_completed": int(state.steps_completed),
                "evaluations": int(state.evaluations),
            }
        return result


# ---------------------------------------------------------------------------- JSON helpers
def rng_state(rng: np.random.Generator) -> Dict[str, object]:
    """The JSON-able bit-generator state of a NumPy random stream."""
    return rng.bit_generator.state


def restore_rng(rng: np.random.Generator, state: Dict[str, object]) -> None:
    """Restore a stream captured by :func:`rng_state` (in place)."""
    rng.bit_generator.state = state


def structure_to_jsonable(structure: BlockStructure) -> List[List[int]]:
    """A block structure as its nested-list signed entry matrix."""
    return structure.entries.tolist()


def structure_from_jsonable(entries: List[List[int]]) -> BlockStructure:
    """Rebuild a :class:`~repro.scoring.structure.BlockStructure` entry matrix."""
    return BlockStructure(np.asarray(entries, dtype=np.int64))


def candidate_to_jsonable(candidate: Candidate) -> List[List[List[int]]]:
    """A candidate as nested lists: one signed entry matrix per relation group."""
    return [structure_to_jsonable(structure) for structure in candidate.structures]


def candidate_from_jsonable(data: List[List[List[int]]]) -> Candidate:
    """Rebuild a :class:`~repro.search.result.Candidate` from :func:`candidate_to_jsonable`."""
    return Candidate(tuple(structure_from_jsonable(entries) for entries in data))


def trace_to_jsonable(trace: List[TracePoint]) -> List[Dict[str, object]]:
    """A search trace as a list of plain dicts."""
    return [dataclasses.asdict(point) for point in trace]


def trace_from_jsonable(data: List[Dict[str, object]]) -> List[TracePoint]:
    """Rebuild the trace serialised by :func:`trace_to_jsonable`."""
    return [TracePoint(**point) for point in data]
