"""Plugin registry of search algorithms: one name -> factory map for the runtime.

The runtime layer (:class:`~repro.runtime.runner.SearchRunner`, the ``python -m repro
search`` CLI, the bench workloads) never hardcodes searcher classes; it asks this
registry.  Every built-in algorithm registers itself here, and third-party code can
add its own with two lines::

    from repro.search.registry import register_searcher

    register_searcher("my_algo", lambda options, pool: MySearcher(..., pool=pool))

A factory receives a :class:`SearcherOptions` (the CLI-addressable budget knobs) and
an optional :class:`~repro.runtime.evaluation.EvaluationPool`, and returns a
:class:`~repro.search.base.Searcher`.  Once registered, the algorithm gets the whole
runtime for free: ``--searcher my_algo``, ``--workers``, checkpoint/resume,
:class:`~repro.search.base.SearchBudget` enforcement and the bench workloads.

Unknown names raise :class:`ValueError` listing :func:`available_searchers` -- there
is deliberately no fallback searcher.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.search.base import Searcher

#: A searcher factory: ``factory(options, pool) -> Searcher``.
SearcherFactory = Callable[["SearcherOptions", Optional[object]], Searcher]

_REGISTRY: Dict[str, SearcherFactory] = {}


@dataclass(frozen=True)
class SearcherOptions:
    """The budget knobs a factory may consume, CLI-addressable field by field.

    Every field has a sensible default, so ``SearcherOptions()`` builds each searcher
    at its benchmark budget; factories ignore the fields their algorithm has no use
    for (e.g. ``num_candidates`` for ERAS, ``derive_samples`` for AutoSF).

    Fields
    ------
    num_groups:
        N, relation groups of the relation-aware searchers (default 3, >= 1).
    num_blocks:
        M, structure block count shared by every searcher (default 4, >= 2).
    search_epochs:
        Supernet search epochs of the ERAS-family searchers (default 15, >= 1).
    num_candidates:
        Candidate budget of the random / Bayes searchers (default 8, >= 1).
    derive_samples:
        K, ERAS derive-phase samples (default 16, >= 1).
    dim:
        Embedding dimension of the supernet / stand-alone trainings (default 48).
    seed:
        Seed of the search (default 0).
    proxy_epochs:
        Override of the stand-alone per-candidate training epochs used by the
        AutoSF / random / Bayes evaluation proxy (default None: keep each
        algorithm's benchmark budget; >= 1 when set).
    """

    num_groups: int = 3
    num_blocks: int = 4
    search_epochs: int = 15
    num_candidates: int = 8
    derive_samples: int = 16
    dim: int = 48
    seed: int = 0
    proxy_epochs: Optional[int] = None

    def __post_init__(self) -> None:
        if min(self.num_groups, self.search_epochs, self.num_candidates, self.derive_samples) < 1:
            raise ValueError(
                "num_groups, search_epochs, num_candidates and derive_samples must be positive"
            )
        if self.num_blocks < 2:
            raise ValueError("num_blocks must be at least 2")
        if self.dim < 1:
            raise ValueError("dim must be positive")
        if self.proxy_epochs is not None and self.proxy_epochs < 1:
            raise ValueError("proxy_epochs must be >= 1 (or None for the default budget)")


# ---------------------------------------------------------------------------- registry API
def register_searcher(name: str, factory: SearcherFactory, overwrite: bool = False) -> None:
    """Register ``factory`` under ``name`` (lowercase identifier used by ``--searcher``)."""
    if not name or not isinstance(name, str):
        raise ValueError("searcher name must be a non-empty string")
    if not callable(factory):
        raise TypeError(f"factory for {name!r} must be callable")
    if name in _REGISTRY and not overwrite:
        raise ValueError(f"searcher {name!r} is already registered (pass overwrite=True to replace)")
    _REGISTRY[name] = factory


def unregister_searcher(name: str) -> None:
    """Remove a registered searcher (mainly for tests and plugin teardown)."""
    _REGISTRY.pop(name, None)


def available_searchers() -> Tuple[str, ...]:
    """Every registered searcher name, in registration order (built-ins first)."""
    return tuple(_REGISTRY)


def searcher_factory(name: str) -> SearcherFactory:
    """The factory registered under ``name``; unknown names raise listing the options."""
    factory = _REGISTRY.get(name)
    if factory is None:
        raise ValueError(
            f"unknown searcher {name!r}; choose from: {', '.join(available_searchers())}"
        )
    return factory


def create_searcher(
    name: str,
    options: Optional[SearcherOptions] = None,
    pool: Optional[object] = None,
) -> Searcher:
    """Instantiate the searcher registered under ``name``.

    ``options`` defaults to :class:`SearcherOptions`'s benchmark budgets; ``pool`` is
    the shared :class:`~repro.runtime.evaluation.EvaluationPool` (None scores serially
    in-process through the identical code path).
    """
    return searcher_factory(name)(options or SearcherOptions(), pool)


# ---------------------------------------------------------------------------- built-ins
# The quick_* budget presets live in repro.bench.workloads, which imports repro.search;
# importing them lazily inside the factories keeps the module graph acyclic.
def _eras_config(options: SearcherOptions, num_groups: int):
    from repro.bench.workloads import quick_eras_config

    return dataclasses.replace(
        quick_eras_config(
            num_groups=num_groups,
            num_blocks=options.num_blocks,
            epochs=options.search_epochs,
            dim=options.dim,
            seed=options.seed,
        ),
        derive_samples=options.derive_samples,
    )


def _with_proxy_trainer(config, options: SearcherOptions):
    if options.proxy_epochs is None:
        return config
    trainer = dataclasses.replace(config.trainer, epochs=options.proxy_epochs)
    return dataclasses.replace(config, trainer=trainer)


def _build_eras(options: SearcherOptions, pool) -> Searcher:
    from repro.search.eras import ERASSearcher

    return ERASSearcher(_eras_config(options, options.num_groups), pool=pool)


def _build_eras_n1(options: SearcherOptions, pool) -> Searcher:
    from repro.search.variants import eras_n1

    return eras_n1(_eras_config(options, num_groups=1), pool=pool)


def _build_eras_diff(options: SearcherOptions, pool) -> Searcher:
    from repro.search.variants import ERASDifferentiableSearcher

    return ERASDifferentiableSearcher(_eras_config(options, options.num_groups), pool=pool)


def _build_autosf(options: SearcherOptions, pool) -> Searcher:
    from repro.bench.workloads import quick_autosf_config
    from repro.search.autosf import AutoSFSearcher

    config = dataclasses.replace(
        quick_autosf_config(seed=options.seed),
        num_blocks=options.num_blocks,
        embedding_dim=options.dim,
    )
    return AutoSFSearcher(_with_proxy_trainer(config, options), pool=pool)


def _build_random(options: SearcherOptions, pool) -> Searcher:
    from repro.bench.workloads import quick_random_config
    from repro.search.random_search import RandomSearcher

    config = dataclasses.replace(
        quick_random_config(num_candidates=options.num_candidates, seed=options.seed),
        num_blocks=options.num_blocks,
        embedding_dim=options.dim,
    )
    return RandomSearcher(_with_proxy_trainer(config, options), pool=pool)


def _build_bayes(options: SearcherOptions, pool) -> Searcher:
    from repro.bench.workloads import quick_bayes_config
    from repro.search.bayes_search import BayesSearcher

    config = dataclasses.replace(
        quick_bayes_config(num_candidates=options.num_candidates, seed=options.seed),
        num_blocks=options.num_blocks,
        embedding_dim=options.dim,
    )
    return BayesSearcher(_with_proxy_trainer(config, options), pool=pool)


register_searcher("eras", _build_eras)
register_searcher("eras_n1", _build_eras_n1)
register_searcher("eras_diff", _build_eras_diff)
register_searcher("autosf", _build_autosf)
register_searcher("random", _build_random)
register_searcher("bayes", _build_bayes)
