"""Bayesian-optimisation baseline (a TPE-style sampler, after Bergstra et al., 2013).

The paper compares ERAS against "the Bayes algorithm" (HyperOpt).  This implementation
follows the Tree-structured Parzen Estimator idea specialised to the categorical token
encoding of the structure space: observed candidates are split into a good and a bad set
by their validation MRR, per-token categorical densities l(token) and g(token) are
estimated with Laplace smoothing, and new candidates are chosen among samples from l to
maximise the density ratio l/g.  Each selected candidate is trained stand-alone.

The searcher implements the shared stepwise :class:`~repro.search.base.Searcher`
protocol: step 0 trains the uniformly random warm-up batch (mutually independent, so
it fans out over the pool), and every later step makes one TPE suggestion and trains
it -- the inherently sequential part of the algorithm.  Any step boundary can be
checkpointed and resumed bit-identically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.kg.graph import KnowledgeGraph
from repro.models.trainer import TrainerConfig
from repro.scoring.structure import BlockStructure
from repro.search.base import (
    Searcher,
    SearchState,
    restore_rng,
    rng_state,
    trace_from_jsonable,
    trace_to_jsonable,
)
from repro.search.result import Candidate, SearchResult, TracePoint
from repro.search.space import RelationAwareSearchSpace
from repro.utils.rng import new_rng


@dataclass
class BayesSearchConfig:
    """Hyper-parameters of the TPE-style baseline.

    Fields
    ------
    num_blocks:
        M, the block count of every structure (default 4, >= 2).
    num_candidates:
        Total structures evaluated, warm-up included (default 10, >= 1).
    initial_random:
        Uniformly sampled warm-up candidates evaluated before the TPE suggestions
        start; they are mutually independent and run in parallel through the pool
        (default 4, >= 1).
    good_fraction:
        Fraction of observations forming the "good" density l of the TPE split
        (default 0.3, in (0, 1)).
    candidates_per_step:
        Samples drawn from l per suggestion, scored by the density ratio l/g
        (default 16, >= 1).
    embedding_dim:
        Embedding dimension of the stand-alone candidate trainings (default 32).
    trainer:
        :class:`~repro.models.trainer.TrainerConfig` of the per-candidate training runs.
    seed:
        Base seed; candidate ``i`` initialises its model with ``seed + i`` (default 0).
    """

    num_blocks: int = 4
    num_candidates: int = 10
    initial_random: int = 4
    good_fraction: float = 0.3
    candidates_per_step: int = 16
    embedding_dim: int = 32
    trainer: TrainerConfig = field(default_factory=lambda: TrainerConfig(epochs=15, valid_every=5, patience=2))
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_candidates < 1 or self.initial_random < 1:
            raise ValueError("num_candidates and initial_random must be positive")
        if not 0.0 < self.good_fraction < 1.0:
            raise ValueError("good_fraction must be in (0, 1)")


@dataclass
class BayesSearchState(SearchState):
    """Mutable state of an in-progress Bayes search.

    Fields
    ------
    graph:
        The dataset being searched.
    rng:
        The search-level random stream (warm-up sampling and TPE suggestions).
    pool:
        Live :class:`~repro.runtime.evaluation.EvaluationPool` the stand-alone
        trainings fan out over (rebuilt by ``init_state``; never serialised).
    shared:
        The pool's shared payload (graph + trainer budget; never serialised).
    fingerprint:
        Content identity of ``graph`` used in the stand-alone cache keys.
    observations:
        Observed ``(token sequence, validation MRR)`` pairs, in evaluation order.
    steps_completed:
        Finished protocol steps (step 0 = warm-up batch, then one TPE suggestion each).
    evaluations:
        Stand-alone trainings performed so far (``len(observations)``).
    elapsed_seconds:
        Cumulative search wall clock across completed steps.
    trace:
        Search-progress points, one per trained candidate.
    """

    graph: KnowledgeGraph
    rng: np.random.Generator
    pool: "EvaluationPool"
    shared: Dict[str, object]
    fingerprint: Tuple
    observations: List[Tuple[np.ndarray, float]] = field(default_factory=list)
    steps_completed: int = 0
    evaluations: int = 0
    elapsed_seconds: float = 0.0
    trace: List[TracePoint] = field(default_factory=list)


class BayesSearcher(Searcher):
    """TPE-style categorical Bayesian optimisation over the task-aware structure space."""

    name = "Bayes"

    def __init__(self, config: Optional[BayesSearchConfig] = None, pool: Optional["EvaluationPool"] = None) -> None:
        self.config = config or BayesSearchConfig()
        self._space = RelationAwareSearchSpace(num_blocks=self.config.num_blocks, num_groups=1)
        self._pool = pool

    # ------------------------------------------------------------------ protocol
    def init_state(self, graph: KnowledgeGraph) -> BayesSearchState:
        """Fresh state: RNG plus the pooled stand-alone evaluator."""
        from repro.runtime.evaluation import EvaluationPool, graph_fingerprint, standalone_shared_payload

        pool = self._pool if self._pool is not None else EvaluationPool(n_workers=1)
        return BayesSearchState(
            graph=graph,
            rng=new_rng(self.config.seed),
            pool=pool,
            shared=standalone_shared_payload(graph, self.config.trainer, self.config.embedding_dim),
            fingerprint=graph_fingerprint(graph),
        )

    @property
    def _warmup(self) -> int:
        return min(self.config.initial_random, self.config.num_candidates)

    def run_step(self, state: BayesSearchState) -> None:
        """Step 0 trains the warm-up batch in parallel; every later step makes one
        TPE suggestion (falling back to uniform sampling under two observations)."""
        started = time.perf_counter()
        if state.steps_completed == 0:
            # Warm-up: the initial uniformly random candidates are mutually independent,
            # so they are sampled up front (same rng order as the serial loop) and
            # trained in parallel.
            batch = [self._random_tokens(state.rng) for _ in range(self._warmup)]
            self._evaluate_batch(state, batch, first_index=0, step_started=started)
        else:
            index = self._warmup + state.steps_completed - 1
            if len(state.observations) < 2:
                tokens = self._random_tokens(state.rng)
            else:
                tokens = self._suggest(state.observations, state.rng)
            self._evaluate_batch(state, [tokens], first_index=index, step_started=started)
        state.steps_completed += 1
        state.elapsed_seconds += time.perf_counter() - started

    def is_complete(self, state: BayesSearchState) -> bool:
        """Done after the warm-up step plus one step per remaining candidate."""
        return state.steps_completed >= 1 + self.config.num_candidates - self._warmup

    def finalize(self, state: BayesSearchState) -> SearchResult:
        """Package the best observation so far (valid after any step >= 1)."""
        if not state.observations:
            raise RuntimeError("Bayes search cannot finalize before any candidate was evaluated")
        best_tokens, best_mrr = max(state.observations, key=lambda item: item[1])
        best_structure = self._space.structures_from_tokens(best_tokens)[0]
        return SearchResult(
            searcher=self.name,
            dataset=state.graph.name,
            best_candidate=Candidate((best_structure,)),
            best_assignment=np.zeros(state.graph.num_relations, dtype=np.int64),
            best_valid_mrr=float(best_mrr),
            search_seconds=state.elapsed_seconds,
            evaluations=len(state.observations),
            trace=state.trace,
        )

    def state_dict(self, state: BayesSearchState) -> Dict[str, object]:
        """Counters, the RNG stream and the ordered (tokens, MRR) observations."""
        return {
            "steps_completed": state.steps_completed,
            "evaluations": state.evaluations,
            "elapsed_seconds": state.elapsed_seconds,
            "rng": rng_state(state.rng),
            "observations": [
                {"tokens": tokens.tolist(), "mrr": float(mrr)} for tokens, mrr in state.observations
            ],
            "trace": trace_to_jsonable(state.trace),
        }

    def load_state_dict(self, state: BayesSearchState, payload: Dict[str, object]) -> None:
        """Restore counters, stream and observations into a fresh state."""
        restore_rng(state.rng, payload["rng"])
        state.observations = [
            (np.asarray(entry["tokens"], dtype=np.int64), float(entry["mrr"]))
            for entry in payload["observations"]
        ]
        state.steps_completed = int(payload["steps_completed"])
        state.evaluations = int(payload["evaluations"])
        state.elapsed_seconds = float(payload["elapsed_seconds"])
        state.trace = trace_from_jsonable(payload["trace"])

    # ------------------------------------------------------------------ internals
    def _evaluate_batch(
        self,
        state: BayesSearchState,
        token_batch: List[np.ndarray],
        first_index: int,
        step_started: float,
    ) -> None:
        """Train a token batch through the pool, one chunk per worker."""
        from repro.runtime.evaluation import standalone_cache_key, train_candidate_standalone

        config = self.config
        # One chunk per worker keeps trace timestamps honest (per candidate when
        # serial, as in the seed's loop) while filling every worker.
        chunk_size = max(state.pool.n_workers, 1)
        for start in range(0, len(token_batch), chunk_size):
            chunk = token_batch[start : start + chunk_size]
            structures = [self._space.structures_from_tokens(tokens)[0] for tokens in chunk]
            payloads = [
                {"structures": [s.entries], "seed": config.seed + first_index + start + offset}
                for offset, s in enumerate(structures)
            ]
            keys = [
                standalone_cache_key(
                    state.fingerprint, config.trainer, config.embedding_dim,
                    config.seed + first_index + start + offset, s,
                )
                for offset, s in enumerate(structures)
            ]
            scores = state.pool.map(train_candidate_standalone, payloads, shared=state.shared, keys=keys)
            for offset, (tokens, mrr) in enumerate(zip(chunk, scores)):
                state.observations.append((tokens, mrr))
                state.evaluations = len(state.observations)
                best = max(score for _, score in state.observations)
                state.trace.append(
                    TracePoint(
                        elapsed_seconds=state.elapsed_seconds + (time.perf_counter() - step_started),
                        evaluations=len(state.observations),
                        valid_mrr=float(best),
                        note=f"candidate {first_index + start + offset}",
                    )
                )

    def _random_tokens(self, rng: np.random.Generator) -> np.ndarray:
        structure = BlockStructure.random(self.config.num_blocks, rng)
        return np.asarray(structure.to_tokens(), dtype=np.int64)

    def _suggest(self, observations: List[Tuple[np.ndarray, float]], rng: np.random.Generator) -> np.ndarray:
        """Sample candidates from the good-density and pick the best l/g ratio."""
        config = self.config
        scores = np.asarray([score for _, score in observations])
        cutoff = np.quantile(scores, 1.0 - config.good_fraction)
        good = [tokens for tokens, score in observations if score >= cutoff]
        bad = [tokens for tokens, score in observations if score < cutoff] or good
        good_density = self._token_density(good)
        bad_density = self._token_density(bad)

        best_tokens, best_ratio = None, -np.inf
        for _ in range(config.candidates_per_step):
            tokens = np.array(
                [rng.choice(self._space.num_operations, p=good_density[v]) for v in range(self._space.token_count)],
                dtype=np.int64,
            )
            structure = self._space.structures_from_tokens(tokens)[0]
            if structure.nonzero_count() == 0:
                continue
            log_ratio = float(
                np.sum(np.log(good_density[np.arange(len(tokens)), tokens] + 1e-12))
                - np.sum(np.log(bad_density[np.arange(len(tokens)), tokens] + 1e-12))
            )
            if log_ratio > best_ratio:
                best_tokens, best_ratio = tokens, log_ratio
        if best_tokens is None:
            best_tokens = self._random_tokens(rng)
        return best_tokens

    def _token_density(self, token_sequences: List[np.ndarray]) -> np.ndarray:
        """Per-position categorical densities with Laplace smoothing, shape (V, ops)."""
        counts = np.ones((self._space.token_count, self._space.num_operations))
        for tokens in token_sequences:
            counts[np.arange(len(tokens)), tokens] += 1.0
        return counts / counts.sum(axis=1, keepdims=True)
