"""Expectation-Maximisation clustering of relation embeddings (Section IV-A, Eq. 5).

The lower-level objective assigns each relation to the group whose centroid is closest to
its embedding (E-step) and re-estimates centroids as cluster means (M-step) -- i.e.
k-means, the hard-assignment EM special case the paper's Eq. (5) describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.utils.rng import SeedLike, new_rng


@dataclass
class ClusteringResult:
    """Assignment vector plus diagnostics of one clustering run."""

    assignment: np.ndarray
    centroids: np.ndarray
    inertia: float
    iterations: int


class EMRelationClustering:
    """Cluster relation embeddings into ``num_groups`` groups."""

    def __init__(self, num_groups: int, max_iterations: int = 25, tolerance: float = 1e-6,
                 seed: SeedLike = 0) -> None:
        if num_groups < 1:
            raise ValueError("num_groups must be at least 1")
        if max_iterations < 1:
            raise ValueError("max_iterations must be at least 1")
        self.num_groups = num_groups
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self._rng = new_rng(seed)

    # ------------------------------------------------------------------ public API
    def fit(self, embeddings: np.ndarray, initial_assignment: Optional[np.ndarray] = None) -> ClusteringResult:
        """Cluster the rows of ``embeddings``; optionally warm-start from a previous assignment."""
        embeddings = np.asarray(embeddings, dtype=np.float64)
        if embeddings.ndim != 2:
            raise ValueError(f"embeddings must be 2-D, got shape {embeddings.shape}")
        num_relations = embeddings.shape[0]
        if self.num_groups == 1 or num_relations <= self.num_groups:
            # Degenerate cases: everything in group 0, or one relation per group.
            assignment = (
                np.zeros(num_relations, dtype=np.int64)
                if self.num_groups == 1
                else np.arange(num_relations, dtype=np.int64) % self.num_groups
            )
            centroids = self._centroids(embeddings, assignment)
            return ClusteringResult(assignment, centroids, self._inertia(embeddings, assignment, centroids), 0)

        centroids = self._initial_centroids(embeddings, initial_assignment)
        assignment = np.zeros(num_relations, dtype=np.int64)
        previous_inertia = np.inf
        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            # E-step: assign each relation to its nearest centroid.
            distances = self._pairwise_sq_distances(embeddings, centroids)
            assignment = distances.argmin(axis=1).astype(np.int64)
            assignment = self._fix_empty_groups(embeddings, assignment)
            # M-step: recompute centroids.
            centroids = self._centroids(embeddings, assignment)
            inertia = self._inertia(embeddings, assignment, centroids)
            if previous_inertia - inertia < self.tolerance:
                break
            previous_inertia = inertia
        return ClusteringResult(assignment, centroids, self._inertia(embeddings, assignment, centroids), iterations)

    def assign(self, embeddings: np.ndarray, initial_assignment: Optional[np.ndarray] = None) -> np.ndarray:
        """Convenience wrapper returning only the assignment vector."""
        return self.fit(embeddings, initial_assignment=initial_assignment).assignment

    # ------------------------------------------------------------------ internals
    def _initial_centroids(self, embeddings: np.ndarray, initial_assignment: Optional[np.ndarray]) -> np.ndarray:
        if initial_assignment is not None:
            initial_assignment = np.asarray(initial_assignment, dtype=np.int64)
            if initial_assignment.shape == (embeddings.shape[0],) and initial_assignment.max(initial=0) < self.num_groups:
                return self._centroids(embeddings, initial_assignment)
        chosen = self._rng.choice(embeddings.shape[0], size=self.num_groups, replace=False)
        return embeddings[chosen].copy()

    def _centroids(self, embeddings: np.ndarray, assignment: np.ndarray) -> np.ndarray:
        centroids = np.zeros((self.num_groups, embeddings.shape[1]))
        for group in range(self.num_groups):
            members = embeddings[assignment == group]
            if len(members):
                centroids[group] = members.mean(axis=0)
            else:
                centroids[group] = embeddings[self._rng.integers(0, embeddings.shape[0])]
        return centroids

    def _fix_empty_groups(self, embeddings: np.ndarray, assignment: np.ndarray) -> np.ndarray:
        """Re-seed empty groups with the points farthest from their current centroid."""
        assignment = assignment.copy()
        for group in range(self.num_groups):
            if np.any(assignment == group):
                continue
            centroids = self._centroids(embeddings, assignment)
            distances = self._pairwise_sq_distances(embeddings, centroids)
            current = distances[np.arange(len(assignment)), assignment]
            victim = int(np.argmax(current))
            assignment[victim] = group
        return assignment

    @staticmethod
    def _pairwise_sq_distances(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
        differences = points[:, None, :] - centroids[None, :, :]
        return np.einsum("ijk,ijk->ij", differences, differences)

    @staticmethod
    def _inertia(embeddings: np.ndarray, assignment: np.ndarray, centroids: np.ndarray) -> float:
        differences = embeddings - centroids[assignment]
        return float(np.sum(differences * differences))
