"""The relation-aware search space F_e (Definition 2 of the paper).

A point of the space is a *candidate*: one :class:`BlockStructure` per relation group.
With ``M`` blocks and ``N`` groups a candidate is encoded as ``V = N * M^2`` operation
tokens (group-major, then row-major inside each group), each token drawn from the
operation set ``O`` of size ``2M + 1``; the space size is ``(2M+1)^(N*M^2)`` versus
``(2M+1)^(M^2)`` for the task-aware AutoSF space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.scoring.operations import OperationSet
from repro.scoring.structure import BlockStructure


@dataclass(frozen=True)
class RelationAwareSearchSpace:
    """Search-space geometry: number of blocks M and relation groups N.

    ``max_items_per_structure`` optionally caps the number of non-zero multiplicative
    items of every searched structure (a budget in the AutoSF sense); candidates
    exceeding it are treated as violating the prior encoded in the search (Section
    IV-B2) and receive reward 0.
    """

    num_blocks: int = 4
    num_groups: int = 3
    max_items_per_structure: int | None = None

    def __post_init__(self) -> None:
        if self.num_blocks < 1:
            raise ValueError("num_blocks must be at least 1")
        if self.num_groups < 1:
            raise ValueError("num_groups must be at least 1")
        if self.max_items_per_structure is not None and self.max_items_per_structure < self.num_blocks:
            raise ValueError("max_items_per_structure must be at least num_blocks")

    # ------------------------------------------------------------------ geometry
    @property
    def operation_set(self) -> OperationSet:
        return OperationSet(self.num_blocks)

    @property
    def tokens_per_structure(self) -> int:
        """M^2 multiplicative-item decisions per group."""
        return self.num_blocks * self.num_blocks

    @property
    def token_count(self) -> int:
        """Total decisions V = N * M^2 of a candidate."""
        return self.num_groups * self.tokens_per_structure

    @property
    def num_operations(self) -> int:
        """Size of the operation vocabulary, 2M + 1."""
        return self.operation_set.size

    def log10_size(self) -> float:
        """log10 of the number of candidates, ``(2M+1)^(N*M^2)``."""
        return self.token_count * np.log10(self.num_operations)

    # ------------------------------------------------------------------ encodings
    def structures_from_tokens(self, tokens: Sequence[int]) -> List[BlockStructure]:
        """Decode a flat token sequence into one structure per group."""
        tokens = list(int(t) for t in tokens)
        if len(tokens) != self.token_count:
            raise ValueError(f"expected {self.token_count} tokens, got {len(tokens)}")
        per_structure = self.tokens_per_structure
        return [
            BlockStructure.from_tokens(tokens[g * per_structure : (g + 1) * per_structure], self.num_blocks)
            for g in range(self.num_groups)
        ]

    def tokens_from_structures(self, structures: Sequence[BlockStructure]) -> List[int]:
        """Inverse of :meth:`structures_from_tokens`."""
        structures = list(structures)
        if len(structures) != self.num_groups:
            raise ValueError(f"expected {self.num_groups} structures, got {len(structures)}")
        tokens: List[int] = []
        for structure in structures:
            if structure.num_blocks != self.num_blocks:
                raise ValueError(
                    f"structure has {structure.num_blocks} blocks, space expects {self.num_blocks}"
                )
            tokens.extend(structure.to_tokens())
        return tokens

    # ------------------------------------------------------------------ sampling & constraints
    def random_candidate(self, rng: np.random.Generator, nonzero_fraction: float = 0.45) -> List[BlockStructure]:
        """One random structure per group, each satisfying the exploitative constraint."""
        return [
            BlockStructure.random(self.num_blocks, rng, nonzero_fraction=nonzero_fraction)
            for _ in range(self.num_groups)
        ]

    def satisfies_exploitative_constraint(self, structures: Sequence[BlockStructure]) -> bool:
        """Section IV-B2: every relation block must appear in every searched structure.

        When ``max_items_per_structure`` is set, structures with more non-zero items than
        the budget also violate the constraint.  Violating candidates receive reward 0
        during the RL search.
        """
        for structure in structures:
            if not structure.uses_all_relation_blocks():
                return False
            if (
                self.max_items_per_structure is not None
                and structure.nonzero_count() > self.max_items_per_structure
            ):
                return False
        return True

    def task_aware(self) -> "RelationAwareSearchSpace":
        """The AutoSF-style space with a single group (used by ERAS_N=1)."""
        return RelationAwareSearchSpace(
            num_blocks=self.num_blocks,
            num_groups=1,
            max_items_per_structure=self.max_items_per_structure,
        )
