"""Scoring-function search.

This package contains the paper's contribution and everything it is compared against,
all implemented as plugins of one stepwise lifecycle:

* :class:`~repro.search.base.Searcher` -- the shared protocol
  (``init_state -> run_step* -> finalize`` plus ``state_dict``/``load_state_dict``
  and :class:`~repro.search.base.SearchBudget` enforcement) every algorithm follows.
* :mod:`~repro.search.registry` -- the name -> factory plugin registry the runtime
  layer builds searchers through (``register_searcher`` / ``available_searchers``).
* :class:`~repro.search.eras.ERASSearcher` -- the relation-aware one-shot search
  (Algorithm 2): shared-embedding supernet, EM relation clustering, REINFORCE controller.
* :class:`~repro.search.autosf.AutoSFSearcher` -- the progressive greedy baseline
  (Algorithm 1) with a learned performance predictor.
* :class:`~repro.search.random_search.RandomSearcher` and
  :class:`~repro.search.bayes_search.BayesSearcher` -- the AutoML baselines of Figure 2.
* :mod:`~repro.search.variants` -- the ablation variants of Table XI
  (ERAS_N=1, ERAS_los, ERAS_dif, ERAS_sig, ERAS_pde, ERAS_smt).
"""

from repro.search.base import Searcher, SearchBudget, SearchState
from repro.search.space import RelationAwareSearchSpace
from repro.search.result import Candidate, SearchResult, TracePoint
from repro.search.supernet import SharedEmbeddingSupernet, SupernetConfig
from repro.search.controller import ArchitectureController, ControllerConfig
from repro.search.clustering import EMRelationClustering
from repro.search.eras import ERASConfig, ERASSearcher
from repro.search.autosf import AutoSFConfig, AutoSFSearcher
from repro.search.random_search import RandomSearchConfig, RandomSearcher
from repro.search.bayes_search import BayesSearchConfig, BayesSearcher
from repro.search.predictor import StructurePerformancePredictor
from repro.search.registry import (
    SearcherOptions,
    available_searchers,
    create_searcher,
    register_searcher,
    searcher_factory,
    unregister_searcher,
)
from repro.search import variants

__all__ = [
    "Searcher",
    "SearchBudget",
    "SearchState",
    "RelationAwareSearchSpace",
    "Candidate",
    "SearchResult",
    "TracePoint",
    "SharedEmbeddingSupernet",
    "SupernetConfig",
    "ArchitectureController",
    "ControllerConfig",
    "EMRelationClustering",
    "ERASConfig",
    "ERASSearcher",
    "AutoSFConfig",
    "AutoSFSearcher",
    "RandomSearchConfig",
    "RandomSearcher",
    "BayesSearchConfig",
    "BayesSearcher",
    "StructurePerformancePredictor",
    "SearcherOptions",
    "available_searchers",
    "create_searcher",
    "register_searcher",
    "searcher_factory",
    "unregister_searcher",
    "variants",
]
