"""AutoSF: progressive greedy search of task-aware scoring functions (Algorithm 1).

This is the strongest published baseline the paper compares against.  The searcher is
*stand-alone*: every candidate it wants to evaluate is trained from scratch to
convergence, which is exactly why it is orders of magnitude slower than ERAS (Table IX /
Figure 2) -- the asymmetry this reproduction preserves.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

import numpy as np

from repro.kg.graph import KnowledgeGraph
from repro.models.trainer import TrainerConfig
from repro.scoring.structure import BlockStructure
from repro.search.predictor import StructurePerformancePredictor
from repro.search.result import Candidate, SearchResult, TracePoint
from repro.utils.rng import new_rng


@dataclass
class AutoSFConfig:
    """Hyper-parameters of the greedy search (names follow Algorithm 1).

    Fields
    ------
    num_blocks:
        M, the block count of every structure (default 4, >= 2).
    max_budget:
        B, the maximum number of non-zero multiplicative items (default 6,
        >= ``num_blocks`` -- the diagonal starting structures already use M items).
    num_parents:
        N of Algorithm 1: best structures carried to the next greedy step (default 4, >= 1).
    num_sampled_children:
        N' candidate children sampled per greedy step (default 12, >= 1).
    top_k:
        K children shortlisted by the performance predictor and actually trained per
        greedy step (default 4, >= 1).
    embedding_dim:
        Embedding dimension of the stand-alone candidate trainings (default 32).
    trainer:
        :class:`~repro.models.trainer.TrainerConfig` of the per-candidate training runs.
    seed:
        Seed of the child sampling and candidate model initialisation (default 0).
    """

    num_blocks: int = 4
    max_budget: int = 6
    num_parents: int = 4
    num_sampled_children: int = 12
    top_k: int = 4
    embedding_dim: int = 32
    trainer: TrainerConfig = field(default_factory=lambda: TrainerConfig(epochs=15, valid_every=5, patience=2))
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_blocks < 2:
            raise ValueError("num_blocks must be at least 2")
        if self.max_budget < self.num_blocks:
            raise ValueError("max_budget must be at least num_blocks (the diagonal start)")
        if min(self.num_parents, self.num_sampled_children, self.top_k) < 1:
            raise ValueError("num_parents, num_sampled_children and top_k must be positive")


class AutoSFSearcher:
    """Progressive greedy search with a learned performance predictor."""

    name = "AutoSF"

    def __init__(self, config: Optional[AutoSFConfig] = None, pool: Optional["EvaluationPool"] = None) -> None:
        self.config = config or AutoSFConfig()
        self._pool = pool

    # ------------------------------------------------------------------ public API
    def search(self, graph: KnowledgeGraph) -> SearchResult:
        config = self.config
        rng = new_rng(config.seed)
        predictor = StructurePerformancePredictor()
        trace: List[TracePoint] = []
        evaluated: dict[Tuple[int, ...], float] = {}
        started = time.perf_counter()
        evaluate = self._make_batch_evaluator(graph, evaluated, predictor, trace, started)

        # Budget b = M: the only sensible starting structures are diagonal-like ones that
        # use each relation block exactly once (the paper starts from b=4 with M=4).
        frontier = [BlockStructure.diagonal(config.num_blocks)]
        frontier += [
            self._random_permutation_structure(rng) for _ in range(config.num_parents - 1)
        ]
        evaluate(frontier)

        for budget in range(config.num_blocks + 1, config.max_budget + 1):
            parents = self._best_structures(evaluated, config.num_parents, config.num_blocks)
            children = self._sample_children(parents, rng)
            if not children:
                continue
            evaluate(predictor.rank(children, config.top_k))
            del budget

        best_signature, best_mrr = max(evaluated.items(), key=lambda item: item[1])
        best_structure = BlockStructure(np.asarray(best_signature).reshape(config.num_blocks, config.num_blocks))
        elapsed = time.perf_counter() - started
        return SearchResult(
            searcher=self.name,
            dataset=graph.name,
            best_candidate=Candidate((best_structure,)),
            best_assignment=np.zeros(graph.num_relations, dtype=np.int64),
            best_valid_mrr=float(best_mrr),
            search_seconds=elapsed,
            evaluations=len(evaluated),
            trace=trace,
            extras={"num_blocks": config.num_blocks, "max_budget": config.max_budget},
        )

    # ------------------------------------------------------------------ internals
    def _random_permutation_structure(self, rng: np.random.Generator) -> BlockStructure:
        """A random structure with exactly one item per row/column (budget M, all blocks used)."""
        num_blocks = self.config.num_blocks
        columns = rng.permutation(num_blocks)
        blocks = rng.permutation(num_blocks) + 1
        signs = rng.choice([-1, 1], size=num_blocks)
        entries = np.zeros((num_blocks, num_blocks), dtype=np.int64)
        for row in range(num_blocks):
            entries[row, columns[row]] = signs[row] * blocks[row]
        return BlockStructure(entries)

    def _sample_children(self, parents: List[BlockStructure], rng: np.random.Generator) -> List[BlockStructure]:
        """Step 3 of Algorithm 1: extend parents by one multiplicative item."""
        children: List[BlockStructure] = []
        seen: Set[Tuple[int, ...]] = set()
        attempts = 0
        while len(children) < self.config.num_sampled_children and attempts < 20 * self.config.num_sampled_children:
            attempts += 1
            parent = parents[int(rng.integers(0, len(parents)))]
            free = parent.free_positions()
            if not free:
                continue
            row, column = free[int(rng.integers(0, len(free)))]
            block = int(rng.integers(1, self.config.num_blocks + 1))
            sign = int(rng.choice([-1, 1]))
            child = parent.with_item(row, column, sign * block)
            if child.signature() in seen:
                continue
            seen.add(child.signature())
            children.append(child)
        return children

    def _best_structures(self, evaluated: dict, count: int, num_blocks: int) -> List[BlockStructure]:
        ordered = sorted(evaluated.items(), key=lambda item: -item[1])[:count]
        return [BlockStructure(np.asarray(sig).reshape(num_blocks, num_blocks)) for sig, _ in ordered]

    def _make_batch_evaluator(
        self,
        graph: KnowledgeGraph,
        evaluated: dict,
        predictor: StructurePerformancePredictor,
        trace: List[TracePoint],
        started: float,
    ):
        """Step 5 of Algorithm 1: stand-alone training, batched through the pool.

        Every greedy step trains its shortlisted candidates independently, so they fan
        out over the :class:`~repro.runtime.evaluation.EvaluationPool` workers; the
        pool's cache and the ``evaluated`` memo keep revisited structures free.  The
        returned closure records results in shortlist order, which keeps the search
        trajectory bit-identical to the serial loop for any worker count.
        """
        from repro.runtime.evaluation import (
            EvaluationPool,
            graph_fingerprint,
            standalone_cache_key,
            standalone_shared_payload,
            train_candidate_standalone,
        )

        pool = self._pool if self._pool is not None else EvaluationPool(n_workers=1)
        shared = standalone_shared_payload(graph, self.config.trainer, self.config.embedding_dim)
        fingerprint = graph_fingerprint(graph)
        # One chunk per worker keeps trace timestamps honest (per candidate when
        # serial, as in the seed's loop) while filling every worker.
        chunk_size = max(pool.n_workers, 1)

        def evaluate(structures: List[BlockStructure]) -> None:
            # Dedup within the call too: the seed's serial loop skipped a duplicate
            # before training it, and a colliding random frontier structure must not
            # trigger a second full stand-alone training from another chunk.
            fresh: List[BlockStructure] = []
            seen_here = set()
            for s in structures:
                signature = s.signature()
                if signature in evaluated or signature in seen_here:
                    continue
                seen_here.add(signature)
                fresh.append(s)
            for start in range(0, len(fresh), chunk_size):
                chunk = fresh[start : start + chunk_size]
                payloads = [{"structures": [s.entries], "seed": self.config.seed} for s in chunk]
                keys = [
                    standalone_cache_key(fingerprint, self.config.trainer, self.config.embedding_dim, self.config.seed, s)
                    for s in chunk
                ]
                scores = pool.map(train_candidate_standalone, payloads, shared=shared, keys=keys)
                for structure, mrr in zip(chunk, scores):
                    if structure.signature() in evaluated:
                        continue
                    evaluated[structure.signature()] = mrr
                    predictor.observe(structure, mrr)
                    trace.append(
                        TracePoint(
                            elapsed_seconds=time.perf_counter() - started,
                            evaluations=len(evaluated),
                            valid_mrr=max(evaluated.values()),
                            note=f"budget={structure.nonzero_count()}",
                        )
                    )

        return evaluate
