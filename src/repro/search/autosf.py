"""AutoSF: progressive greedy search of task-aware scoring functions (Algorithm 1).

This is the strongest published baseline the paper compares against.  The searcher is
*stand-alone*: every candidate it wants to evaluate is trained from scratch to
convergence, which is exactly why it is orders of magnitude slower than ERAS (Table IX /
Figure 2) -- the asymmetry this reproduction preserves.

The search implements the shared stepwise :class:`~repro.search.base.Searcher`
protocol: step 0 evaluates the diagonal-like starting structures (budget b = M), and
every following step runs one greedy shortlist round (sample children, rank them with
the performance predictor, train the shortlist) at the next item budget.  Any step
boundary can be checkpointed and resumed bit-identically through
:meth:`AutoSFSearcher.state_dict` / :meth:`~AutoSFSearcher.load_state_dict`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.kg.graph import KnowledgeGraph
from repro.models.trainer import TrainerConfig
from repro.scoring.structure import BlockStructure
from repro.search.base import (
    Searcher,
    SearchState,
    restore_rng,
    rng_state,
    structure_from_jsonable,
    structure_to_jsonable,
    trace_from_jsonable,
    trace_to_jsonable,
)
from repro.search.predictor import StructurePerformancePredictor
from repro.search.result import Candidate, SearchResult, TracePoint
from repro.utils.rng import new_rng


@dataclass
class AutoSFConfig:
    """Hyper-parameters of the greedy search (names follow Algorithm 1).

    Fields
    ------
    num_blocks:
        M, the block count of every structure (default 4, >= 2).
    max_budget:
        B, the maximum number of non-zero multiplicative items (default 6,
        >= ``num_blocks`` -- the diagonal starting structures already use M items).
    num_parents:
        N of Algorithm 1: best structures carried to the next greedy step (default 4, >= 1).
    num_sampled_children:
        N' candidate children sampled per greedy step (default 12, >= 1).
    top_k:
        K children shortlisted by the performance predictor and actually trained per
        greedy step (default 4, >= 1).
    embedding_dim:
        Embedding dimension of the stand-alone candidate trainings (default 32).
    trainer:
        :class:`~repro.models.trainer.TrainerConfig` of the per-candidate training runs.
    seed:
        Seed of the child sampling and candidate model initialisation (default 0).
    """

    num_blocks: int = 4
    max_budget: int = 6
    num_parents: int = 4
    num_sampled_children: int = 12
    top_k: int = 4
    embedding_dim: int = 32
    trainer: TrainerConfig = field(default_factory=lambda: TrainerConfig(epochs=15, valid_every=5, patience=2))
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_blocks < 2:
            raise ValueError("num_blocks must be at least 2")
        if self.max_budget < self.num_blocks:
            raise ValueError("max_budget must be at least num_blocks (the diagonal start)")
        if min(self.num_parents, self.num_sampled_children, self.top_k) < 1:
            raise ValueError("num_parents, num_sampled_children and top_k must be positive")


@dataclass
class AutoSFSearchState(SearchState):
    """Mutable state of an in-progress AutoSF search.

    Fields
    ------
    graph:
        The dataset being searched.
    rng:
        The search-level random stream (frontier sampling and child sampling).
    predictor:
        The learned performance predictor, refit after every observation.
    pool:
        Live :class:`~repro.runtime.evaluation.EvaluationPool` the stand-alone
        trainings fan out over (rebuilt by ``init_state``; never serialised).
    shared:
        The pool's shared payload (graph + trainer budget; never serialised).
    fingerprint:
        Content identity of ``graph`` used in the stand-alone cache keys.
    evaluated:
        Observed ``structure signature -> validation MRR`` map, insertion-ordered.
    steps_completed:
        Finished protocol steps (step 0 = starting frontier, then one greedy round
        per item budget b in ``num_blocks+1 .. max_budget``).
    evaluations:
        Stand-alone trainings performed so far (``len(evaluated)``).
    elapsed_seconds:
        Cumulative search wall clock across completed steps.
    trace:
        Search-progress points, one per trained candidate.
    """

    graph: KnowledgeGraph
    rng: np.random.Generator
    predictor: StructurePerformancePredictor
    pool: "EvaluationPool"
    shared: Dict[str, object]
    fingerprint: Tuple
    evaluated: Dict[Tuple[int, ...], float] = field(default_factory=dict)
    steps_completed: int = 0
    evaluations: int = 0
    elapsed_seconds: float = 0.0
    trace: List[TracePoint] = field(default_factory=list)


class AutoSFSearcher(Searcher):
    """Progressive greedy search with a learned performance predictor."""

    name = "AutoSF"

    def __init__(self, config: Optional[AutoSFConfig] = None, pool: Optional["EvaluationPool"] = None) -> None:
        self.config = config or AutoSFConfig()
        self._pool = pool

    # ------------------------------------------------------------------ protocol
    def init_state(self, graph: KnowledgeGraph) -> AutoSFSearchState:
        """Fresh state: RNG, predictor and the pooled stand-alone evaluator."""
        from repro.runtime.evaluation import EvaluationPool, graph_fingerprint, standalone_shared_payload

        pool = self._pool if self._pool is not None else EvaluationPool(n_workers=1)
        return AutoSFSearchState(
            graph=graph,
            rng=new_rng(self.config.seed),
            predictor=StructurePerformancePredictor(),
            pool=pool,
            shared=standalone_shared_payload(graph, self.config.trainer, self.config.embedding_dim),
            fingerprint=graph_fingerprint(graph),
        )

    def run_step(self, state: AutoSFSearchState) -> None:
        """One unit of Algorithm 1.

        Step 0 evaluates the starting frontier: budget b = M, where the only sensible
        structures are diagonal-like ones using each relation block exactly once (the
        paper starts from b=4 with M=4).  Every later step is one greedy round at the
        next item budget: carry the best parents, sample children extended by one
        multiplicative item, shortlist them with the predictor and train the shortlist.
        """
        config = self.config
        started = time.perf_counter()
        if state.steps_completed == 0:
            frontier = [BlockStructure.diagonal(config.num_blocks)]
            frontier += [
                self._random_permutation_structure(state.rng) for _ in range(config.num_parents - 1)
            ]
            self._evaluate(state, frontier, started)
        else:
            parents = self._best_structures(state.evaluated, config.num_parents, config.num_blocks)
            children = self._sample_children(parents, state.rng)
            if children:
                self._evaluate(state, state.predictor.rank(children, config.top_k), started)
        state.steps_completed += 1
        state.elapsed_seconds += time.perf_counter() - started

    def is_complete(self, state: AutoSFSearchState) -> bool:
        """Done after the frontier step plus one greedy round per item budget."""
        return state.steps_completed >= 1 + self.config.max_budget - self.config.num_blocks

    def finalize(self, state: AutoSFSearchState) -> SearchResult:
        """Package the best structure trained so far (valid after any step >= 1)."""
        if not state.evaluated:
            raise RuntimeError("AutoSF cannot finalize before any candidate was evaluated")
        config = self.config
        best_signature, best_mrr = max(state.evaluated.items(), key=lambda item: item[1])
        best_structure = BlockStructure(np.asarray(best_signature).reshape(config.num_blocks, config.num_blocks))
        return SearchResult(
            searcher=self.name,
            dataset=state.graph.name,
            best_candidate=Candidate((best_structure,)),
            best_assignment=np.zeros(state.graph.num_relations, dtype=np.int64),
            best_valid_mrr=float(best_mrr),
            search_seconds=state.elapsed_seconds,
            evaluations=len(state.evaluated),
            trace=state.trace,
            extras={"num_blocks": config.num_blocks, "max_budget": config.max_budget},
        )

    def state_dict(self, state: AutoSFSearchState) -> Dict[str, object]:
        """Counters, RNG stream and the insertion-ordered observations; the predictor
        is rebuilt from the observations on load (its fit is a pure function of them)."""
        return {
            "steps_completed": state.steps_completed,
            "evaluations": state.evaluations,
            "elapsed_seconds": state.elapsed_seconds,
            "rng": rng_state(state.rng),
            "evaluated": [
                {
                    "entries": structure_to_jsonable(
                        BlockStructure(np.asarray(signature).reshape(self.config.num_blocks, self.config.num_blocks))
                    ),
                    "mrr": float(mrr),
                }
                for signature, mrr in state.evaluated.items()
            ],
            "trace": trace_to_jsonable(state.trace),
        }

    def load_state_dict(self, state: AutoSFSearchState, payload: Dict[str, object]) -> None:
        """Restore counters and observations, replaying them into the predictor."""
        restore_rng(state.rng, payload["rng"])
        state.evaluated = {}
        for entry in payload["evaluated"]:
            structure = structure_from_jsonable(entry["entries"])
            state.evaluated[structure.signature()] = float(entry["mrr"])
            state.predictor.observe(structure, float(entry["mrr"]))
        state.steps_completed = int(payload["steps_completed"])
        state.evaluations = int(payload["evaluations"])
        state.elapsed_seconds = float(payload["elapsed_seconds"])
        state.trace = trace_from_jsonable(payload["trace"])

    # ------------------------------------------------------------------ internals
    def _random_permutation_structure(self, rng: np.random.Generator) -> BlockStructure:
        """A random structure with exactly one item per row/column (budget M, all blocks used)."""
        num_blocks = self.config.num_blocks
        columns = rng.permutation(num_blocks)
        blocks = rng.permutation(num_blocks) + 1
        signs = rng.choice([-1, 1], size=num_blocks)
        entries = np.zeros((num_blocks, num_blocks), dtype=np.int64)
        for row in range(num_blocks):
            entries[row, columns[row]] = signs[row] * blocks[row]
        return BlockStructure(entries)

    def _sample_children(self, parents: List[BlockStructure], rng: np.random.Generator) -> List[BlockStructure]:
        """Step 3 of Algorithm 1: extend parents by one multiplicative item."""
        children: List[BlockStructure] = []
        seen: Set[Tuple[int, ...]] = set()
        attempts = 0
        while len(children) < self.config.num_sampled_children and attempts < 20 * self.config.num_sampled_children:
            attempts += 1
            parent = parents[int(rng.integers(0, len(parents)))]
            free = parent.free_positions()
            if not free:
                continue
            row, column = free[int(rng.integers(0, len(free)))]
            block = int(rng.integers(1, self.config.num_blocks + 1))
            sign = int(rng.choice([-1, 1]))
            child = parent.with_item(row, column, sign * block)
            if child.signature() in seen:
                continue
            seen.add(child.signature())
            children.append(child)
        return children

    def _best_structures(self, evaluated: dict, count: int, num_blocks: int) -> List[BlockStructure]:
        ordered = sorted(evaluated.items(), key=lambda item: -item[1])[:count]
        return [BlockStructure(np.asarray(sig).reshape(num_blocks, num_blocks)) for sig, _ in ordered]

    def _evaluate(self, state: AutoSFSearchState, structures: List[BlockStructure], step_started: float) -> None:
        """Step 5 of Algorithm 1: stand-alone training, batched through the pool.

        Every greedy step trains its shortlisted candidates independently, so they fan
        out over the :class:`~repro.runtime.evaluation.EvaluationPool` workers; the
        pool's cache and the ``evaluated`` memo keep revisited structures free.
        Results are recorded in shortlist order, which keeps the search trajectory
        bit-identical to the serial loop for any worker count.
        """
        from repro.runtime.evaluation import standalone_cache_key, train_candidate_standalone

        config = self.config
        # One chunk per worker keeps trace timestamps honest (per candidate when
        # serial, as in the seed's loop) while filling every worker.
        chunk_size = max(state.pool.n_workers, 1)

        # Dedup within the call too: a colliding random frontier structure must not
        # trigger a second full stand-alone training from another chunk.
        fresh: List[BlockStructure] = []
        seen_here = set()
        for s in structures:
            signature = s.signature()
            if signature in state.evaluated or signature in seen_here:
                continue
            seen_here.add(signature)
            fresh.append(s)
        for start in range(0, len(fresh), chunk_size):
            chunk = fresh[start : start + chunk_size]
            payloads = [{"structures": [s.entries], "seed": config.seed} for s in chunk]
            keys = [
                standalone_cache_key(state.fingerprint, config.trainer, config.embedding_dim, config.seed, s)
                for s in chunk
            ]
            scores = state.pool.map(train_candidate_standalone, payloads, shared=state.shared, keys=keys)
            for structure, mrr in zip(chunk, scores):
                if structure.signature() in state.evaluated:
                    continue
                state.evaluated[structure.signature()] = mrr
                state.evaluations = len(state.evaluated)
                state.predictor.observe(structure, mrr)
                state.trace.append(
                    TracePoint(
                        elapsed_seconds=state.elapsed_seconds + (time.perf_counter() - step_started),
                        evaluations=len(state.evaluated),
                        valid_mrr=max(state.evaluated.values()),
                        note=f"budget={structure.nonzero_count()}",
                    )
                )
