"""Random search baseline (Li & Talwalkar, 2019), compared against in Figure 2.

Candidates are drawn uniformly from the task-aware space and, like AutoSF, each one is
trained stand-alone -- random search therefore shares AutoSF's cost per evaluation but
lacks its greedy guidance.

The searcher implements the shared stepwise :class:`~repro.search.base.Searcher`
protocol: all candidates are sampled up front (consuming the RNG exactly as the
original serial loop did), and every step trains one batch of them -- one candidate
per pool worker -- so the search can pause, checkpoint and resume at any batch
boundary without changing the outcome.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.kg.graph import KnowledgeGraph
from repro.models.trainer import TrainerConfig
from repro.scoring.structure import BlockStructure
from repro.search.base import (
    Searcher,
    SearchState,
    structure_from_jsonable,
    structure_to_jsonable,
    trace_from_jsonable,
    trace_to_jsonable,
)
from repro.search.result import Candidate, SearchResult, TracePoint
from repro.utils.rng import new_rng


@dataclass
class RandomSearchConfig:
    """Hyper-parameters of the random search baseline.

    Fields
    ------
    num_blocks:
        M, the block count of every sampled structure (default 4, >= 2).
    num_candidates:
        How many structures to sample and train stand-alone (default 10, >= 1).
    embedding_dim:
        Embedding dimension of the stand-alone candidate trainings (default 32).
    nonzero_fraction:
        Expected fraction of non-zero entries in a sampled structure (default 0.45,
        in (0, 1]).
    trainer:
        :class:`~repro.models.trainer.TrainerConfig` of the per-candidate training runs.
    seed:
        Base seed; candidate ``i`` initialises its model with ``seed + i`` (default 0).
    """

    num_blocks: int = 4
    num_candidates: int = 10
    embedding_dim: int = 32
    nonzero_fraction: float = 0.45
    trainer: TrainerConfig = field(default_factory=lambda: TrainerConfig(epochs=15, valid_every=5, patience=2))
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_candidates < 1:
            raise ValueError("num_candidates must be positive")
        if self.num_blocks < 2:
            raise ValueError("num_blocks must be at least 2")


@dataclass
class RandomSearchState(SearchState):
    """Mutable state of an in-progress random search.

    Fields
    ------
    graph:
        The dataset being searched.
    selected:
        The de-duplicated ``(candidate index, structure)`` pairs sampled up front;
        fixed for the whole search.
    pool:
        Live :class:`~repro.runtime.evaluation.EvaluationPool` the stand-alone
        trainings fan out over (rebuilt by ``init_state``; never serialised).
    shared:
        The pool's shared payload (graph + trainer budget; never serialised).
    fingerprint:
        Content identity of ``graph`` used in the stand-alone cache keys.
    position:
        Candidates evaluated so far (the next step starts here).
    best_structure:
        Best structure observed so far (None before the first step).
    best_mrr:
        Validation MRR of ``best_structure`` (-inf before the first step).
    steps_completed:
        Finished protocol steps (one candidate batch each).
    evaluations:
        Stand-alone trainings performed so far (equals ``position``).
    elapsed_seconds:
        Cumulative search wall clock across completed steps.
    trace:
        Search-progress points, one per trained candidate.
    """

    graph: KnowledgeGraph
    selected: List[Tuple[int, BlockStructure]]
    pool: "EvaluationPool"
    shared: Dict[str, object]
    fingerprint: Tuple
    position: int = 0
    best_structure: Optional[BlockStructure] = None
    best_mrr: float = -np.inf
    steps_completed: int = 0
    evaluations: int = 0
    elapsed_seconds: float = 0.0
    trace: List[TracePoint] = field(default_factory=list)


class RandomSearcher(Searcher):
    """Uniformly sample structures and keep the best stand-alone performer."""

    name = "Random"

    def __init__(self, config: Optional[RandomSearchConfig] = None, pool: Optional["EvaluationPool"] = None) -> None:
        self.config = config or RandomSearchConfig()
        self._pool = pool

    # ------------------------------------------------------------------ protocol
    def init_state(self, graph: KnowledgeGraph) -> RandomSearchState:
        """Sample every candidate up front (consuming the RNG in the same order as
        the original serial loop) -- they are mutually independent, so the steps only
        have to walk the list."""
        from repro.runtime.evaluation import EvaluationPool, graph_fingerprint, standalone_shared_payload

        config = self.config
        rng = new_rng(config.seed)
        seen = set()
        selected: List[Tuple[int, BlockStructure]] = []
        for index in range(config.num_candidates):
            structure = BlockStructure.random(config.num_blocks, rng, nonzero_fraction=config.nonzero_fraction)
            if structure.signature() in seen:
                continue
            seen.add(structure.signature())
            selected.append((index, structure))

        pool = self._pool if self._pool is not None else EvaluationPool(n_workers=1)
        return RandomSearchState(
            graph=graph,
            selected=selected,
            pool=pool,
            shared=standalone_shared_payload(graph, config.trainer, config.embedding_dim),
            fingerprint=graph_fingerprint(graph),
        )

    def run_step(self, state: RandomSearchState) -> None:
        """Train one batch of candidates -- one per pool worker -- through the pool."""
        from repro.runtime.evaluation import standalone_cache_key, train_candidate_standalone

        config = self.config
        started = time.perf_counter()
        # One chunk per worker keeps trace timestamps honest (per candidate when
        # serial, as in the seed's loop) while every worker still stays busy.
        chunk_size = max(state.pool.n_workers, 1)
        chunk = state.selected[state.position : state.position + chunk_size]
        payloads = [{"structures": [s.entries], "seed": config.seed + index} for index, s in chunk]
        keys = [
            standalone_cache_key(state.fingerprint, config.trainer, config.embedding_dim, config.seed + index, s)
            for index, s in chunk
        ]
        scores = state.pool.map(train_candidate_standalone, payloads, shared=state.shared, keys=keys)
        for (index, structure), mrr in zip(chunk, scores):
            state.position += 1
            if mrr > state.best_mrr:
                state.best_structure, state.best_mrr = structure, mrr
            state.trace.append(
                TracePoint(
                    elapsed_seconds=state.elapsed_seconds + (time.perf_counter() - started),
                    evaluations=state.position,
                    valid_mrr=float(state.best_mrr),
                    note=f"candidate {index}",
                )
            )
        state.evaluations = state.position
        state.steps_completed += 1
        state.elapsed_seconds += time.perf_counter() - started

    def is_complete(self, state: RandomSearchState) -> bool:
        """Done once every sampled candidate has been trained."""
        return state.position >= len(state.selected)

    def finalize(self, state: RandomSearchState) -> SearchResult:
        """Package the best candidate trained so far (valid after any step >= 1)."""
        if state.best_structure is None:
            raise RuntimeError("random search cannot finalize before any candidate was evaluated")
        return SearchResult(
            searcher=self.name,
            dataset=state.graph.name,
            best_candidate=Candidate((state.best_structure,)),
            best_assignment=np.zeros(state.graph.num_relations, dtype=np.int64),
            best_valid_mrr=float(state.best_mrr),
            search_seconds=state.elapsed_seconds,
            evaluations=state.position,
            trace=state.trace,
        )

    def state_dict(self, state: RandomSearchState) -> Dict[str, object]:
        """The sampled candidate list, walk position, incumbent and counters."""
        return {
            "steps_completed": state.steps_completed,
            "evaluations": state.evaluations,
            "elapsed_seconds": state.elapsed_seconds,
            "position": state.position,
            "selected": [
                {"index": index, "entries": structure_to_jsonable(structure)}
                for index, structure in state.selected
            ],
            "best": (
                None
                if state.best_structure is None
                else {"entries": structure_to_jsonable(state.best_structure), "mrr": float(state.best_mrr)}
            ),
            "trace": trace_to_jsonable(state.trace),
        }

    def load_state_dict(self, state: RandomSearchState, payload: Dict[str, object]) -> None:
        """Restore the candidate list (as saved, not resampled) and the walk position."""
        state.selected = [
            (int(entry["index"]), structure_from_jsonable(entry["entries"]))
            for entry in payload["selected"]
        ]
        best = payload["best"]
        if best is None:
            state.best_structure, state.best_mrr = None, -np.inf
        else:
            state.best_structure = structure_from_jsonable(best["entries"])
            state.best_mrr = float(best["mrr"])
        state.position = int(payload["position"])
        state.steps_completed = int(payload["steps_completed"])
        state.evaluations = int(payload["evaluations"])
        state.elapsed_seconds = float(payload["elapsed_seconds"])
        state.trace = trace_from_jsonable(payload["trace"])
