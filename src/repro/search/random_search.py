"""Random search baseline (Li & Talwalkar, 2019), compared against in Figure 2.

Candidates are drawn uniformly from the task-aware space and, like AutoSF, each one is
trained stand-alone -- random search therefore shares AutoSF's cost per evaluation but
lacks its greedy guidance.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.kg.graph import KnowledgeGraph
from repro.models.trainer import TrainerConfig
from repro.scoring.structure import BlockStructure
from repro.search.result import Candidate, SearchResult, TracePoint
from repro.utils.rng import new_rng


@dataclass
class RandomSearchConfig:
    """Hyper-parameters of the random search baseline.

    Fields
    ------
    num_blocks:
        M, the block count of every sampled structure (default 4, >= 2).
    num_candidates:
        How many structures to sample and train stand-alone (default 10, >= 1).
    embedding_dim:
        Embedding dimension of the stand-alone candidate trainings (default 32).
    nonzero_fraction:
        Expected fraction of non-zero entries in a sampled structure (default 0.45,
        in (0, 1]).
    trainer:
        :class:`~repro.models.trainer.TrainerConfig` of the per-candidate training runs.
    seed:
        Base seed; candidate ``i`` initialises its model with ``seed + i`` (default 0).
    """

    num_blocks: int = 4
    num_candidates: int = 10
    embedding_dim: int = 32
    nonzero_fraction: float = 0.45
    trainer: TrainerConfig = field(default_factory=lambda: TrainerConfig(epochs=15, valid_every=5, patience=2))
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_candidates < 1:
            raise ValueError("num_candidates must be positive")
        if self.num_blocks < 2:
            raise ValueError("num_blocks must be at least 2")


class RandomSearcher:
    """Uniformly sample structures and keep the best stand-alone performer."""

    name = "Random"

    def __init__(self, config: Optional[RandomSearchConfig] = None, pool: Optional["EvaluationPool"] = None) -> None:
        self.config = config or RandomSearchConfig()
        self._pool = pool

    def search(self, graph: KnowledgeGraph) -> SearchResult:
        from repro.runtime.evaluation import (
            EvaluationPool,
            graph_fingerprint,
            standalone_cache_key,
            standalone_shared_payload,
            train_candidate_standalone,
        )

        config = self.config
        rng = new_rng(config.seed)
        trace: List[TracePoint] = []
        best_structure: Optional[BlockStructure] = None
        best_mrr = -np.inf
        started = time.perf_counter()
        seen = set()

        # All candidates are independent, so sample them up front (consuming the rng in
        # the same order as the serial loop did) and train them through the pool.
        selected: List[tuple[int, BlockStructure]] = []
        for index in range(config.num_candidates):
            structure = BlockStructure.random(config.num_blocks, rng, nonzero_fraction=config.nonzero_fraction)
            if structure.signature() in seen:
                continue
            seen.add(structure.signature())
            selected.append((index, structure))

        pool = self._pool if self._pool is not None else EvaluationPool(n_workers=1)
        shared = standalone_shared_payload(graph, config.trainer, config.embedding_dim)
        fingerprint = graph_fingerprint(graph)
        payloads = [{"structures": [s.entries], "seed": config.seed + index} for index, s in selected]
        keys = [
            standalone_cache_key(fingerprint, config.trainer, config.embedding_dim, config.seed + index, s)
            for index, s in selected
        ]

        # Evaluate in chunks of one per worker: trace points keep honest per-chunk
        # wall-clock timestamps (per-candidate when serial, as in the seed's loop)
        # while every worker still stays busy.
        chunk_size = max(pool.n_workers, 1)
        position = 0
        for start in range(0, len(selected), chunk_size):
            stop = start + chunk_size
            scores = pool.map(
                train_candidate_standalone, payloads[start:stop], shared=shared, keys=keys[start:stop]
            )
            for (index, structure), mrr in zip(selected[start:stop], scores):
                position += 1
                if mrr > best_mrr:
                    best_structure, best_mrr = structure, mrr
                trace.append(
                    TracePoint(
                        elapsed_seconds=time.perf_counter() - started,
                        evaluations=position,
                        valid_mrr=float(best_mrr),
                        note=f"candidate {index}",
                    )
                )

        assert best_structure is not None
        return SearchResult(
            searcher=self.name,
            dataset=graph.name,
            best_candidate=Candidate((best_structure,)),
            best_assignment=np.zeros(graph.num_relations, dtype=np.int64),
            best_valid_mrr=float(best_mrr),
            search_seconds=time.perf_counter() - started,
            evaluations=len(seen),
            trace=trace,
        )
