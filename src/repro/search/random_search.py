"""Random search baseline (Li & Talwalkar, 2019), compared against in Figure 2.

Candidates are drawn uniformly from the task-aware space and, like AutoSF, each one is
trained stand-alone -- random search therefore shares AutoSF's cost per evaluation but
lacks its greedy guidance.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.kg.graph import KnowledgeGraph
from repro.models.kge import KGEModel
from repro.models.trainer import Trainer, TrainerConfig
from repro.scoring.structure import BlockStructure
from repro.search.result import Candidate, SearchResult, TracePoint
from repro.utils.rng import new_rng


@dataclass
class RandomSearchConfig:
    """Hyper-parameters of the random search baseline."""

    num_blocks: int = 4
    num_candidates: int = 10
    embedding_dim: int = 32
    nonzero_fraction: float = 0.45
    trainer: TrainerConfig = field(default_factory=lambda: TrainerConfig(epochs=15, valid_every=5, patience=2))
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_candidates < 1:
            raise ValueError("num_candidates must be positive")
        if self.num_blocks < 2:
            raise ValueError("num_blocks must be at least 2")


class RandomSearcher:
    """Uniformly sample structures and keep the best stand-alone performer."""

    name = "Random"

    def __init__(self, config: Optional[RandomSearchConfig] = None) -> None:
        self.config = config or RandomSearchConfig()

    def search(self, graph: KnowledgeGraph) -> SearchResult:
        config = self.config
        rng = new_rng(config.seed)
        trace: List[TracePoint] = []
        best_structure: Optional[BlockStructure] = None
        best_mrr = -np.inf
        started = time.perf_counter()
        seen = set()

        for index in range(config.num_candidates):
            structure = BlockStructure.random(config.num_blocks, rng, nonzero_fraction=config.nonzero_fraction)
            if structure.signature() in seen:
                continue
            seen.add(structure.signature())
            model = KGEModel(
                num_entities=graph.num_entities,
                num_relations=graph.num_relations,
                dim=config.embedding_dim,
                scorers=structure,
                seed=config.seed + index,
            )
            result = Trainer(config.trainer).fit(model, graph)
            if result.best_valid_mrr > best_mrr:
                best_structure, best_mrr = structure, result.best_valid_mrr
            trace.append(
                TracePoint(
                    elapsed_seconds=time.perf_counter() - started,
                    evaluations=len(seen),
                    valid_mrr=float(best_mrr),
                    note=f"candidate {index}",
                )
            )

        assert best_structure is not None
        return SearchResult(
            searcher=self.name,
            dataset=graph.name,
            best_candidate=Candidate((best_structure,)),
            best_assignment=np.zeros(graph.num_relations, dtype=np.int64),
            best_valid_mrr=float(best_mrr),
            search_seconds=time.perf_counter() - started,
            evaluations=len(seen),
            trace=trace,
        )
