"""ERAS: Efficient Relation-aware Scoring function Search (Algorithm 2 of the paper).

Each search epoch alternates three updates:

1. **Embeddings** -- for every training mini-batch, sample U candidates from the
   controller and update the *shared* supernet embeddings with the averaged loss (Eq. 9).
2. **Group assignment** -- re-cluster the relation embeddings with EM/k-means (Eq. 5).
3. **Controller** -- sample U candidates, compute their one-shot reward (validation-MRR on
   a mini-batch; 0 if the exploitative constraint is violated) and apply a REINFORCE
   update with a moving-average baseline (Eq. 7).

After the search loop, K candidates are sampled from the trained controller, scored on
the full validation split with the shared embeddings, and the best one is returned (to be
re-trained from scratch by the caller, as the paper does).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.kg.graph import KnowledgeGraph
from repro.search.clustering import EMRelationClustering
from repro.search.controller import ArchitectureController, ControllerConfig, ReinforceUpdater, SampledCandidate
from repro.search.result import Candidate, SearchResult, TracePoint
from repro.search.space import RelationAwareSearchSpace
from repro.search.supernet import SharedEmbeddingSupernet, SupernetConfig
from repro.utils.rng import new_rng


@dataclass
class ERASConfig:
    """Hyper-parameters of the ERAS search (names follow the paper)."""

    num_blocks: int = 4                 # M
    num_groups: int = 3                 # N
    num_samples: int = 2                # U, candidates sampled per update
    controller_steps: int = 1           # REINFORCE updates per embedding mini-batch
    epochs: int = 8                     # passes over the training data during the search
    derive_samples: int = 16            # K, candidates sampled when deriving the final SF
    reward_metric: str = "mrr"          # "mrr" (paper) or "neg_loss" (ERAS_los ablation)
    update_assignment: bool = True      # False reproduces ERAS_pde-style fixed groupings
    controller_on_train: bool = False   # True reproduces the single-level ERAS_sig ablation
    assignment_update_every: int = 4    # run the EM step every this many iterations
    max_items_per_structure: int = 8    # budget prior on non-zero items (None disables)
    derive_top_k: int = 4               # how many top candidates to expose for re-ranking
    anchor_candidates: bool = True      # include literature structures at derive time
    supernet: SupernetConfig = field(default_factory=SupernetConfig)
    controller: ControllerConfig = field(default_factory=ControllerConfig)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_blocks < 2:
            raise ValueError("num_blocks must be at least 2")
        if self.num_groups < 1:
            raise ValueError("num_groups must be at least 1")
        if self.num_samples < 1:
            raise ValueError("num_samples must be at least 1")
        if self.controller_steps < 1:
            raise ValueError("controller_steps must be at least 1")
        if self.epochs < 1:
            raise ValueError("epochs must be at least 1")
        if self.derive_samples < 1:
            raise ValueError("derive_samples must be at least 1")
        if self.assignment_update_every < 1:
            raise ValueError("assignment_update_every must be at least 1")
        if self.reward_metric not in ("mrr", "neg_loss"):
            raise ValueError("reward_metric must be 'mrr' or 'neg_loss'")


class ERASSearcher:
    """Searches relation-aware scoring functions with the one-shot supernet."""

    name = "ERAS"

    def __init__(
        self,
        config: Optional[ERASConfig] = None,
        initial_assignment_fn: Optional[Callable[[KnowledgeGraph], np.ndarray]] = None,
    ) -> None:
        """``initial_assignment_fn`` optionally provides a fixed / semantic initial grouping
        (used by the ERAS_pde and ERAS_smt ablation variants)."""
        self.config = config or ERASConfig()
        self._initial_assignment_fn = initial_assignment_fn

    # ------------------------------------------------------------------ public API
    def search(self, graph: KnowledgeGraph) -> SearchResult:
        """Run Algorithm 2 on ``graph`` and return the best candidate found."""
        config = self.config
        rng = new_rng(config.seed)
        space = RelationAwareSearchSpace(
            num_blocks=config.num_blocks,
            num_groups=config.num_groups,
            max_items_per_structure=config.max_items_per_structure,
        )
        supernet = SharedEmbeddingSupernet(graph, num_groups=config.num_groups, config=config.supernet)
        controller = ArchitectureController(space, config=config.controller)
        updater = ReinforceUpdater(controller)
        clustering = EMRelationClustering(config.num_groups, seed=int(rng.integers(1 << 31)))

        assignment = self._initial_assignment(graph, clustering, supernet)
        supernet.set_assignment(assignment)

        trace: List[TracePoint] = []
        evaluations = 0
        iteration = 0
        rewards: List[float] = []  # last controller rewards; stays empty on batch-less graphs
        total_iterations = config.epochs * max(1, len(supernet.training_batches(seed=0)))
        memory_start = total_iterations // 2
        reward_memory: dict = {}
        started = time.perf_counter()

        for epoch in range(1, config.epochs + 1):
            # One iteration of Algorithm 2 per training mini-batch: the three parameter
            # families (embeddings, assignment, controller) are alternately updated.
            for batch in supernet.training_batches(seed=int(rng.integers(1 << 31))):
                iteration += 1

                # Steps 2-3: sample candidates and update the shared embeddings (Eq. 9).
                samples = controller.sample(config.num_samples, rng=rng)
                supernet.training_step([s.candidate for s in samples], batch)

                # Step 4: update the relation assignment with EM clustering (Eq. 5).
                if (
                    config.update_assignment
                    and config.num_groups > 1
                    and iteration % config.assignment_update_every == 0
                ):
                    assignment = clustering.assign(supernet.relation_embeddings(), initial_assignment=assignment)
                    supernet.set_assignment(assignment)

                # Steps 5-6: policy-gradient updates of the controller on validation
                # mini-batches (Eq. 7); candidates violating the exploitative constraint
                # receive reward 0.
                for controller_step in range(config.controller_steps):
                    if controller_step > 0:
                        samples = controller.sample(config.num_samples, rng=rng)
                    reward_batch = self._reward_batch(supernet, rng)
                    rewards = [self._reward(supernet, space, sample, reward_batch) for sample in samples]
                    evaluations += len(samples)
                    updater.update(samples, rewards)

                    # Remember the strongest constraint-satisfying candidates from the
                    # second half of the search: the derive step re-scores them on the
                    # full validation split next to freshly sampled candidates.
                    if iteration >= memory_start:
                        for sample, reward in zip(samples, rewards):
                            if reward > 0.0:
                                signature = sample.candidate.signature()
                                best_so_far = reward_memory.get(signature, (-np.inf, None))[0]
                                if reward > best_so_far:
                                    reward_memory[signature] = (reward, sample.candidate)

            trace.append(
                TracePoint(
                    elapsed_seconds=time.perf_counter() - started,
                    evaluations=evaluations,
                    valid_mrr=float(max(rewards)) if rewards and config.reward_metric == "mrr" else 0.0,
                    note=f"epoch {epoch}",
                )
            )

        # Steps 8-12: derive the final scoring functions from the trained controller.
        remembered = [candidate for _, candidate in sorted(reward_memory.values(), key=lambda item: -item[0])[:8]]
        ranked, derive_evals = self._derive(supernet, space, controller, rng, remembered)
        best_candidate, best_mrr = ranked[0]
        evaluations += derive_evals
        elapsed = time.perf_counter() - started
        trace.append(TracePoint(elapsed_seconds=elapsed, evaluations=evaluations, valid_mrr=best_mrr, note="derived"))

        return SearchResult(
            searcher=self.name,
            dataset=graph.name,
            best_candidate=best_candidate,
            best_assignment=assignment.copy(),
            best_valid_mrr=best_mrr,
            search_seconds=elapsed,
            evaluations=evaluations,
            trace=trace,
            extras={
                "num_blocks": self.config.num_blocks,
                "num_groups": self.config.num_groups,
                "supernet_dim": self.config.supernet.dim,
                # Top candidates by one-shot validation MRR, best first.  Callers that can
                # afford it may re-rank these with a short stand-alone training run before
                # the final re-training, which reduces the variance of the one-shot proxy.
                "top_candidates": [candidate for candidate, _ in ranked[: self.config.derive_top_k]],
                "top_candidate_scores": [score for _, score in ranked[: self.config.derive_top_k]],
            },
        )

    # ------------------------------------------------------------------ internals
    def _initial_assignment(
        self,
        graph: KnowledgeGraph,
        clustering: EMRelationClustering,
        supernet: SharedEmbeddingSupernet,
    ) -> np.ndarray:
        if self._initial_assignment_fn is not None:
            assignment = np.asarray(self._initial_assignment_fn(graph), dtype=np.int64)
            if assignment.shape != (graph.num_relations,):
                raise ValueError("initial assignment function returned the wrong shape")
            return np.clip(assignment, 0, self.config.num_groups - 1)
        if self.config.num_groups == 1:
            return np.zeros(graph.num_relations, dtype=np.int64)
        return clustering.assign(supernet.relation_embeddings())

    def _reward_batch(self, supernet: SharedEmbeddingSupernet, rng: np.random.Generator) -> np.ndarray:
        if self.config.controller_on_train:
            # ERAS_sig ablation: single-level optimisation uses training mini-batches.
            train = supernet.graph.train.array
            size = min(supernet.config.valid_batch_size, len(train))
            idx = rng.choice(len(train), size=size, replace=False)
            return train[idx]
        return supernet.sample_validation_batch()

    def _reward(
        self,
        supernet: SharedEmbeddingSupernet,
        space: RelationAwareSearchSpace,
        sample: SampledCandidate,
        batch: np.ndarray,
    ) -> float:
        if not space.satisfies_exploitative_constraint(sample.candidate.structures):
            return 0.0
        return supernet.reward(sample.candidate, batch, metric=self.config.reward_metric)

    def _derive(
        self,
        supernet: SharedEmbeddingSupernet,
        space: RelationAwareSearchSpace,
        controller: ArchitectureController,
        rng: np.random.Generator,
        remembered: Optional[Sequence[Candidate]] = None,
    ) -> tuple[List[tuple[Candidate, float]], int]:
        """Score derive-time candidates with the shared embeddings; best first."""
        samples = controller.sample(self.config.derive_samples, rng=rng)
        candidates = [sample.candidate for sample in samples] + list(remembered or [])
        if self.config.anchor_candidates:
            candidates += self._anchor_candidates(supernet, space)
        scored: List[tuple[Candidate, float]] = []
        seen = set()
        for candidate in candidates:
            signature = candidate.signature()
            if signature in seen or not space.satisfies_exploitative_constraint(candidate.structures):
                continue
            seen.add(signature)
            scored.append((candidate, supernet.one_shot_validation_mrr(candidate)))
        if not scored:
            # Every sample violated the constraint; fall back to the greedy decode or a
            # random constraint-satisfying candidate.
            greedy = controller.sample_one(rng=rng, greedy=True).candidate
            if space.satisfies_exploitative_constraint(greedy.structures):
                fallback = greedy
            else:
                fallback = Candidate(tuple(space.random_candidate(rng)))
            scored.append((fallback, supernet.one_shot_validation_mrr(fallback)))
        scored.sort(key=lambda item: -item[1])
        return scored, len(candidates)

    def _anchor_candidates(
        self, supernet: SharedEmbeddingSupernet, space: RelationAwareSearchSpace
    ) -> List[Candidate]:
        """Literature structures used to anchor the derive-time selection.

        The block search space contains every classic bilinear scoring function (the
        paper's "generalises from human wisdom" property); at the small CPU scale of this
        reproduction the controller does not always rediscover that region within the
        search budget, so the derive step additionally scores (a) every classic used
        uniformly across groups and (b) a greedy per-group mix of classics, all under the
        same one-shot proxy as the controller's own candidates.  See DESIGN.md,
        "Substitutions".
        """
        if self.config.num_blocks != 4:
            return []
        from repro.scoring.classics import CLASSIC_STRUCTURES

        classics = list(CLASSIC_STRUCTURES.values())
        anchors = [Candidate(tuple([classic] * self.config.num_groups)) for classic in classics]
        if self.config.num_groups == 1:
            return anchors
        # Greedy per-group coordinate pass starting from the best uniform anchor.
        best_uniform = max(anchors, key=lambda c: supernet.one_shot_validation_mrr(c))
        current = list(best_uniform.structures)
        for group in range(self.config.num_groups):
            best_structure = current[group]
            best_score = supernet.one_shot_validation_mrr(Candidate(tuple(current)))
            for classic in classics:
                trial = list(current)
                trial[group] = classic
                score = supernet.one_shot_validation_mrr(Candidate(tuple(trial)))
                if score > best_score:
                    best_structure, best_score = classic, score
            current[group] = best_structure
        anchors.append(Candidate(tuple(current)))
        return anchors
