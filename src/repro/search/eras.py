"""ERAS: Efficient Relation-aware Scoring function Search (Algorithm 2 of the paper).

Each search epoch alternates three updates:

1. **Embeddings** -- for every training mini-batch, sample U candidates from the
   controller and update the *shared* supernet embeddings with the averaged loss (Eq. 9).
2. **Group assignment** -- re-cluster the relation embeddings with EM/k-means (Eq. 5).
3. **Controller** -- sample U candidates, compute their one-shot reward (validation-MRR on
   a mini-batch; 0 if the exploitative constraint is violated) and apply a REINFORCE
   update with a moving-average baseline (Eq. 7).

After the search loop, K candidates are sampled from the trained controller, scored on
the full validation split with the shared embeddings, and the best one is returned (to be
re-trained from scratch by the caller, as the paper does).

The searcher implements the shared stepwise :class:`~repro.search.base.Searcher`
protocol (one epoch per step): :meth:`ERASSearcher.search` runs Algorithm 2 end to
end, while :meth:`~ERASSearcher.init_state` / :meth:`~ERASSearcher.run_epoch` /
:meth:`~ERASSearcher.finalize` operate on an explicit :class:`ERASSearchState` so that
the runtime layer (:mod:`repro.runtime`) can checkpoint the search between epochs and
resume it bit-identically.  Derive-phase scorings go through an optional
:class:`~repro.runtime.evaluation.EvaluationPool`, which caches duplicate candidates and
fans the remainder out over worker processes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.kg.graph import KnowledgeGraph
from repro.search.base import (
    Searcher,
    SearchState,
    candidate_from_jsonable,
    candidate_to_jsonable,
    restore_rng,
    rng_state,
    trace_from_jsonable,
    trace_to_jsonable,
)
from repro.search.clustering import EMRelationClustering
from repro.search.controller import ArchitectureController, ControllerConfig, ReinforceUpdater, SampledCandidate
from repro.search.result import Candidate, SearchResult, TracePoint
from repro.search.space import RelationAwareSearchSpace
from repro.search.supernet import SharedEmbeddingSupernet, SupernetConfig
from repro.utils.rng import new_rng


@dataclass
class ERASConfig:
    """Hyper-parameters of the ERAS search (names follow the paper).

    Fields
    ------
    num_blocks:
        M, the block count of every structure; the search space of Section IV-A
        (default 4, >= 2; the paper uses M=4 throughout).
    num_groups:
        N, the number of relation groups of Eq. 5 (default 3, >= 1; N=1 recovers the
        task-aware AutoSF space).
    num_samples:
        U, candidates sampled from the controller per embedding/controller update of
        Eq. 7 and Eq. 9 (default 2, >= 1).
    controller_steps:
        REINFORCE updates per embedding mini-batch (default 1, >= 1).
    epochs:
        Passes over the training data during the search loop of Algorithm 2
        (default 8, >= 1).
    derive_samples:
        K, candidates sampled from the trained controller when deriving the final
        scoring function, Algorithm 2 steps 8-12 (default 16, >= 1).
    reward_metric:
        Controller reward Q: ``"mrr"`` (the paper) or ``"neg_loss"`` (the ERAS_los
        ablation of Table XI).
    update_assignment:
        When False the relation grouping is frozen at its initial value, reproducing
        the ERAS_pde-style ablations (default True).
    controller_on_train:
        When True the controller reward is computed on training mini-batches,
        reproducing the single-level ERAS_sig ablation (default False).
    assignment_update_every:
        Run the EM clustering step (Eq. 5) every this many iterations (default 4, >= 1).
    max_items_per_structure:
        Budget prior on non-zero items per structure, mirroring AutoSF's budget B
        (default 8; None disables the prior).
    derive_top_k:
        How many top derive-time candidates to expose in ``extras['top_candidates']``
        for optional re-ranking by the caller (default 4, >= 1).
    anchor_candidates:
        Include the classic literature structures at derive time (default True; see
        :meth:`ERASSearcher._anchor_candidates`).
    supernet:
        :class:`~repro.search.supernet.SupernetConfig` of the shared embeddings.
    controller:
        :class:`~repro.search.controller.ControllerConfig` of the LSTM policy.
    seed:
        Seed of the search-level random stream (default 0).
    """

    num_blocks: int = 4
    num_groups: int = 3
    num_samples: int = 2
    controller_steps: int = 1
    epochs: int = 8
    derive_samples: int = 16
    reward_metric: str = "mrr"
    update_assignment: bool = True
    controller_on_train: bool = False
    assignment_update_every: int = 4
    max_items_per_structure: int = 8
    derive_top_k: int = 4
    anchor_candidates: bool = True
    supernet: SupernetConfig = field(default_factory=SupernetConfig)
    controller: ControllerConfig = field(default_factory=ControllerConfig)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_blocks < 2:
            raise ValueError("num_blocks must be at least 2")
        if self.num_groups < 1:
            raise ValueError("num_groups must be at least 1")
        if self.num_samples < 1:
            raise ValueError("num_samples must be at least 1")
        if self.controller_steps < 1:
            raise ValueError("controller_steps must be at least 1")
        if self.epochs < 1:
            raise ValueError("epochs must be at least 1")
        if self.derive_samples < 1:
            raise ValueError("derive_samples must be at least 1")
        if self.assignment_update_every < 1:
            raise ValueError("assignment_update_every must be at least 1")
        if self.reward_metric not in ("mrr", "neg_loss"):
            raise ValueError("reward_metric must be 'mrr' or 'neg_loss'")


@dataclass
class ERASSearchState(SearchState):
    """Mutable state of an in-progress ERAS search.

    Everything Algorithm 2 updates between epochs lives here -- the live components
    (supernet, controller, updater, clustering, the search RNG) plus the bookkeeping
    counters -- so the search can be paused after any epoch, serialised to JSON
    (:mod:`repro.runtime.checkpoint`) and resumed bit-identically.

    Fields
    ------
    graph:
        The dataset being searched.
    space:
        The relation-aware search space (fixed for the whole search).
    supernet:
        Shared-embedding supernet holding the one-shot model (Eq. 9).
    controller:
        The LSTM policy over token sequences (Eq. 7).
    updater:
        REINFORCE updater wrapping the controller's Adam optimiser and baseline.
    clustering:
        The EM/k-means relation clustering of Eq. 5.
    rng:
        The search-level random stream; consumed by sampling and the derive phase.
    assignment:
        Current relation-to-group assignment vector, shape ``(num_relations,)``.
    epochs_completed:
        Number of finished search epochs (0 on a fresh state).
    iteration:
        Global mini-batch counter across epochs.
    evaluations:
        One-shot reward evaluations performed so far.
    elapsed_seconds:
        Cumulative search wall clock, excluding time spent suspended on disk.
    memory_start:
        Iteration from which constraint-satisfying candidates are remembered for the
        derive phase (second half of the search).
    trace:
        Search-progress points (Figure 2) recorded once per epoch.
    reward_memory:
        Best remembered reward per candidate signature (insertion-ordered).
    last_rewards:
        Rewards of the most recent controller step (empty on batch-less graphs).
    """

    graph: KnowledgeGraph
    space: RelationAwareSearchSpace
    supernet: SharedEmbeddingSupernet
    controller: ArchitectureController
    updater: ReinforceUpdater
    clustering: EMRelationClustering
    rng: np.random.Generator
    assignment: np.ndarray
    epochs_completed: int = 0
    iteration: int = 0
    evaluations: int = 0
    elapsed_seconds: float = 0.0
    memory_start: int = 0
    trace: List[TracePoint] = field(default_factory=list)
    reward_memory: Dict[tuple, Tuple[float, Candidate]] = field(default_factory=dict)
    last_rewards: List[float] = field(default_factory=list)

    @property
    def steps_completed(self) -> int:
        """Protocol alias: one :meth:`~ERASSearcher.run_step` is one search epoch."""
        return self.epochs_completed


class ERASSearcher(Searcher):
    """Searches relation-aware scoring functions with the one-shot supernet."""

    name = "ERAS"

    def __init__(
        self,
        config: Optional[ERASConfig] = None,
        initial_assignment_fn: Optional[Callable[[KnowledgeGraph], np.ndarray]] = None,
        pool: Optional["EvaluationPool"] = None,
    ) -> None:
        """``initial_assignment_fn`` optionally provides a fixed / semantic initial grouping
        (used by the ERAS_pde and ERAS_smt ablation variants).  ``pool`` optionally
        parallelises and caches the derive-phase scorings; ``None`` scores serially
        in-process with the identical code path."""
        self.config = config or ERASConfig()
        self._initial_assignment_fn = initial_assignment_fn
        self._pool = pool

    # ------------------------------------------------------------------ public API
    def run_step(self, state: ERASSearchState) -> None:
        """Protocol step: one search epoch of Algorithm 2 (see :meth:`run_epoch`)."""
        self.run_epoch(state)

    def is_complete(self, state: ERASSearchState) -> bool:
        """True once every configured search epoch has run."""
        return state.epochs_completed >= self.config.epochs

    def init_state(self, graph: KnowledgeGraph) -> ERASSearchState:
        """Build the supernet, controller and clustering for a fresh search on ``graph``."""
        config = self.config
        rng = new_rng(config.seed)
        space = RelationAwareSearchSpace(
            num_blocks=config.num_blocks,
            num_groups=config.num_groups,
            max_items_per_structure=config.max_items_per_structure,
        )
        supernet = SharedEmbeddingSupernet(graph, num_groups=config.num_groups, config=config.supernet)
        controller = ArchitectureController(space, config=config.controller)
        updater = ReinforceUpdater(controller)
        clustering = EMRelationClustering(config.num_groups, seed=int(rng.integers(1 << 31)))

        assignment = self._initial_assignment(graph, clustering, supernet)
        supernet.set_assignment(assignment)
        total_iterations = config.epochs * max(1, len(supernet.training_batches(seed=0)))
        return ERASSearchState(
            graph=graph,
            space=space,
            supernet=supernet,
            controller=controller,
            updater=updater,
            clustering=clustering,
            rng=rng,
            assignment=assignment,
            memory_start=total_iterations // 2,
        )

    def run_epoch(self, state: ERASSearchState) -> None:
        """One epoch of Algorithm 2: per training mini-batch, alternately update the
        three parameter families (embeddings, assignment, controller)."""
        config = self.config
        rng = state.rng
        supernet, controller = state.supernet, state.controller
        started = time.perf_counter()

        for batch in supernet.training_batches(seed=int(rng.integers(1 << 31))):
            state.iteration += 1

            # Steps 2-3: sample candidates and update the shared embeddings (Eq. 9).
            samples = controller.sample(config.num_samples, rng=rng)
            supernet.training_step([s.candidate for s in samples], batch)

            # Step 4: update the relation assignment with EM clustering (Eq. 5).
            if (
                config.update_assignment
                and config.num_groups > 1
                and state.iteration % config.assignment_update_every == 0
            ):
                state.assignment = state.clustering.assign(
                    supernet.relation_embeddings(), initial_assignment=state.assignment
                )
                supernet.set_assignment(state.assignment)

            # Steps 5-6: policy-gradient updates of the controller on validation
            # mini-batches (Eq. 7); candidates violating the exploitative constraint
            # receive reward 0.
            for controller_step in range(config.controller_steps):
                if controller_step > 0:
                    samples = controller.sample(config.num_samples, rng=rng)
                reward_batch = self._reward_batch(supernet, rng)
                rewards = [self._reward(supernet, state.space, sample, reward_batch) for sample in samples]
                state.last_rewards = rewards
                state.evaluations += len(samples)
                state.updater.update(samples, rewards)

                # Remember the strongest constraint-satisfying candidates from the
                # second half of the search: the derive step re-scores them on the
                # full validation split next to freshly sampled candidates.
                if state.iteration >= state.memory_start:
                    for sample, reward in zip(samples, rewards):
                        if reward > 0.0:
                            signature = sample.candidate.signature()
                            best_so_far = state.reward_memory.get(signature, (-np.inf, None))[0]
                            if reward > best_so_far:
                                state.reward_memory[signature] = (reward, sample.candidate)

        state.epochs_completed += 1
        state.elapsed_seconds += time.perf_counter() - started
        state.trace.append(
            TracePoint(
                elapsed_seconds=state.elapsed_seconds,
                evaluations=state.evaluations,
                valid_mrr=(
                    float(max(state.last_rewards))
                    if state.last_rewards and config.reward_metric == "mrr"
                    else 0.0
                ),
                note=f"epoch {state.epochs_completed}",
            )
        )

    def finalize(self, state: ERASSearchState) -> SearchResult:
        """Steps 8-12 of Algorithm 2: derive the final scoring functions and package
        the :class:`~repro.search.result.SearchResult`."""
        started = time.perf_counter()
        remembered = [
            candidate
            for _, candidate in sorted(state.reward_memory.values(), key=lambda item: -item[0])[:8]
        ]
        ranked, derive_evals = self._derive(state.supernet, state.space, state.controller, state.rng, remembered)
        best_candidate, best_mrr = ranked[0]
        state.evaluations += derive_evals
        state.elapsed_seconds += time.perf_counter() - started
        state.trace.append(
            TracePoint(
                elapsed_seconds=state.elapsed_seconds,
                evaluations=state.evaluations,
                valid_mrr=best_mrr,
                note="derived",
            )
        )

        return SearchResult(
            searcher=self.name,
            dataset=state.graph.name,
            best_candidate=best_candidate,
            best_assignment=state.assignment.copy(),
            best_valid_mrr=best_mrr,
            search_seconds=state.elapsed_seconds,
            evaluations=state.evaluations,
            trace=state.trace,
            extras={
                "num_blocks": self.config.num_blocks,
                "num_groups": self.config.num_groups,
                "supernet_dim": self.config.supernet.dim,
                # Top candidates by one-shot validation MRR, best first.  Callers that can
                # afford it may re-rank these with a short stand-alone training run before
                # the final re-training, which reduces the variance of the one-shot proxy.
                "top_candidates": [candidate for candidate, _ in ranked[: self.config.derive_top_k]],
                "top_candidate_scores": [score for _, score in ranked[: self.config.derive_top_k]],
            },
        )

    # ------------------------------------------------------------------ serialization
    def state_dict(self, state: ERASSearchState) -> Dict[str, object]:
        """Everything Algorithm 2 updates, as plain JSON structures: shared
        embeddings, Adagrad accumulators, controller weights, Adam moments, the
        REINFORCE baseline, every random stream, the reward memory and counters."""
        return {
            "epochs_completed": state.epochs_completed,
            "iteration": state.iteration,
            "evaluations": state.evaluations,
            "elapsed_seconds": state.elapsed_seconds,
            "memory_start": state.memory_start,
            "assignment": state.assignment.tolist(),
            "rng": rng_state(state.rng),
            "supernet": {
                "model": state.supernet.model.state_dict(),
                "optimizer": state.supernet.optimizer.state_dict(),
                "rng": rng_state(state.supernet._rng),
            },
            "controller": {"model": state.controller.state_dict()},
            "updater": {
                "baseline": state.updater.baseline,
                "optimizer": state.updater.optimizer.state_dict(),
            },
            "clustering_rng": rng_state(state.clustering._rng),
            "trace": trace_to_jsonable(state.trace),
            # Insertion order matters: derive-phase ties are broken by it.
            "reward_memory": [
                {"reward": reward, "candidate": candidate_to_jsonable(candidate)}
                for reward, candidate in state.reward_memory.values()
            ],
            "last_rewards": [float(reward) for reward in state.last_rewards],
        }

    def load_state_dict(self, state: ERASSearchState, payload: Dict[str, object]) -> None:
        """Overwrite every piece of mutable state of a fresh ``state`` in place."""
        supernet_payload = payload["supernet"]
        state.supernet.model.load_state_dict(
            {name: np.asarray(value, dtype=np.float64) for name, value in supernet_payload["model"].items()}
        )
        state.supernet.optimizer.load_state_dict(supernet_payload["optimizer"])
        restore_rng(state.supernet._rng, supernet_payload["rng"])
        state.controller.load_state_dict(
            {name: np.asarray(value, dtype=np.float64) for name, value in payload["controller"]["model"].items()}
        )
        baseline = payload["updater"]["baseline"]
        state.updater.baseline = None if baseline is None else float(baseline)
        state.updater.optimizer.load_state_dict(payload["updater"]["optimizer"])
        restore_rng(state.clustering._rng, payload["clustering_rng"])
        restore_rng(state.rng, payload["rng"])

        state.assignment = np.asarray(payload["assignment"], dtype=np.int64)
        state.supernet.set_assignment(state.assignment)
        state.epochs_completed = int(payload["epochs_completed"])
        state.iteration = int(payload["iteration"])
        state.evaluations = int(payload["evaluations"])
        state.elapsed_seconds = float(payload["elapsed_seconds"])
        state.memory_start = int(payload["memory_start"])
        state.trace = trace_from_jsonable(payload["trace"])
        state.reward_memory = {}
        for entry in payload["reward_memory"]:
            candidate = candidate_from_jsonable(entry["candidate"])
            state.reward_memory[candidate.signature()] = (float(entry["reward"]), candidate)
        state.last_rewards = [float(reward) for reward in payload["last_rewards"]]

    # ------------------------------------------------------------------ internals
    def _initial_assignment(
        self,
        graph: KnowledgeGraph,
        clustering: EMRelationClustering,
        supernet: SharedEmbeddingSupernet,
    ) -> np.ndarray:
        if self._initial_assignment_fn is not None:
            assignment = np.asarray(self._initial_assignment_fn(graph), dtype=np.int64)
            if assignment.shape != (graph.num_relations,):
                raise ValueError("initial assignment function returned the wrong shape")
            return np.clip(assignment, 0, self.config.num_groups - 1)
        if self.config.num_groups == 1:
            return np.zeros(graph.num_relations, dtype=np.int64)
        return clustering.assign(supernet.relation_embeddings())

    def _reward_batch(self, supernet: SharedEmbeddingSupernet, rng: np.random.Generator) -> np.ndarray:
        if self.config.controller_on_train:
            # ERAS_sig ablation: single-level optimisation uses training mini-batches.
            train = supernet.graph.train.array
            size = min(supernet.config.valid_batch_size, len(train))
            idx = rng.choice(len(train), size=size, replace=False)
            return train[idx]
        return supernet.sample_validation_batch()

    def _reward(
        self,
        supernet: SharedEmbeddingSupernet,
        space: RelationAwareSearchSpace,
        sample: SampledCandidate,
        batch: np.ndarray,
    ) -> float:
        if not space.satisfies_exploitative_constraint(sample.candidate.structures):
            return 0.0
        return supernet.reward(sample.candidate, batch, metric=self.config.reward_metric)

    def _derive(
        self,
        supernet: SharedEmbeddingSupernet,
        space: RelationAwareSearchSpace,
        controller: ArchitectureController,
        rng: np.random.Generator,
        remembered: Optional[Sequence[Candidate]] = None,
    ) -> tuple[List[tuple[Candidate, float]], int]:
        """Score derive-time candidates with the shared embeddings; best first.

        All scorings go through an :class:`~repro.runtime.evaluation.EvaluationPool`
        (the searcher's, or a serial in-process one) behind a fresh
        :class:`~repro.runtime.evaluation.EvalCache` scoped to the current embedding
        state, so duplicate candidates -- resampled by the converged controller or
        revisited by the anchor pass -- are scored exactly once.
        """
        # Imported lazily: repro.runtime sits above repro.search in the layering.
        from repro.runtime.evaluation import (
            EvalCache,
            EvaluationPool,
            candidate_payload,
            one_shot_shared_payload,
            release_one_shot_model,
            score_candidate_one_shot,
        )

        pool = self._pool if self._pool is not None else EvaluationPool(n_workers=1)
        cache = EvalCache()
        shared = one_shot_shared_payload(supernet)

        def score_many(candidates: Sequence[Candidate]) -> List[float]:
            payloads = [candidate_payload(candidate) for candidate in candidates]
            keys = [("one-shot", candidate.signature()) for candidate in candidates]
            return pool.map(score_candidate_one_shot, payloads, shared=shared, keys=keys, cache=cache)

        try:
            samples = controller.sample(self.config.derive_samples, rng=rng)
            candidates = [sample.candidate for sample in samples] + list(remembered or [])
            if self.config.anchor_candidates:
                candidates += self._anchor_candidates(space, score_many)
            unique: List[Candidate] = []
            seen = set()
            for candidate in candidates:
                signature = candidate.signature()
                if signature in seen or not space.satisfies_exploitative_constraint(candidate.structures):
                    continue
                seen.add(signature)
                unique.append(candidate)
            scored = list(zip(unique, score_many(unique)))
            if not scored:
                # Every sample violated the constraint; fall back to the greedy decode or a
                # random constraint-satisfying candidate.
                greedy = controller.sample_one(rng=rng, greedy=True).candidate
                if space.satisfies_exploitative_constraint(greedy.structures):
                    fallback = greedy
                else:
                    fallback = Candidate(tuple(space.random_candidate(rng)))
                scored.append((fallback, score_many([fallback])[0]))
        finally:
            release_one_shot_model()
        scored.sort(key=lambda item: -item[1])
        return scored, cache.misses

    def _anchor_candidates(
        self,
        space: RelationAwareSearchSpace,
        score_many: Callable[[Sequence[Candidate]], List[float]],
    ) -> List[Candidate]:
        """Literature structures used to anchor the derive-time selection.

        The block search space contains every classic bilinear scoring function (the
        paper's "generalises from human wisdom" property); at the small CPU scale of this
        reproduction the controller does not always rediscover that region within the
        search budget, so the derive step additionally scores (a) every classic used
        uniformly across groups and (b) a greedy per-group mix of classics, all under the
        same one-shot proxy as the controller's own candidates.  See DESIGN.md,
        "Substitutions".  Scorings run through ``score_many`` (the pooled, cached
        derive-phase evaluator), so the repeated combinations of the greedy pass are
        cache hits rather than re-scorings.
        """
        if self.config.num_blocks != 4:
            return []
        from repro.scoring.classics import CLASSIC_STRUCTURES

        classics = list(CLASSIC_STRUCTURES.values())
        anchors = [Candidate(tuple([classic] * self.config.num_groups)) for classic in classics]
        if self.config.num_groups == 1:
            return anchors
        # Greedy per-group coordinate pass starting from the best uniform anchor.
        uniform_scores = score_many(anchors)
        best_uniform = anchors[int(np.argmax(uniform_scores))]
        current = list(best_uniform.structures)
        for group in range(self.config.num_groups):
            trials = [Candidate(tuple(current))]
            for classic in classics:
                trial = list(current)
                trial[group] = classic
                trials.append(Candidate(tuple(trial)))
            trial_scores = score_many(trials)
            best_structure, best_score = current[group], trial_scores[0]
            for classic, score in zip(classics, trial_scores[1:]):
                if score > best_score:
                    best_structure, best_score = classic, score
            current[group] = best_structure
        anchors.append(Candidate(tuple(current)))
        return anchors
