"""The shared-embedding supernet (Section IV-C of the paper).

The supernet holds a single set of entity/relation embeddings.  Any candidate (a set of
per-group block structures plus a relation-to-group assignment) is a subgraph of the
supernet: evaluating it just means scoring with those structures on the *shared*
embeddings.  This is what lets ERAS evaluate thousands of candidates without training
each of them from scratch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.autodiff import no_grad
from repro.kg.graph import KnowledgeGraph
from repro.kg.sampling import BatchIterator
from repro.models.kge import KGEModel
from repro.models.regularizers import n3_regularization
from repro.nn.optim import Adagrad
from repro.scoring.structure import BlockStructure
from repro.search.result import Candidate
from repro.utils.rng import SeedLike, new_rng


@dataclass
class SupernetConfig:
    """Hyper-parameters of the shared-embedding supernet (Section IV-C).

    Fields
    ------
    dim:
        Embedding dimension d of the shared entity/relation tables (default 64,
        must be positive and divisible by the block count M of the candidates).
    embedding_lr:
        Adagrad learning rate of the shared-embedding update, Eq. 9 (default 0.5, > 0).
    regularization_weight:
        Weight of the N3 regulariser added to the embedding loss (default 1e-4,
        >= 0; 0 disables regularisation).
    batch_size:
        Training mini-batch size for the embedding updates (default 256, > 0).
    valid_batch_size:
        Size of the validation mini-batches used for controller rewards, Eq. 7
        (default 128, > 0).
    seed:
        Seed of the embedding initialisation and validation sampling (default 0).
    """

    dim: int = 64
    embedding_lr: float = 0.5
    regularization_weight: float = 1e-4
    batch_size: int = 256
    valid_batch_size: int = 128
    seed: int = 0

    def __post_init__(self) -> None:
        if self.dim <= 0:
            raise ValueError("dim must be positive")
        if self.embedding_lr <= 0:
            raise ValueError("embedding_lr must be positive")
        if self.batch_size <= 0 or self.valid_batch_size <= 0:
            raise ValueError("batch sizes must be positive")


class SharedEmbeddingSupernet:
    """Shared KG embeddings evaluated under arbitrary sampled candidates."""

    def __init__(self, graph: KnowledgeGraph, num_groups: int, config: Optional[SupernetConfig] = None) -> None:
        self.graph = graph
        self.config = config or SupernetConfig()
        self.num_groups = num_groups
        # The model starts with placeholder diagonal structures; candidates swap them in.
        placeholder = [BlockStructure.diagonal(4) for _ in range(num_groups)]
        self.model = KGEModel(
            num_entities=graph.num_entities,
            num_relations=graph.num_relations,
            dim=self.config.dim,
            scorers=placeholder,
            assignment=np.zeros(graph.num_relations, dtype=np.int64),
            seed=self.config.seed,
        )
        self.optimizer = Adagrad(self.model.parameters(), lr=self.config.embedding_lr)
        self._rng = new_rng(self.config.seed)
        self.assignment = np.zeros(graph.num_relations, dtype=np.int64)

    # ------------------------------------------------------------------ assignment handling
    def set_assignment(self, assignment: np.ndarray) -> None:
        """Install a relation-to-group assignment (validated against the group count)."""
        assignment = np.asarray(assignment, dtype=np.int64)
        if assignment.shape != (self.graph.num_relations,):
            raise ValueError(
                f"assignment must have shape ({self.graph.num_relations},), got {assignment.shape}"
            )
        if assignment.size and (assignment.min() < 0 or assignment.max() >= self.num_groups):
            raise ValueError("assignment group ids out of range")
        self.assignment = assignment

    def relation_embeddings(self) -> np.ndarray:
        """Current shared relation embeddings (input of the EM clustering step)."""
        return self.model.relation_embedding_matrix()

    # ------------------------------------------------------------------ data plumbing
    def training_batches(self, seed: SeedLike = None) -> BatchIterator:
        """A fresh shuffled iterator over the training split."""
        seed = seed if seed is not None else int(self._rng.integers(1 << 31))
        return BatchIterator(self.graph.train, self.config.batch_size, seed=seed)

    def sample_validation_batch(self) -> np.ndarray:
        """A random mini-batch of validation triples (used for rewards)."""
        valid = self.graph.valid.array
        size = min(self.config.valid_batch_size, len(valid))
        idx = self._rng.choice(len(valid), size=size, replace=False)
        return valid[idx]

    # ------------------------------------------------------------------ optimisation
    def _install(self, candidate: Candidate) -> None:
        if candidate.num_groups != self.num_groups:
            raise ValueError(
                f"candidate has {candidate.num_groups} groups, supernet expects {self.num_groups}"
            )
        self.model.set_scorers(list(candidate.structures), assignment=self.assignment)

    def candidate_loss(self, candidate: Candidate, batch: np.ndarray) -> "Tensor":
        """Training loss of one candidate on one batch using the shared embeddings."""
        self._install(candidate)
        loss = self.model.multiclass_loss(batch)
        if self.config.regularization_weight > 0:
            head, relation, tail = self.model.embed_triples(batch)
            loss = loss + n3_regularization([head, relation, tail], self.config.regularization_weight)
        return loss

    def training_step(self, candidates: Sequence[Candidate], batch: np.ndarray) -> float:
        """One stochastic update of the shared embeddings, averaging over sampled candidates (Eq. 9)."""
        if not candidates:
            raise ValueError("training_step needs at least one candidate")
        self.optimizer.zero_grad()
        total = None
        for candidate in candidates:
            loss = self.candidate_loss(candidate, batch)
            total = loss if total is None else total + loss
        average = total * (1.0 / len(candidates))
        average.backward()
        self.optimizer.step()
        return float(average.data)

    # ------------------------------------------------------------------ evaluation
    def reward(self, candidate: Candidate, validation_batch: np.ndarray, metric: str = "mrr") -> float:
        """One-shot reward Q of a candidate on a validation mini-batch.

        ``metric='mrr'`` is the paper's default; ``metric='neg_loss'`` implements the
        ERAS_los ablation where the (negated) validation loss replaces MRR.
        """
        self._install(candidate)
        if metric == "neg_loss":
            with no_grad():
                loss = self.model.multiclass_loss(validation_batch)
            return -float(loss.data)
        if metric != "mrr":
            raise ValueError(f"unknown reward metric {metric!r}")
        return one_shot_mrr(self.model, validation_batch)

    def one_shot_validation_mrr(self, candidate: Candidate, sample_size: Optional[int] = None) -> float:
        """Reward computed on the full validation split (or a fixed-size sample of it)."""
        valid = self.graph.valid.array
        if sample_size is not None and sample_size < len(valid):
            idx = self._rng.choice(len(valid), size=sample_size, replace=False)
            valid = valid[idx]
        return self.reward(candidate, valid)


def one_shot_mrr(model: KGEModel, triples: np.ndarray) -> float:
    """Unfiltered MRR of ``model`` on ``triples`` (head and tail prediction interleaved).

    This is the one-shot reward Q of the paper, factored out of the supernet so that
    pool workers (:mod:`repro.runtime.evaluation`) can score a reconstructed model with
    exactly the same code path as the in-process supernet -- the guarantee behind
    ``--workers N`` producing bit-identical search results for every ``N``.

    Scores come from the compiled no-grad kernels
    (:meth:`~repro.models.kge.KGEModel.score_all_arrays`), which are bit-identical to
    the autodiff path, so switching the reward to the fast path never changes a search.
    """
    tail_scores = model.score_all_arrays(triples, "tail")
    head_scores = model.score_all_arrays(triples, "head")
    ranks = np.concatenate(
        [
            _unfiltered_ranks(tail_scores, triples[:, 2]),
            _unfiltered_ranks(head_scores, triples[:, 0]),
        ]
    )
    return float(np.mean(1.0 / ranks))


def _unfiltered_ranks(scores: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """Optimistic-tie ranks of the target entities within raw score rows."""
    target_scores = scores[np.arange(len(targets)), targets]
    higher = (scores > target_scores[:, None]).sum(axis=1)
    ties = (scores == target_scores[:, None]).sum(axis=1) - 1
    return 1 + higher + ties // 2
