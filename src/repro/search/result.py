"""Common result containers shared by all searchers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.scoring.structure import BlockStructure


@dataclass(frozen=True)
class Candidate:
    """A point of the (relation-aware) search space: one structure per relation group."""

    structures: Tuple[BlockStructure, ...]

    def __post_init__(self) -> None:
        if not self.structures:
            raise ValueError("a candidate needs at least one structure")

    @property
    def num_groups(self) -> int:
        return len(self.structures)

    def signature(self) -> Tuple[Tuple[int, ...], ...]:
        """Hashable canonical form."""
        return tuple(structure.signature() for structure in self.structures)

    def __iter__(self):
        return iter(self.structures)


@dataclass(frozen=True)
class TracePoint:
    """One observation of search progress (the points of Figure 2)."""

    elapsed_seconds: float
    evaluations: int
    valid_mrr: float
    note: str = ""


@dataclass
class SearchResult:
    """Outcome of a scoring-function search."""

    searcher: str
    dataset: str
    best_candidate: Candidate
    best_assignment: np.ndarray
    best_valid_mrr: float
    search_seconds: float
    evaluations: int
    trace: List[TracePoint] = field(default_factory=list)
    extras: Dict[str, object] = field(default_factory=dict)

    def best_structures(self) -> List[BlockStructure]:
        """The searched structures as a list."""
        return list(self.best_candidate.structures)

    def group_of_relation(self, relation: int) -> int:
        """The group (scoring function index) a relation was assigned to."""
        return int(self.best_assignment[relation])

    def relations_per_group(self) -> Dict[int, List[int]]:
        """Relation ids grouped by assigned scoring function."""
        groups: Dict[int, List[int]] = {g: [] for g in range(self.best_candidate.num_groups)}
        for relation, group in enumerate(self.best_assignment):
            groups[int(group)].append(relation)
        return groups

    def summary(self) -> Dict[str, object]:
        """Compact description used in logs and benchmark reports."""
        return {
            "searcher": self.searcher,
            "dataset": self.dataset,
            "groups": self.best_candidate.num_groups,
            "valid_mrr": round(self.best_valid_mrr, 4),
            "search_seconds": round(self.search_seconds, 2),
            "evaluations": self.evaluations,
        }
