"""Common result containers shared by all searchers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.scoring.structure import BlockStructure


@dataclass(frozen=True)
class Candidate:
    """A point of the (relation-aware) search space: one structure per relation group.

    Fields
    ------
    structures:
        One :class:`~repro.scoring.structure.BlockStructure` per relation group, in
        group order; length N >= 1 (N = 1 is the task-aware special case).
    """

    structures: Tuple[BlockStructure, ...]

    def __post_init__(self) -> None:
        if not self.structures:
            raise ValueError("a candidate needs at least one structure")

    @property
    def num_groups(self) -> int:
        return len(self.structures)

    def signature(self) -> Tuple[Tuple[int, ...], ...]:
        """Hashable canonical form."""
        return tuple(structure.signature() for structure in self.structures)

    def __iter__(self):
        return iter(self.structures)


@dataclass(frozen=True)
class TracePoint:
    """One observation of search progress (the points of Figure 2).

    Fields
    ------
    elapsed_seconds:
        Search wall clock at the observation, in seconds since the search started.
    evaluations:
        Candidate evaluations performed so far (one-shot rewards or stand-alone
        trainings, depending on the searcher).
    valid_mrr:
        Best validation MRR proxy known at the observation (0.0 where the searcher's
        reward is not an MRR).
    note:
        Free-form label of the observation, e.g. ``"epoch 3"`` or ``"derived"``.
    """

    elapsed_seconds: float
    evaluations: int
    valid_mrr: float
    note: str = ""


@dataclass
class SearchResult:
    """Outcome of a scoring-function search.

    Fields
    ------
    searcher:
        Name of the algorithm that produced the result (``"ERAS"``, ``"AutoSF"``, ...).
    dataset:
        Name of the searched :class:`~repro.kg.graph.KnowledgeGraph`.
    best_candidate:
        The winning :class:`Candidate` (to be re-trained from scratch, as the paper does).
    best_assignment:
        Relation-to-group assignment vector of the winner, shape ``(num_relations,)``
        with values in ``[0, num_groups)``.
    best_valid_mrr:
        Validation MRR of the winner under the searcher's evaluation proxy (one-shot
        for ERAS, stand-alone training for the baselines).
    search_seconds:
        Total search wall clock in seconds.
    evaluations:
        Total candidate evaluations performed.
    trace:
        Chronological :class:`TracePoint` observations (the curves of Figure 2).
    extras:
        Searcher-specific payload, e.g. ERAS's ``top_candidates`` for re-ranking.
    """

    searcher: str
    dataset: str
    best_candidate: Candidate
    best_assignment: np.ndarray
    best_valid_mrr: float
    search_seconds: float
    evaluations: int
    trace: List[TracePoint] = field(default_factory=list)
    extras: Dict[str, object] = field(default_factory=dict)

    def best_structures(self) -> List[BlockStructure]:
        """The searched structures as a list."""
        return list(self.best_candidate.structures)

    def group_of_relation(self, relation: int) -> int:
        """The group (scoring function index) a relation was assigned to."""
        return int(self.best_assignment[relation])

    def relations_per_group(self) -> Dict[int, List[int]]:
        """Relation ids grouped by assigned scoring function."""
        groups: Dict[int, List[int]] = {g: [] for g in range(self.best_candidate.num_groups)}
        for relation, group in enumerate(self.best_assignment):
            groups[int(group)].append(relation)
        return groups

    def summary(self) -> Dict[str, object]:
        """Compact description used in logs and benchmark reports."""
        return {
            "searcher": self.searcher,
            "dataset": self.dataset,
            "groups": self.best_candidate.num_groups,
            "valid_mrr": round(self.best_valid_mrr, 4),
            "search_seconds": round(self.search_seconds, 2),
            "evaluations": self.evaluations,
        }
