"""The performance predictor used inside AutoSF's progressive greedy search.

AutoSF trains a regressor mapping symmetry-related features of a candidate structure to
its observed validation MRR; at each greedy step the predictor pre-filters the sampled
candidates so that only the most promising ones are actually trained (step 4 of
Algorithm 1).  We follow the original paper's design: hand-crafted structural features
plus a ridge-regularised linear model, which works with a handful of observations.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.scoring.structure import BlockStructure


def structure_features(structure: BlockStructure) -> np.ndarray:
    """Feature vector describing a block structure.

    Features: per-operation usage counts (2M+1 values), number of diagonal non-zeros,
    number of symmetric position pairs with matching / opposite signs, and the number of
    distinct relation blocks used.
    """
    num_blocks = structure.num_blocks
    entries = structure.entries
    counts = np.zeros(2 * num_blocks + 1)
    for value in entries.reshape(-1):
        if value == 0:
            counts[0] += 1
        elif value > 0:
            counts[value] += 1
        else:
            counts[num_blocks - value] += 1
    diagonal_nonzero = float(np.count_nonzero(np.diag(entries)))
    matching_pairs = 0.0
    opposing_pairs = 0.0
    for i in range(num_blocks):
        for j in range(i + 1, num_blocks):
            if entries[i, j] == 0 or entries[j, i] == 0:
                continue
            if entries[i, j] == entries[j, i]:
                matching_pairs += 1.0
            elif entries[i, j] == -entries[j, i]:
                opposing_pairs += 1.0
    used_blocks = float(len(structure.used_relation_blocks()))
    return np.concatenate([counts, [diagonal_nonzero, matching_pairs, opposing_pairs, used_blocks]])


def candidate_features(structures: Sequence[BlockStructure]) -> np.ndarray:
    """Features of a multi-structure candidate: the concatenated per-structure features."""
    return np.concatenate([structure_features(s) for s in structures])


class StructurePerformancePredictor:
    """Ridge regression from structure features to observed validation MRR."""

    def __init__(self, ridge: float = 1e-2) -> None:
        if ridge <= 0:
            raise ValueError("ridge must be positive")
        self.ridge = ridge
        self._features: List[np.ndarray] = []
        self._targets: List[float] = []
        self._weights: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self._targets)

    def observe(self, structure: BlockStructure, performance: float) -> None:
        """Record one (structure, observed MRR) pair and refit."""
        self._features.append(structure_features(structure))
        self._targets.append(float(performance))
        self._fit()

    def _fit(self) -> None:
        if len(self._targets) < 2:
            self._weights = None
            return
        features = np.stack(self._features)
        features = np.concatenate([features, np.ones((len(features), 1))], axis=1)
        targets = np.asarray(self._targets)
        gram = features.T @ features + self.ridge * np.eye(features.shape[1])
        self._weights = np.linalg.solve(gram, features.T @ targets)

    def predict(self, structure: BlockStructure) -> float:
        """Predicted MRR of an unseen structure (mean of observations until trained)."""
        if self._weights is None:
            return float(np.mean(self._targets)) if self._targets else 0.0
        features = np.concatenate([structure_features(structure), [1.0]])
        return float(features @ self._weights)

    def rank(self, structures: Sequence[BlockStructure], top_k: int) -> List[BlockStructure]:
        """The ``top_k`` structures by predicted performance (ties kept in input order)."""
        if top_k <= 0:
            raise ValueError("top_k must be positive")
        scored = [(self.predict(structure), index) for index, structure in enumerate(structures)]
        order = sorted(range(len(scored)), key=lambda i: (-scored[i][0], scored[i][1]))
        return [structures[i] for i in order[:top_k]]
