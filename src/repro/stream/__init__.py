"""Streaming graph updates: deltas, versioned snapshots and incremental index merge.

The package turns the build-once structures of :mod:`repro.kg` into a live pipeline:
a :class:`GraphDelta` describes per-split triple additions/removals, a
:class:`MutableGraphView` applies it to produce a new immutable
:class:`~repro.kg.graph.KnowledgeGraph` snapshot (with a bumped ``graph_version`` and
the filter index merged incrementally via
:meth:`~repro.kg.filter_index.FilterIndex.apply_delta` instead of rebuilt), and the
serving layer (:meth:`repro.serve.frontend.ServingFrontend.apply_graph_delta`) swaps
engines atomically so queries keep flowing during updates.  See ``docs/STREAMING.md``
for the full lifecycle.
"""

from repro.stream.delta import SPLIT_NAMES, DeltaValidationError, GraphDelta, MutableGraphView

__all__ = [
    "SPLIT_NAMES",
    "DeltaValidationError",
    "GraphDelta",
    "MutableGraphView",
]
