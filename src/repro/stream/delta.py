"""Graph deltas and the versioned snapshot pipeline.

A :class:`GraphDelta` is a validated batch of per-split triple additions and removals.
:class:`MutableGraphView` is the single mutation point of a live graph: it holds the
current immutable :class:`~repro.kg.graph.KnowledgeGraph` snapshot and, per applied
delta, produces the *next* snapshot -- new split arrays, ``graph_version + 1``, and a
filter index obtained by :meth:`~repro.kg.filter_index.FilterIndex.apply_delta`
(incremental CSR merge) rather than a rebuild.  Old snapshots stay fully usable, so
readers holding the previous version are never invalidated mid-query.

Split-level vs index-level semantics
------------------------------------
Splits may share triples, and the filter index covers their *deduplicated union*.  The
net index delta is therefore computed here: an add only reaches the index if the triple
was absent from every old split, and a remove only reaches it if the triple is absent
from every split *after* the delta (removing a triple from ``train`` while it remains
in ``valid`` leaves the index unchanged).  A remove-from-one-split plus
add-to-another in the same delta cancels out at the index level.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Tuple

import numpy as np

from repro.kg.graph import KnowledgeGraph
from repro.kg.triples import TripleSet

#: Split names a delta may address, in canonical order.
SPLIT_NAMES = ("train", "valid", "test")


class DeltaValidationError(ValueError):
    """A delta that cannot be applied: malformed payload, out-of-vocab ids, adds that
    already exist in the target split, or removes of absent triples.  Raised *before*
    any state changes, so the current snapshot is guaranteed untouched."""


def _as_triple_array(value, label: str) -> np.ndarray:
    """Coerce one split's payload to a ``(k, 3)`` int64 array or raise cleanly."""
    if isinstance(value, TripleSet):
        return value.array
    try:
        array = np.asarray(value, dtype=np.int64)
    except (TypeError, ValueError, OverflowError) as error:
        raise DeltaValidationError(f"{label}: triples must be integer (k, 3) rows: {error}") from None
    if array.size == 0:
        return np.zeros((0, 3), dtype=np.int64)
    if array.ndim != 2 or array.shape[1] != 3:
        raise DeltaValidationError(f"{label}: triples must have shape (k, 3), got {array.shape}")
    return np.ascontiguousarray(array)


def _encode(array: np.ndarray, num_entities: int, num_relations: int) -> np.ndarray:
    """The injective int64 full-triple key ``(h * R + r) * E + t`` (domain-checked by caller)."""
    return (array[:, 0] * num_relations + array[:, 1]) * num_entities + array[:, 2]


@dataclass(frozen=True)
class GraphDelta:
    """One validated batch of triple mutations, keyed by split.

    Fields
    ------
    adds:
        Mapping from split name (``train`` / ``valid`` / ``test``) to a ``(k, 3)``
        int64 array of triples to append to that split.  Every triple must be absent
        from the target split; duplicates within one split's adds are rejected.
    removes:
        Mapping from split name to a ``(k, 3)`` int64 array of triples to delete.
        Every triple must be present in the target split (all duplicate occurrences
        are deleted); a triple may not appear in both ``adds`` and ``removes`` of the
        same split.
    """

    adds: Mapping[str, np.ndarray] = field(default_factory=dict)
    removes: Mapping[str, np.ndarray] = field(default_factory=dict)

    @classmethod
    def from_arrays(
        cls,
        adds: Optional[Mapping[str, object]] = None,
        removes: Optional[Mapping[str, object]] = None,
    ) -> "GraphDelta":
        """Build a delta from ``{split: (k, 3) array-like}`` mappings (shape-checked)."""
        def normalise(side: Optional[Mapping[str, object]], label: str) -> Dict[str, np.ndarray]:
            out: Dict[str, np.ndarray] = {}
            for split, value in (side or {}).items():
                if split not in SPLIT_NAMES:
                    raise DeltaValidationError(
                        f"{label}: unknown split {split!r} (expected one of {SPLIT_NAMES})"
                    )
                array = _as_triple_array(value, f"{label}[{split}]")
                if len(array):
                    out[split] = array
            return out

        return cls(adds=normalise(adds, "adds"), removes=normalise(removes, "removes"))

    @classmethod
    def from_json(cls, payload: object) -> "GraphDelta":
        """Parse the ``POST /v1/graph/delta`` wire format.

        The payload is ``{"adds": {split: [[h, r, t], ...]}, "removes": {...}}`` with
        both top-level keys optional; anything else raises
        :class:`DeltaValidationError`.
        """
        if not isinstance(payload, dict):
            raise DeltaValidationError("delta payload must be a JSON object")
        unknown = set(payload) - {"adds", "removes"}
        if unknown:
            raise DeltaValidationError(f"unknown delta key(s) {sorted(unknown)}")
        for key in ("adds", "removes"):
            if key in payload and not isinstance(payload[key], dict):
                raise DeltaValidationError(f"{key!r} must map split names to triple lists")
        return cls.from_arrays(adds=payload.get("adds"), removes=payload.get("removes"))

    # ------------------------------------------------------------------ introspection
    def is_empty(self) -> bool:
        """Whether the delta mutates nothing."""
        return not any(len(a) for a in self.adds.values()) and not any(
            len(r) for r in self.removes.values()
        )

    @property
    def num_added(self) -> int:
        """Total triples added across splits (before index-level dedup)."""
        return sum(len(a) for a in self.adds.values())

    @property
    def num_removed(self) -> int:
        """Total triples removed across splits (before index-level dedup)."""
        return sum(len(r) for r in self.removes.values())

    def touched_relations(self) -> np.ndarray:
        """Sorted unique relation ids appearing anywhere in the delta.

        This is the invalidation set: serving caches keyed by a relation outside this
        array are provably unaffected by the delta and survive the swap.
        """
        columns = [a[:, 1] for a in self.adds.values()] + [r[:, 1] for r in self.removes.values()]
        if not columns:
            return np.array([], dtype=np.int64)
        return np.unique(np.concatenate(columns))

    def describe(self) -> Dict[str, int]:
        """Small summary dict for logs and HTTP responses."""
        return {
            "added": int(self.num_added),
            "removed": int(self.num_removed),
            "relations_touched": int(len(self.touched_relations())),
        }


class MutableGraphView:
    """The single mutation point over a lineage of immutable graph snapshots.

    Holds the current :class:`~repro.kg.graph.KnowledgeGraph`; :meth:`apply` validates
    a :class:`GraphDelta` against it, splices the split arrays, merges the filter index
    incrementally and installs a new snapshot with ``graph_version`` bumped by one.
    Application is serialised by an internal lock; failed validation leaves the current
    snapshot untouched (all checks run before any allocation is published).
    """

    def __init__(self, graph: KnowledgeGraph) -> None:
        self._graph = graph
        self._lock = threading.Lock()

    @property
    def graph(self) -> KnowledgeGraph:
        """The current immutable snapshot."""
        return self._graph

    @property
    def version(self) -> int:
        """``graph_version`` of the current snapshot."""
        return self._graph.graph_version

    def apply(self, delta: GraphDelta) -> KnowledgeGraph:
        """Apply one delta and return the new snapshot (also retained as current).

        Raises :class:`DeltaValidationError` (a ``ValueError``) when the delta is
        inconsistent with the current snapshot; the view then still points at the old
        version.  The new snapshot's filter index is pre-installed via
        :meth:`FilterIndex.apply_delta`, so no consumer ever pays a rebuild.
        """
        with self._lock:
            graph = self._graph
            new_graph = _apply_delta(graph, delta)
            self._graph = new_graph
            return new_graph


def _apply_delta(graph: KnowledgeGraph, delta: GraphDelta) -> KnowledgeGraph:
    """Pure function from (snapshot, delta) to the next snapshot."""
    num_entities, num_relations = graph.num_entities, graph.num_relations
    _validate_bounds(delta, num_entities, num_relations)

    splits = {"train": graph.train, "valid": graph.valid, "test": graph.test}
    sorted_keys = _sorted_split_keys(graph)

    new_arrays: Dict[str, np.ndarray] = {}
    new_sorted_keys: Dict[str, np.ndarray] = {}
    for name, split in splits.items():
        adds = delta.adds.get(name, np.zeros((0, 3), dtype=np.int64))
        removes = delta.removes.get(name, np.zeros((0, 3), dtype=np.int64))
        sorted_adds = (
            np.sort(_encode(adds, num_entities, num_relations)) if len(adds) else np.array([], dtype=np.int64)
        )
        sorted_removes = (
            np.sort(_encode(removes, num_entities, num_relations))
            if len(removes)
            else np.array([], dtype=np.int64)
        )
        _validate_split(name, sorted_keys[name], sorted_adds, sorted_removes)
        array = split.array
        new_sorted = sorted_keys[name]
        if len(sorted_removes):
            # The only full-split passes of the merge, and only for touched splits:
            # one key encode plus two binary-search membership masks.
            row_keys = _encode(array, num_entities, num_relations)
            array = array[~_in_sorted(row_keys, sorted_removes)]
            new_sorted = new_sorted[~_in_sorted(new_sorted, sorted_removes)]
        if len(adds):
            array = np.concatenate([array, adds], axis=0)
            new_sorted = np.insert(new_sorted, np.searchsorted(new_sorted, sorted_adds), sorted_adds)
        new_arrays[name] = array
        new_sorted_keys[name] = new_sorted

    # Net index-level delta over the deduplicated union of all splits.
    old_index = graph.filter_index()
    all_adds = _dedup_rows(
        [delta.adds[name] for name in SPLIT_NAMES if name in delta.adds],
        num_entities,
        num_relations,
    )
    index_adds = all_adds[~old_index.contains_batch(all_adds)] if len(all_adds) else all_adds
    all_removes = _dedup_rows(
        [delta.removes[name] for name in SPLIT_NAMES if name in delta.removes],
        num_entities,
        num_relations,
    )
    if len(all_removes):
        remove_keys = _encode(all_removes, num_entities, num_relations)
        still_present = np.zeros(len(all_removes), dtype=bool)
        for name in SPLIT_NAMES:
            still_present |= _in_sorted(remove_keys, new_sorted_keys[name])
        index_removes = all_removes[~still_present]
    else:
        index_removes = all_removes
    merged_index = old_index.apply_delta(index_adds, index_removes)

    new_graph = KnowledgeGraph(
        name=graph.name,
        num_entities=num_entities,
        num_relations=num_relations,
        train=TripleSet(new_arrays["train"]),
        valid=TripleSet(new_arrays["valid"]),
        test=TripleSet(new_arrays["test"]),
        entity_vocab=graph.entity_vocab,
        relation_vocab=graph.relation_vocab,
        graph_version=graph.graph_version + 1,
    )
    # Install the merged index directly (same idiom as the shm zero-copy attach path):
    # consumers calling filter_index() get the incrementally merged structure, which is
    # bit-identical to the rebuild they would otherwise trigger.  The spliced per-split
    # sorted keys ride along so the next delta never re-sorts a split.
    new_graph._filter_index = merged_index
    new_graph._stream_split_keys = new_sorted_keys
    return new_graph


def _dedup_rows(
    arrays: Iterable[np.ndarray], num_entities: int, num_relations: int
) -> np.ndarray:
    """Concatenate row arrays and drop duplicate triples (key-sorted order)."""
    arrays = [a for a in arrays if len(a)]
    if not arrays:
        return np.zeros((0, 3), dtype=np.int64)
    combined = np.concatenate(arrays, axis=0)
    keys = _encode(combined, num_entities, num_relations)
    order = np.argsort(keys, kind="stable")
    keys = keys[order]
    first = np.ones(len(keys), dtype=bool)
    first[1:] = keys[1:] != keys[:-1]
    return combined[order[first]]


def _validate_bounds(delta: GraphDelta, num_entities: int, num_relations: int) -> None:
    for label, side in (("adds", delta.adds), ("removes", delta.removes)):
        for split, array in side.items():
            if not len(array):
                continue
            if array.min() < 0:
                raise DeltaValidationError(f"{label}[{split}]: triple ids must be non-negative")
            if int(max(array[:, 0].max(), array[:, 2].max())) >= num_entities:
                raise DeltaValidationError(
                    f"{label}[{split}]: entity id out of range (num_entities={num_entities})"
                )
            if int(array[:, 1].max()) >= num_relations:
                raise DeltaValidationError(
                    f"{label}[{split}]: relation id out of range (num_relations={num_relations})"
                )


def _in_sorted(keys: np.ndarray, sorted_queries: np.ndarray) -> np.ndarray:
    """Membership of ``keys`` in the ascending ``sorted_queries`` array.

    ``O(n log k)`` binary search with the *small* (delta-sized) side sorted --
    deliberately not :func:`np.isin`, whose table path hashes the full split on every
    delta and would make "incremental" apply scale with the graph, not the delta.
    """
    if not len(keys) or not len(sorted_queries):
        return np.zeros(len(keys), dtype=bool)
    pos = np.minimum(np.searchsorted(sorted_queries, keys), len(sorted_queries) - 1)
    return sorted_queries[pos] == keys


def _sorted_split_keys(graph: KnowledgeGraph) -> Dict[str, np.ndarray]:
    """Ascending full-triple key arrays per split, memoised on the snapshot.

    A graph that has never seen a delta pays one ``O(n log n)`` sort per split; every
    :func:`_apply_delta` then splices the touched splits incrementally and installs
    the result on the next snapshot, so a long-lived update stream keeps all its
    membership checks at binary-search cost.
    """
    cache = getattr(graph, "_stream_split_keys", None)
    if cache is None:
        cache = {
            name: np.sort(
                _encode(getattr(graph, name).array, graph.num_entities, graph.num_relations)
            )
            for name in SPLIT_NAMES
        }
        graph._stream_split_keys = cache
    return cache


def _validate_split(
    name: str, existing_sorted: np.ndarray, sorted_adds: np.ndarray, sorted_removes: np.ndarray
) -> None:
    """Check one split's delta against the split's sorted key array (all ``O(k log n)``)."""
    for label, keys in (("adds", sorted_adds), ("removes", sorted_removes)):
        if len(keys) and bool((keys[1:] == keys[:-1]).any()):
            raise DeltaValidationError(f"{label}[{name}]: duplicate triples in delta")
    if len(sorted_adds) and len(sorted_removes) and _in_sorted(sorted_adds, sorted_removes).any():
        raise DeltaValidationError(f"delta adds and removes overlap in split {name!r}")
    if len(sorted_adds) and _in_sorted(sorted_adds, existing_sorted).any():
        raise DeltaValidationError(f"adds[{name}]: triple(s) already present in split")
    if len(sorted_removes) and not _in_sorted(sorted_removes, existing_sorted).all():
        raise DeltaValidationError(f"removes[{name}]: triple(s) not present in split")


def split_sizes(graph: KnowledgeGraph) -> Tuple[int, int, int]:
    """``(train, valid, test)`` sizes of a snapshot -- convenience for logs/metrics."""
    return len(graph.train), len(graph.valid), len(graph.test)
