"""The pre-vectorization reference implementation of filtered ranking.

This module preserves, verbatim in behaviour, the seed's filtered-ranking hot path:
a dict-of-sets filter index built by per-triple Python insertion, and a ranking loop
that allocates a dense boolean mask per evaluation triple.  It exists for two reasons:

1. **ground truth** -- ``tests/test_ranking_vectorized.py`` asserts that the CSR
   :class:`~repro.kg.filter_index.FilterIndex` plus the no-grad scoring kernels produce
   ranks *exactly* equal to this implementation on randomized graphs;
2. **perf trajectory** -- ``benchmarks/test_ranking_throughput.py`` times the vectorized
   path against this reference and records the speedup in ``BENCH_ranking.json``.

Never use these classes outside tests/benchmarks; :class:`repro.eval.ranking.RankingEvaluator`
is the production path.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Set, Tuple

import numpy as np

from repro.autodiff import no_grad
from repro.kg.graph import KnowledgeGraph
from repro.kg.triples import TripleSet
from repro.models.kge import KGEModel


class NaiveFilterIndex:
    """The seed's known-true lookup: Python sets filled one triple at a time."""

    def __init__(self, triple_sets: Iterable[TripleSet]) -> None:
        self._tails_of: Dict[Tuple[int, int], Set[int]] = defaultdict(set)
        self._heads_of: Dict[Tuple[int, int], Set[int]] = defaultdict(set)
        self._all: Set[Tuple[int, int, int]] = set()
        for triples in triple_sets:
            for head, relation, tail in triples:
                self._tails_of[(head, relation)].add(tail)
                self._heads_of[(relation, tail)].add(head)
                self._all.add((head, relation, tail))

    @classmethod
    def from_graph(cls, graph: KnowledgeGraph) -> "NaiveFilterIndex":
        """Index over all splits of ``graph`` -- rebuilt on every call, as the seed did."""
        return cls([graph.train, graph.valid, graph.test])

    def known_tails(self, head: int, relation: int) -> Set[int]:
        """All tails t such that (head, relation, t) is a known true triple."""
        return self._tails_of.get((head, relation), set())

    def known_heads(self, relation: int, tail: int) -> Set[int]:
        """All heads h such that (h, relation, tail) is a known true triple."""
        return self._heads_of.get((relation, tail), set())

    def contains(self, head: int, relation: int, tail: int) -> bool:
        """Whether the exact triple is known true."""
        return (head, relation, tail) in self._all

    def __len__(self) -> int:
        return len(self._all)

    def tail_filter_mask(self, head: int, relation: int, true_tail: int, num_entities: int) -> np.ndarray:
        """Dense boolean exclusion mask for one tail-prediction query (target kept)."""
        mask = np.zeros(num_entities, dtype=bool)
        known = self.known_tails(head, relation)
        if known:
            mask[list(known)] = True
        mask[true_tail] = False
        return mask

    def head_filter_mask(self, relation: int, tail: int, true_head: int, num_entities: int) -> np.ndarray:
        """Dense boolean exclusion mask for one head-prediction query (target kept)."""
        mask = np.zeros(num_entities, dtype=bool)
        known = self.known_heads(relation, tail)
        if known:
            mask[list(known)] = True
        mask[true_head] = False
        return mask


class NaiveRankingEvaluator:
    """The seed's ranking loop: Tensor scoring plus one dense mask per triple.

    Constructing an instance rebuilds the set-based filter index from scratch --
    exactly what the seed's ``RankingEvaluator`` did for every search candidate.
    """

    def __init__(self, graph: KnowledgeGraph, filtered: bool = True, batch_size: int = 128) -> None:
        self.graph = graph
        self.filtered = filtered
        self.batch_size = batch_size
        self._filter_index = NaiveFilterIndex.from_graph(graph) if filtered else None

    def ranks(self, model: KGEModel, triples: TripleSet) -> np.ndarray:
        """Filtered ranks (tail- and head-prediction interleaved), seed semantics."""
        if len(triples) == 0:
            return np.array([], dtype=np.int64)
        all_ranks = []
        array = triples.array
        with no_grad():
            for start in range(0, len(array), self.batch_size):
                batch = array[start : start + self.batch_size]
                all_ranks.append(self._batch_ranks(model, batch, direction="tail"))
                all_ranks.append(self._batch_ranks(model, batch, direction="head"))
        return np.concatenate(all_ranks)

    def _batch_ranks(self, model: KGEModel, batch: np.ndarray, direction: str) -> np.ndarray:
        if direction == "tail":
            scores = model.score_all_tails(batch).data.copy()
            targets = batch[:, 2]
        else:
            scores = model.score_all_heads(batch).data.copy()
            targets = batch[:, 0]
        if self._filter_index is not None:
            for row, (head, relation, tail) in enumerate(batch):
                if direction == "tail":
                    mask = self._filter_index.tail_filter_mask(
                        int(head), int(relation), int(tail), self.graph.num_entities
                    )
                else:
                    mask = self._filter_index.head_filter_mask(
                        int(relation), int(tail), int(head), self.graph.num_entities
                    )
                scores[row, mask] = -np.inf
        target_scores = scores[np.arange(len(batch)), targets]
        higher = (scores > target_scores[:, None]).sum(axis=1)
        ties = (scores == target_scores[:, None]).sum(axis=1) - 1
        ranks = 1 + higher + ties // 2
        return ranks.astype(np.int64)
