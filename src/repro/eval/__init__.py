"""Evaluation protocols: filtered link-prediction ranking, relation-pattern metrics,
triplet classification with per-relation thresholds, and correlation analysis between
one-shot and stand-alone performance.

:mod:`repro.eval.reference` keeps the pre-vectorization naive ranking implementation as
the ground truth for the vectorized hot path (property tests + throughput gate)."""

from repro.eval.ranking import RankingEvaluator, RankingMetrics
from repro.eval.reference import NaiveFilterIndex, NaiveRankingEvaluator
from repro.eval.patterns import PatternLevelEvaluator, PatternMetrics
from repro.eval.classification import TripletClassifier, ClassificationResult
from repro.eval.correlation import spearman_correlation, pearson_correlation, CorrelationStudy

__all__ = [
    "RankingEvaluator",
    "RankingMetrics",
    "NaiveFilterIndex",
    "NaiveRankingEvaluator",
    "PatternLevelEvaluator",
    "PatternMetrics",
    "TripletClassifier",
    "ClassificationResult",
    "spearman_correlation",
    "pearson_correlation",
    "CorrelationStudy",
]
