"""Evaluation protocols: filtered link-prediction ranking, relation-pattern metrics,
triplet classification with per-relation thresholds, and correlation analysis between
one-shot and stand-alone performance."""

from repro.eval.ranking import RankingEvaluator, RankingMetrics
from repro.eval.patterns import PatternLevelEvaluator, PatternMetrics
from repro.eval.classification import TripletClassifier, ClassificationResult
from repro.eval.correlation import spearman_correlation, pearson_correlation, CorrelationStudy

__all__ = [
    "RankingEvaluator",
    "RankingMetrics",
    "PatternLevelEvaluator",
    "PatternMetrics",
    "TripletClassifier",
    "ClassificationResult",
    "spearman_correlation",
    "pearson_correlation",
    "CorrelationStudy",
]
