"""Triplet classification (Table X of the paper).

A triple is classified positive when its score exceeds a relation-specific threshold
``theta_r``; thresholds are chosen to maximise accuracy on the validation set, exactly as
described in Section V-B2 of the paper.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.autodiff import no_grad
from repro.kg.filter_index import FilterIndex
from repro.kg.graph import KnowledgeGraph
from repro.kg.sampling import generate_classification_negatives
from repro.kg.triples import TripleSet
from repro.models.kge import KGEModel
from repro.utils.rng import SeedLike


@dataclass(frozen=True)
class ClassificationResult:
    """Accuracy of triplet classification plus the fitted thresholds."""

    accuracy: float
    per_relation_accuracy: Dict[int, float]
    thresholds: Dict[int, float]
    count: int

    def as_row(self) -> Dict[str, float]:
        return {"accuracy": round(100.0 * self.accuracy, 1), "count": self.count}


class TripletClassifier:
    """Fit per-relation score thresholds on validation data and classify test triples."""

    def __init__(self, graph: KnowledgeGraph, seed: SeedLike = 0) -> None:
        self.graph = graph
        self._filter_index = FilterIndex.from_graph(graph)
        self._seed = seed

    # ------------------------------------------------------------------ dataset construction
    def build_labelled_split(self, split: str, seed_offset: int = 0) -> Tuple[TripleSet, np.ndarray]:
        """Positives from ``split`` plus an equal number of filtered negatives, with labels."""
        positives: TripleSet = getattr(self.graph, split)
        # Derive the sampling seed with a *stable* digest: Python's builtin ``hash``
        # is salted per process for strings, which made the sampled negatives -- and
        # therefore every classification accuracy -- vary between otherwise identical
        # runs (a per-process flake in the Table X benchmark).
        digest = hashlib.sha256(f"{self._seed}|{split}|{seed_offset}".encode("utf-8")).digest()
        negatives = generate_classification_negatives(
            positives, self.graph.num_entities, self._filter_index,
            seed=int.from_bytes(digest[:4], "little") & 0x7FFFFFFF,
        )
        combined = positives.concat(negatives)
        labels = np.concatenate([np.ones(len(positives)), np.zeros(len(negatives))])
        return combined, labels

    # ------------------------------------------------------------------ scoring
    @staticmethod
    def _scores(model: KGEModel, triples: TripleSet) -> np.ndarray:
        with no_grad():
            return model.score_triples(triples.array).data.copy()

    # ------------------------------------------------------------------ threshold fitting
    def fit_thresholds(self, model: KGEModel) -> Dict[int, float]:
        """Per-relation thresholds maximising accuracy on the validation split."""
        triples, labels = self.build_labelled_split("valid")
        scores = self._scores(model, triples)
        relations = triples.relations
        thresholds: Dict[int, float] = {}
        global_threshold = self._best_threshold(scores, labels)
        for relation in range(self.graph.num_relations):
            mask = relations == relation
            if mask.sum() < 2 or len(np.unique(labels[mask])) < 2:
                thresholds[relation] = global_threshold
                continue
            thresholds[relation] = self._best_threshold(scores[mask], labels[mask])
        return thresholds

    @staticmethod
    def _best_threshold(scores: np.ndarray, labels: np.ndarray) -> float:
        """Threshold maximising accuracy for a binary labelled score array."""
        order = np.argsort(scores)
        sorted_scores = scores[order]
        candidates = np.concatenate([[sorted_scores[0] - 1.0],
                                     (sorted_scores[1:] + sorted_scores[:-1]) / 2.0,
                                     [sorted_scores[-1] + 1.0]])
        best_threshold, best_accuracy = candidates[0], -1.0
        for threshold in candidates:
            accuracy = float(np.mean((scores > threshold) == labels.astype(bool)))
            if accuracy > best_accuracy:
                best_threshold, best_accuracy = float(threshold), accuracy
        return best_threshold

    # ------------------------------------------------------------------ evaluation
    def evaluate(self, model: KGEModel, thresholds: Optional[Dict[int, float]] = None) -> ClassificationResult:
        """Classify test positives + sampled negatives using the (fitted) thresholds."""
        thresholds = thresholds or self.fit_thresholds(model)
        triples, labels = self.build_labelled_split("test", seed_offset=1)
        scores = self._scores(model, triples)
        relations = triples.relations
        threshold_array = np.array([thresholds.get(int(r), 0.0) for r in relations])
        predictions = scores > threshold_array
        correct = predictions == labels.astype(bool)
        per_relation: Dict[int, float] = {}
        for relation in np.unique(relations):
            mask = relations == relation
            per_relation[int(relation)] = float(np.mean(correct[mask]))
        return ClassificationResult(
            accuracy=float(np.mean(correct)),
            per_relation_accuracy=per_relation,
            thresholds=thresholds,
            count=len(labels),
        )
