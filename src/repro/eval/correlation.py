"""Correlation between one-shot (supernet) and stand-alone performance (Figure 5).

The paper argues that the shallow bipartite supernet avoids the biased-evaluation problem
of deep supernets: the MRR a candidate structure obtains with the *shared* embeddings
correlates strongly with the MRR it obtains when trained from scratch.  The
:class:`CorrelationStudy` here collects exactly those pairs and summarises them with
Spearman / Pearson coefficients.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np
from scipy import stats


def spearman_correlation(x: Sequence[float], y: Sequence[float]) -> float:
    """Spearman rank correlation (0.0 when degenerate)."""
    x, y = np.asarray(x, dtype=float), np.asarray(y, dtype=float)
    if len(x) != len(y):
        raise ValueError("x and y must have the same length")
    if len(x) < 2 or np.allclose(x, x[0]) or np.allclose(y, y[0]):
        return 0.0
    result = stats.spearmanr(x, y)
    return float(result.correlation)


def pearson_correlation(x: Sequence[float], y: Sequence[float]) -> float:
    """Pearson linear correlation (0.0 when degenerate)."""
    x, y = np.asarray(x, dtype=float), np.asarray(y, dtype=float)
    if len(x) != len(y):
        raise ValueError("x and y must have the same length")
    if len(x) < 2 or np.allclose(x, x[0]) or np.allclose(y, y[0]):
        return 0.0
    result = stats.pearsonr(x, y)
    return float(result[0])


@dataclass
class CorrelationStudy:
    """Accumulates (one-shot metric, stand-alone metric) pairs for a set of candidates."""

    label: str = "oneshot_vs_standalone"
    one_shot: List[float] = field(default_factory=list)
    stand_alone: List[float] = field(default_factory=list)

    def add(self, one_shot_value: float, stand_alone_value: float) -> None:
        """Record one candidate's pair of measurements."""
        self.one_shot.append(float(one_shot_value))
        self.stand_alone.append(float(stand_alone_value))

    def __len__(self) -> int:
        return len(self.one_shot)

    def spearman(self) -> float:
        return spearman_correlation(self.one_shot, self.stand_alone)

    def pearson(self) -> float:
        return pearson_correlation(self.one_shot, self.stand_alone)

    def summary(self) -> Dict[str, float]:
        """Both coefficients plus the sample count."""
        return {
            "label": self.label,
            "count": len(self),
            "spearman": round(self.spearman(), 4),
            "pearson": round(self.pearson(), 4),
        }
