"""Filtered link-prediction ranking: MRR, Hit@1, Hit@3, Hit@10 and mean rank.

The protocol follows Bordes et al. (2013): for every evaluation triple (h, r, t) the model
ranks the true tail against every entity (and the true head likewise), after removing all
*other* known true triples from the candidate list ("filtered" setting).

This is the hottest path in the repository -- the MRR reward driving the ERAS controller
(Eq. 7), the early-stopping signal of ``Trainer.fit`` and every ranking table flow
through it -- so the whole pipeline is vectorized:

* scores come from the no-grad kernels (:meth:`~repro.models.kge.KGEModel.score_all_arrays`),
  skipping autodiff ``Tensor`` construction;
* filters come from the CSR :class:`~repro.kg.filter_index.FilterIndex` as flat
  ``(row, column)`` arrays applied in one fancy-indexed assignment per batch -- no
  per-triple Python loop, no dense per-row masks;
* the per-split flat filter arrays and the filter index itself are memoised
  (:meth:`~repro.kg.graph.KnowledgeGraph.filter_index`), because searches re-rank the
  same validation split hundreds of times.

Ranks are bit-identical to the retained naive reference implementation
(:mod:`repro.eval.reference`); ``tests/test_ranking_vectorized.py`` and the throughput
gate ``benchmarks/test_ranking_throughput.py`` enforce this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from repro.kg.filter_index import FilterIndex, FlatFilter
from repro.kg.graph import KnowledgeGraph
from repro.kg.triples import TripleSet
from repro.models.kge import KGEModel
from repro.scoring.kernels import ENTITY_TILE, normalize_chunk_size
from repro.utils.rng import SeedLike, new_rng


@dataclass(frozen=True)
class RankingMetrics:
    """Aggregate ranking metrics over an evaluation set."""

    mrr: float
    hit1: float
    hit3: float
    hit10: float
    mean_rank: float
    count: int

    def as_row(self) -> Dict[str, float]:
        """Dictionary row (percentages for the Hit metrics, as the paper reports them)."""
        return {
            "MRR": round(self.mrr, 4),
            "Hit@1": round(100.0 * self.hit1, 1),
            "Hit@3": round(100.0 * self.hit3, 1),
            "Hit@10": round(100.0 * self.hit10, 1),
            "MR": round(self.mean_rank, 1),
            "count": self.count,
        }

    @classmethod
    def from_ranks(cls, ranks: np.ndarray) -> "RankingMetrics":
        """Build metrics from an array of integer ranks (1 = best)."""
        ranks = np.asarray(ranks, dtype=np.float64)
        if ranks.size == 0:
            return cls(mrr=0.0, hit1=0.0, hit3=0.0, hit10=0.0, mean_rank=0.0, count=0)
        return cls(
            mrr=float(np.mean(1.0 / ranks)),
            hit1=float(np.mean(ranks <= 1)),
            hit3=float(np.mean(ranks <= 3)),
            hit10=float(np.mean(ranks <= 10)),
            mean_rank=float(np.mean(ranks)),
            count=int(ranks.size),
        )


class RankingEvaluator:
    """Computes filtered ranking metrics for a model on a dataset split.

    ``entity_chunk_size`` bounds peak memory: when set, each batch streams the
    candidate axis in chunks of (at most) that many entities instead of
    materialising the full ``(batch, num_entities)`` score matrix.  Chunk
    boundaries are rounded up to the absolute
    :data:`~repro.scoring.kernels.ENTITY_TILE` grid, so the streamed scores are
    bit-identical to the unchunked pass and the resulting ranks are exactly equal.
    Target scores are extracted in a first cheap pass over only the kernel tiles
    that contain a target, then every chunk is scored once for rank counting -- a
    bounded overhead (at most one extra sweep, shrinking as the entity count grows
    past ``batch_size * ENTITY_TILE``) bought for an ``O(batch * chunk)`` memory
    bound.
    """

    def __init__(
        self,
        graph: KnowledgeGraph,
        filtered: bool = True,
        batch_size: int = 128,
        entity_chunk_size: Optional[int] = None,
    ) -> None:
        self.graph = graph
        self.filtered = filtered
        self.batch_size = batch_size
        self.entity_chunk_size = (
            None if entity_chunk_size is None else normalize_chunk_size(entity_chunk_size)
        )
        # Shared per graph: constructing an evaluator per search candidate is free.
        self._filter_index: Optional[FilterIndex] = graph.filter_index() if filtered else None

    # ------------------------------------------------------------------ public API
    def evaluate(
        self,
        model: KGEModel,
        split: str = "test",
        sample_size: Optional[int] = None,
        seed: SeedLike = 0,
        relations: Optional[Iterable[int]] = None,
    ) -> RankingMetrics:
        """Ranking metrics on ``split`` (optionally restricted to given relations or a sample)."""
        triples = self._select_triples(split, sample_size, seed, relations)
        # Only whole-split arrays recur (and thus deserve a slot in the graph-shared
        # filter memo); sampled or relation-restricted selections are one-offs.
        full_split = triples is self._split_triples(split)
        ranks = self.ranks(model, triples, _memoize_filters=full_split)
        return RankingMetrics.from_ranks(ranks)

    def per_relation(self, model: KGEModel, split: str = "test") -> Dict[int, RankingMetrics]:
        """Ranking metrics per relation id (used by the pattern-level evaluation).

        Triples are grouped by relation with one stable argsort pass instead of a full
        array rescan per unique relation; within each group the original split order is
        preserved, so the per-relation ranks match a ``for_relation`` scan exactly.
        """
        array = self._split_triples(split).array
        results: Dict[int, RankingMetrics] = {}
        if len(array) == 0:
            return results
        order = np.argsort(array[:, 1], kind="stable")
        grouped = array[order]
        relations, starts = np.unique(grouped[:, 1], return_index=True)
        bounds = np.append(starts, len(grouped))
        for relation, start, stop in zip(relations, bounds[:-1], bounds[1:]):
            subset = TripleSet(grouped[start:stop].copy())
            # One-off subsets bypass the filter memo so they cannot evict the hot
            # whole-split entries.
            results[int(relation)] = RankingMetrics.from_ranks(
                self.ranks(model, subset, _memoize_filters=False)
            )
        return results

    def ranks(self, model: KGEModel, triples: TripleSet, _memoize_filters: bool = True) -> np.ndarray:
        """Filtered ranks (tail-prediction and head-prediction interleaved) of all triples."""
        if len(triples) == 0:
            return np.array([], dtype=np.int64)
        array = triples.array
        tail_filter, head_filter = self._filters_for(array, _memoize_filters)
        all_ranks = []
        for start in range(0, len(array), self.batch_size):
            stop = min(start + self.batch_size, len(array))
            batch = array[start:stop]
            all_ranks.append(self._batch_ranks(model, batch, "tail", tail_filter, start, stop))
            all_ranks.append(self._batch_ranks(model, batch, "head", head_filter, start, stop))
        return np.concatenate(all_ranks)

    def validation_mrr(self, model: KGEModel, sample_size: Optional[int] = None, seed: SeedLike = 0) -> float:
        """Convenience wrapper: MRR on the validation split (the reward signal of ERAS)."""
        return self.evaluate(model, split="valid", sample_size=sample_size, seed=seed).mrr

    # ------------------------------------------------------------------ internals
    def _split_triples(self, split: str) -> TripleSet:
        if split not in ("train", "valid", "test"):
            raise ValueError(f"unknown split {split!r}")
        return getattr(self.graph, split)

    def _select_triples(
        self,
        split: str,
        sample_size: Optional[int],
        seed: SeedLike,
        relations: Optional[Iterable[int]],
    ) -> TripleSet:
        triples = self._split_triples(split)
        if relations is not None:
            triples = triples.for_relations(relations)
        if sample_size is not None and sample_size < len(triples):
            rng = new_rng(seed)
            idx = rng.choice(len(triples), size=sample_size, replace=False)
            triples = TripleSet(triples.array[idx].copy())
        return triples

    def _filters_for(
        self, array: np.ndarray, memoize: bool = True
    ) -> Tuple[Optional[FlatFilter], Optional[FlatFilter]]:
        """Flat exclusion arrays of a whole triple array (memoised on the filter index)."""
        if self._filter_index is None:
            return None, None
        return (
            self._filter_index.flat_filter(array, "tail", memoize=memoize),
            self._filter_index.flat_filter(array, "head", memoize=memoize),
        )

    def _batch_ranks(
        self,
        model: KGEModel,
        batch: np.ndarray,
        direction: str,
        flat_filter: Optional[FlatFilter],
        start: int,
        stop: int,
    ) -> np.ndarray:
        chunk = self.entity_chunk_size
        if chunk is not None and chunk < model.num_entities:
            return self._batch_ranks_chunked(model, batch, direction, flat_filter, start, stop, chunk)
        # score_all_arrays returns a fresh writable array, so masking in place is safe
        # (the old Tensor path needed a defensive .data.copy() here).
        scores = model.score_all_arrays(batch, direction)
        targets = batch[:, 2] if direction == "tail" else batch[:, 0]
        row_idx = np.arange(len(batch))
        target_scores = scores[row_idx, targets]  # fancy indexing: already a copy
        if flat_filter is not None:
            rows, cols = flat_filter.batch_indices(start, stop)
            scores[rows, cols] = -np.inf
            # The flat filter excludes *all* known entities, including each triple's own
            # target; restoring the target scores yields exactly the classic protocol
            # (mask known-but-other candidates, keep the target).
            scores[row_idx, targets] = target_scores
        # Rank = 1 + number of candidates scoring strictly higher; ties broken optimistically
        # by half the tied count to avoid both over- and under-estimating systematically.
        higher = (scores > target_scores[:, None]).sum(axis=1)
        ties = (scores == target_scores[:, None]).sum(axis=1) - 1
        ranks = 1 + higher + ties // 2
        return ranks.astype(np.int64)

    def _batch_ranks_chunked(
        self,
        model: KGEModel,
        batch: np.ndarray,
        direction: str,
        flat_filter: Optional[FlatFilter],
        start: int,
        stop: int,
        chunk: int,
    ) -> np.ndarray:
        """Memory-bounded twin of :meth:`_batch_ranks` streaming entity chunks.

        Because the chunk grid sits on the absolute kernel tile grid, every chunk's
        scores are bit-identical to the corresponding columns of the full matrix, so
        the accumulated ``higher``/``ties`` counts -- and therefore the ranks -- are
        exactly those of the unchunked path.
        """
        num_entities = model.num_entities
        n = len(batch)
        targets = batch[:, 2] if direction == "tail" else batch[:, 0]
        row_idx = np.arange(n)
        filter_rows = filter_cols = None
        if flat_filter is not None:
            filter_rows, filter_cols = flat_filter.batch_indices(start, stop)
        # Pass 1: exact target scores, visiting only the kernel *tiles* that hold a
        # target -- the smallest bit-identical scoring unit, so this pass costs a
        # fraction of a full sweep even when ``chunk`` spans many tiles.  The full
        # batch is scored each time (never a row subset) so the extracted values
        # carry the exact bits the counting pass will see.
        target_scores = np.empty(n, dtype=np.float64)
        for index in np.unique(targets // ENTITY_TILE):
            a = int(index) * ENTITY_TILE
            b = min(a + ENTITY_TILE, num_entities)
            scores = model.score_chunk_entities(batch, direction, a, b)
            in_tile = (targets >= a) & (targets < b)
            target_scores[in_tile] = scores[row_idx[in_tile], targets[in_tile] - a]
        # Pass 2: stream every chunk, mask, and accumulate rank counts.
        higher = np.zeros(n, dtype=np.int64)
        ties = np.zeros(n, dtype=np.int64)
        for a in range(0, num_entities, chunk):
            b = min(a + chunk, num_entities)
            scores = model.score_chunk_entities(batch, direction, a, b)
            if flat_filter is not None:
                selected = (filter_cols >= a) & (filter_cols < b)
                scores[filter_rows[selected], filter_cols[selected] - a] = -np.inf
                in_chunk = (targets >= a) & (targets < b)
                scores[row_idx[in_chunk], targets[in_chunk] - a] = target_scores[in_chunk]
            higher += (scores > target_scores[:, None]).sum(axis=1)
            ties += (scores == target_scores[:, None]).sum(axis=1)
        # ``ties`` counted each row's own target once; subtract it exactly as the
        # unchunked path does before the optimistic half-tie correction.
        ranks = 1 + higher + (ties - 1) // 2
        return ranks.astype(np.int64)
