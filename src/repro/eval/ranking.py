"""Filtered link-prediction ranking: MRR, Hit@1, Hit@3, Hit@10 and mean rank.

The protocol follows Bordes et al. (2013): for every evaluation triple (h, r, t) the model
ranks the true tail against every entity (and the true head likewise), after removing all
*other* known true triples from the candidate list ("filtered" setting).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.autodiff import no_grad
from repro.kg.filter_index import FilterIndex
from repro.kg.graph import KnowledgeGraph
from repro.kg.triples import TripleSet
from repro.models.kge import KGEModel
from repro.utils.rng import SeedLike, new_rng


@dataclass(frozen=True)
class RankingMetrics:
    """Aggregate ranking metrics over an evaluation set."""

    mrr: float
    hit1: float
    hit3: float
    hit10: float
    mean_rank: float
    count: int

    def as_row(self) -> Dict[str, float]:
        """Dictionary row (percentages for the Hit metrics, as the paper reports them)."""
        return {
            "MRR": round(self.mrr, 4),
            "Hit@1": round(100.0 * self.hit1, 1),
            "Hit@3": round(100.0 * self.hit3, 1),
            "Hit@10": round(100.0 * self.hit10, 1),
            "MR": round(self.mean_rank, 1),
            "count": self.count,
        }

    @classmethod
    def from_ranks(cls, ranks: np.ndarray) -> "RankingMetrics":
        """Build metrics from an array of integer ranks (1 = best)."""
        ranks = np.asarray(ranks, dtype=np.float64)
        if ranks.size == 0:
            return cls(mrr=0.0, hit1=0.0, hit3=0.0, hit10=0.0, mean_rank=0.0, count=0)
        return cls(
            mrr=float(np.mean(1.0 / ranks)),
            hit1=float(np.mean(ranks <= 1)),
            hit3=float(np.mean(ranks <= 3)),
            hit10=float(np.mean(ranks <= 10)),
            mean_rank=float(np.mean(ranks)),
            count=int(ranks.size),
        )


class RankingEvaluator:
    """Computes filtered ranking metrics for a model on a dataset split."""

    def __init__(
        self,
        graph: KnowledgeGraph,
        filtered: bool = True,
        batch_size: int = 128,
        splits: Sequence[str] = ("valid", "test"),
    ) -> None:
        self.graph = graph
        self.filtered = filtered
        self.batch_size = batch_size
        self._filter_index = FilterIndex.from_graph(graph) if filtered else None

    # ------------------------------------------------------------------ public API
    def evaluate(
        self,
        model: KGEModel,
        split: str = "test",
        sample_size: Optional[int] = None,
        seed: SeedLike = 0,
        relations: Optional[Iterable[int]] = None,
    ) -> RankingMetrics:
        """Ranking metrics on ``split`` (optionally restricted to given relations or a sample)."""
        triples = self._select_triples(split, sample_size, seed, relations)
        ranks = self.ranks(model, triples)
        return RankingMetrics.from_ranks(ranks)

    def per_relation(self, model: KGEModel, split: str = "test") -> Dict[int, RankingMetrics]:
        """Ranking metrics per relation id (used by the pattern-level evaluation)."""
        triples = self._split_triples(split)
        results: Dict[int, RankingMetrics] = {}
        for relation in np.unique(triples.relations):
            subset = triples.for_relation(int(relation))
            results[int(relation)] = RankingMetrics.from_ranks(self.ranks(model, subset))
        return results

    def ranks(self, model: KGEModel, triples: TripleSet) -> np.ndarray:
        """Filtered ranks (tail-prediction and head-prediction interleaved) of all triples."""
        if len(triples) == 0:
            return np.array([], dtype=np.int64)
        all_ranks = []
        array = triples.array
        with no_grad():
            for start in range(0, len(array), self.batch_size):
                batch = array[start : start + self.batch_size]
                all_ranks.append(self._batch_ranks(model, batch, direction="tail"))
                all_ranks.append(self._batch_ranks(model, batch, direction="head"))
        return np.concatenate(all_ranks)

    def validation_mrr(self, model: KGEModel, sample_size: Optional[int] = None, seed: SeedLike = 0) -> float:
        """Convenience wrapper: MRR on the validation split (the reward signal of ERAS)."""
        return self.evaluate(model, split="valid", sample_size=sample_size, seed=seed).mrr

    # ------------------------------------------------------------------ internals
    def _split_triples(self, split: str) -> TripleSet:
        if split not in ("train", "valid", "test"):
            raise ValueError(f"unknown split {split!r}")
        return getattr(self.graph, split)

    def _select_triples(
        self,
        split: str,
        sample_size: Optional[int],
        seed: SeedLike,
        relations: Optional[Iterable[int]],
    ) -> TripleSet:
        triples = self._split_triples(split)
        if relations is not None:
            triples = triples.for_relations(relations)
        if sample_size is not None and sample_size < len(triples):
            rng = new_rng(seed)
            idx = rng.choice(len(triples), size=sample_size, replace=False)
            triples = TripleSet(triples.array[idx].copy())
        return triples

    def _batch_ranks(self, model: KGEModel, batch: np.ndarray, direction: str) -> np.ndarray:
        if direction == "tail":
            scores = model.score_all_tails(batch).data.copy()
            targets = batch[:, 2]
        else:
            scores = model.score_all_heads(batch).data.copy()
            targets = batch[:, 0]
        if self._filter_index is not None:
            for row, (head, relation, tail) in enumerate(batch):
                if direction == "tail":
                    mask = self._filter_index.tail_filter_mask(int(head), int(relation), int(tail), self.graph.num_entities)
                else:
                    mask = self._filter_index.head_filter_mask(int(relation), int(tail), int(head), self.graph.num_entities)
                scores[row, mask] = -np.inf
        target_scores = scores[np.arange(len(batch)), targets]
        # Rank = 1 + number of candidates scoring strictly higher; ties broken optimistically
        # by half the tied count to avoid both over- and under-estimating systematically.
        higher = (scores > target_scores[:, None]).sum(axis=1)
        ties = (scores == target_scores[:, None]).sum(axis=1) - 1
        ranks = 1 + higher + ties // 2
        return ranks.astype(np.int64)
