"""Relation-pattern-level evaluation (Tables III and VIII of the paper).

The paper reports Hit@1 separately for the symmetric and anti-symmetric relations of each
benchmark.  :class:`PatternLevelEvaluator` generalises this: it groups the evaluation
triples by the detected (or planted) pattern of their relation and reports ranking metrics
per pattern.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional

import numpy as np

from repro.eval.ranking import RankingEvaluator, RankingMetrics
from repro.kg.graph import KnowledgeGraph
from repro.kg.patterns import RelationPattern, RelationPatternAnalyzer
from repro.models.kge import KGEModel


@dataclass(frozen=True)
class PatternMetrics:
    """Ranking metrics restricted to relations of one pattern."""

    pattern: RelationPattern
    relations: tuple
    metrics: RankingMetrics

    def as_row(self) -> Dict[str, object]:
        row: Dict[str, object] = {"pattern": self.pattern.value, "#relations": len(self.relations)}
        row.update(self.metrics.as_row())
        return row


class PatternLevelEvaluator:
    """Evaluate a model separately on each relation-pattern group of a dataset."""

    def __init__(
        self,
        graph: KnowledgeGraph,
        analyzer: Optional[RelationPatternAnalyzer] = None,
        pattern_of_relation: Optional[Mapping[int, RelationPattern]] = None,
        filtered: bool = True,
    ) -> None:
        """``pattern_of_relation`` overrides detection (e.g. with the generator's planted labels)."""
        self.graph = graph
        self._ranking = RankingEvaluator(graph, filtered=filtered)
        if pattern_of_relation is not None:
            self._pattern_of_relation = dict(pattern_of_relation)
        else:
            analyzer = analyzer or RelationPatternAnalyzer()
            self._pattern_of_relation = {
                report.relation: report.pattern for report in analyzer.analyze(graph)
            }

    def relations_of(self, pattern: RelationPattern) -> List[int]:
        """Relation ids labelled with ``pattern``."""
        return [r for r, p in self._pattern_of_relation.items() if p is pattern]

    def evaluate_pattern(self, model: KGEModel, pattern: RelationPattern, split: str = "test") -> PatternMetrics:
        """Ranking metrics restricted to the relations of ``pattern``."""
        relations = self.relations_of(pattern)
        metrics = self._ranking.evaluate(model, split=split, relations=relations) if relations else RankingMetrics.from_ranks(np.array([]))
        return PatternMetrics(pattern=pattern, relations=tuple(relations), metrics=metrics)

    def evaluate_all(self, model: KGEModel, split: str = "test",
                     patterns: Optional[Iterable[RelationPattern]] = None) -> Dict[RelationPattern, PatternMetrics]:
        """Metrics for every requested pattern (default: all four)."""
        patterns = list(patterns) if patterns is not None else list(RelationPattern)
        return {pattern: self.evaluate_pattern(model, pattern, split=split) for pattern in patterns}

    def hit1_by_pattern(self, model: KGEModel, split: str = "test") -> Dict[str, float]:
        """The Table III / Table VIII view: Hit@1 (in %) per pattern."""
        results = self.evaluate_all(model, split=split)
        return {
            pattern.value: round(100.0 * item.metrics.hit1, 1)
            for pattern, item in results.items()
            if item.relations
        }
