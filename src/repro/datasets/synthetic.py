"""Pattern-controlled synthetic knowledge-graph generator.

The generator builds a *latent bilinear world model*: every entity gets a ground-truth
latent vector and every relation a latent matrix whose algebraic form enforces the
desired semantic pattern (diagonal => symmetric, skew-symmetric => anti-symmetric,
transpose of a partner => inverse, unconstrained => general asymmetric).  True triples
are the highest-scoring (head, tail) pairs under this latent model.  The resulting graphs

* contain relations whose patterns are recoverable by
  :class:`repro.kg.patterns.RelationPatternAnalyzer` (verified by tests), and
* are learnable by bilinear scoring functions, so differences between scoring-function
  structures (the point of the paper) show up at small scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.kg.graph import KnowledgeGraph
from repro.kg.patterns import RelationPattern
from repro.kg.triples import TripleSet
from repro.kg.vocab import Vocabulary
from repro.utils.rng import SeedLike, new_rng


@dataclass(frozen=True)
class PatternSpec:
    """How many relations of a given semantic pattern a synthetic benchmark contains."""

    pattern: RelationPattern
    count: int

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError(f"count must be non-negative, got {self.count}")
        if self.pattern is RelationPattern.INVERSE and self.count % 2 != 0:
            raise ValueError("inverse relations are generated in pairs; count must be even")


@dataclass(frozen=True)
class SyntheticKGConfig:
    """Full configuration of a synthetic benchmark."""

    name: str
    num_entities: int
    pattern_specs: Tuple[PatternSpec, ...]
    triples_per_relation: int = 80
    latent_dim: int = 12
    valid_fraction: float = 0.08
    test_fraction: float = 0.08
    noise_fraction: float = 0.02

    def __post_init__(self) -> None:
        if self.num_entities < 10:
            raise ValueError("num_entities must be at least 10")
        if self.triples_per_relation < 4:
            raise ValueError("triples_per_relation must be at least 4")
        if self.latent_dim < 2:
            raise ValueError("latent_dim must be at least 2")
        if not 0.0 < self.valid_fraction < 0.5 or not 0.0 < self.test_fraction < 0.5:
            raise ValueError("valid_fraction and test_fraction must be in (0, 0.5)")
        if not 0.0 <= self.noise_fraction < 0.5:
            raise ValueError("noise_fraction must be in [0, 0.5)")
        if self.num_relations == 0:
            raise ValueError("at least one relation must be specified")

    @property
    def num_relations(self) -> int:
        """Total number of relations across all pattern specs."""
        return sum(spec.count for spec in self.pattern_specs)

    def scaled(self, scale: float) -> "SyntheticKGConfig":
        """Return a copy with entity and triple counts multiplied by ``scale`` (>= 0.1)."""
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        return SyntheticKGConfig(
            name=self.name,
            num_entities=max(10, int(round(self.num_entities * scale))),
            pattern_specs=self.pattern_specs,
            triples_per_relation=max(4, int(round(self.triples_per_relation * scale))),
            latent_dim=self.latent_dim,
            valid_fraction=self.valid_fraction,
            test_fraction=self.test_fraction,
            noise_fraction=self.noise_fraction,
        )


class SyntheticKGGenerator:
    """Generate a :class:`~repro.kg.graph.KnowledgeGraph` from a :class:`SyntheticKGConfig`."""

    def __init__(self, config: SyntheticKGConfig) -> None:
        self.config = config

    # ------------------------------------------------------------------ public API
    def generate(self, seed: SeedLike = 0) -> KnowledgeGraph:
        """Build the dataset deterministically from ``seed``."""
        rng = new_rng(seed)
        config = self.config
        latent_entities = rng.normal(size=(config.num_entities, config.latent_dim))
        latent_entities /= np.linalg.norm(latent_entities, axis=1, keepdims=True)

        relation_patterns = self._relation_pattern_assignment()
        relation_matrices, mirror_of = self._relation_matrices(relation_patterns, rng)

        triples_by_relation: Dict[int, List[Tuple[int, int, int]]] = {}
        for relation, pattern in enumerate(relation_patterns):
            if relation in mirror_of:
                # Second member of an inverse pair: mirror the partner's triples so the
                # inversion pattern is planted exactly (as in WN18 / FB15k duplicates).
                partner = mirror_of[relation]
                triples_by_relation[relation] = [
                    (tail, relation, head) for head, _, tail in triples_by_relation[partner]
                ]
            else:
                triples_by_relation[relation] = self._triples_for_relation(
                    relation, pattern, relation_matrices[relation], latent_entities, rng
                )
        triples = [triple for rows in triples_by_relation.values() for triple in rows]
        triple_set = TripleSet(np.asarray(triples, dtype=np.int64)).unique()

        train, valid, test = self._split(triple_set, rng)
        train, valid, test = self._move_unseen_to_train(train, valid, test)

        return KnowledgeGraph(
            name=config.name,
            num_entities=config.num_entities,
            num_relations=config.num_relations,
            train=train,
            valid=valid,
            test=test,
            entity_vocab=Vocabulary.from_ids(config.num_entities, "e"),
            relation_vocab=Vocabulary.from_ids(config.num_relations, "r"),
        )

    def relation_pattern_labels(self) -> List[RelationPattern]:
        """The planted pattern of every relation id (ground truth for tests and benches)."""
        return self._relation_pattern_assignment()

    # ------------------------------------------------------------------ internals
    def _relation_pattern_assignment(self) -> List[RelationPattern]:
        labels: List[RelationPattern] = []
        for spec in self.config.pattern_specs:
            labels.extend([spec.pattern] * spec.count)
        return labels

    def _relation_matrices(
        self, patterns: List[RelationPattern], rng: np.random.Generator
    ) -> Tuple[List[np.ndarray], Dict[int, int]]:
        """Latent matrices per relation plus the inverse-pair mirroring map.

        ``mirror_of[r] = r'`` means relation r is generated as the exact reverse of r'.
        """
        dim = self.config.latent_dim
        matrices: List[Optional[np.ndarray]] = [None] * len(patterns)
        mirror_of: Dict[int, int] = {}
        inverse_waiting: Optional[int] = None
        for relation, pattern in enumerate(patterns):
            if pattern is RelationPattern.SYMMETRIC:
                matrices[relation] = np.diag(rng.normal(size=dim))
            elif pattern is RelationPattern.ANTI_SYMMETRIC:
                base = rng.normal(size=(dim, dim))
                matrices[relation] = base - base.T
            elif pattern is RelationPattern.INVERSE:
                if inverse_waiting is None:
                    matrices[relation] = rng.normal(size=(dim, dim))
                    inverse_waiting = relation
                else:
                    matrices[relation] = matrices[inverse_waiting].T
                    mirror_of[relation] = inverse_waiting
                    inverse_waiting = None
            else:  # general asymmetric
                matrices[relation] = rng.normal(size=(dim, dim))
        return [m for m in matrices if m is not None], mirror_of

    def _triples_for_relation(
        self,
        relation: int,
        pattern: RelationPattern,
        matrix: np.ndarray,
        latent_entities: np.ndarray,
        rng: np.random.Generator,
        top_k: int = 3,
    ) -> List[Tuple[int, int, int]]:
        """Sample triples for one relation by per-head nearest-tail selection.

        For every sampled head entity the tail is drawn from the ``top_k`` best-scoring
        candidates under the latent bilinear model, which spreads the facts over many
        entities and keeps tail prediction learnable.
        """
        config = self.config
        num_entities = config.num_entities
        scores = latent_entities @ matrix @ latent_entities.T
        np.fill_diagonal(scores, -np.inf)
        target = config.triples_per_relation

        def sample_pairs(score_matrix: np.ndarray, count: int) -> List[Tuple[int, int]]:
            heads = rng.choice(num_entities, size=count, replace=count > num_entities)
            pairs = []
            for head in heads:
                top = np.argpartition(score_matrix[head], -top_k)[-top_k:]
                tail = int(rng.choice(top))
                if tail != int(head):
                    pairs.append((int(head), tail))
            return pairs

        if pattern is RelationPattern.SYMMETRIC:
            symmetric_scores = scores + scores.T
            np.fill_diagonal(symmetric_scores, -np.inf)
            pairs = sample_pairs(symmetric_scores, max(1, target // 2))
            triples = [(h, relation, t) for h, t in pairs]
            triples += [(t, relation, h) for h, t in pairs]
        else:
            pairs = sample_pairs(scores, target)
            triples = [(h, relation, t) for h, t in pairs]
            if pattern is RelationPattern.ANTI_SYMMETRIC:
                # Remove any accidental reverse duplicates so the planted pattern is clean.
                seen = set()
                filtered = []
                for head, _, tail in triples:
                    if (tail, head) in seen:
                        continue
                    seen.add((head, tail))
                    filtered.append((head, relation, tail))
                triples = filtered
            elif pattern is RelationPattern.GENERAL_ASYMMETRIC:
                # General asymmetry means the reverse *sometimes* holds: materialise the
                # reverse of roughly a third of the pairs so the relation is neither
                # symmetric nor anti-symmetric under the pattern analyzer.
                reverse_count = max(1, len(triples) // 3)
                reverse_idx = rng.choice(len(triples), size=reverse_count, replace=False)
                triples += [(triples[i][2], relation, triples[i][0]) for i in reverse_idx]

        noise_count = int(round(self.config.noise_fraction * len(triples)))
        for _ in range(noise_count):
            head = int(rng.integers(0, num_entities))
            tail = int(rng.integers(0, num_entities))
            if head != tail:
                triples.append((head, relation, tail))
        return triples

    def _split(
        self, triples: TripleSet, rng: np.random.Generator
    ) -> Tuple[TripleSet, TripleSet, TripleSet]:
        """Split per relation so that every relation is represented in the training set."""
        config = self.config
        train_rows: List[np.ndarray] = []
        valid_rows: List[np.ndarray] = []
        test_rows: List[np.ndarray] = []
        for relation in range(config.num_relations):
            relation_triples = triples.for_relation(relation)
            if len(relation_triples) == 0:
                continue
            order = rng.permutation(len(relation_triples))
            array = relation_triples.array[order]
            n_valid = max(1, int(round(config.valid_fraction * len(array))))
            n_test = max(1, int(round(config.test_fraction * len(array))))
            n_train = len(array) - n_valid - n_test
            if n_train < 1:
                n_train, n_valid, n_test = len(array), 0, 0
            train_rows.append(array[:n_train])
            if n_valid:
                valid_rows.append(array[n_train : n_train + n_valid])
            if n_test:
                test_rows.append(array[n_train + n_valid :])

        def build(rows: List[np.ndarray]) -> TripleSet:
            if not rows:
                return TripleSet.empty()
            return TripleSet(np.concatenate(rows, axis=0))

        return build(train_rows), build(valid_rows), build(test_rows)

    @staticmethod
    def _move_unseen_to_train(
        train: TripleSet, valid: TripleSet, test: TripleSet
    ) -> Tuple[TripleSet, TripleSet, TripleSet]:
        """Move valid/test triples whose entities never occur in training into the training split."""
        seen = set(int(e) for e in train.entities())

        def partition(split: TripleSet) -> Tuple[List[Tuple[int, int, int]], List[Tuple[int, int, int]]]:
            kept, moved = [], []
            for head, relation, tail in split:
                if head in seen and tail in seen:
                    kept.append((head, relation, tail))
                else:
                    moved.append((head, relation, tail))
                    seen.add(head)
                    seen.add(tail)
            return kept, moved

        valid_kept, valid_moved = partition(valid)
        test_kept, test_moved = partition(test)
        new_train = np.concatenate(
            [
                train.array,
                np.asarray(valid_moved, dtype=np.int64).reshape(-1, 3),
                np.asarray(test_moved, dtype=np.int64).reshape(-1, 3),
            ],
            axis=0,
        )
        return (
            TripleSet(new_train),
            TripleSet(np.asarray(valid_kept, dtype=np.int64).reshape(-1, 3)),
            TripleSet(np.asarray(test_kept, dtype=np.int64).reshape(-1, 3)),
        )
