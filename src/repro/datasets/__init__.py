"""Benchmark datasets.

Because the environment has no network access, the five public benchmarks used by the
paper (WN18, WN18RR, FB15k, FB15k-237, YAGO3-10) are replaced by pattern-controlled
synthetic counterparts of CPU-friendly size (see DESIGN.md, "Substitutions").  Each
synthetic benchmark plants relations with known semantic patterns in proportions that
mimic the original dataset, which is the property the paper's relation-aware argument and
pattern-level evaluation rely on.

Real benchmark directories in the standard ``train.txt``/``valid.txt``/``test.txt`` layout
can still be loaded with :func:`repro.kg.load_tsv_dataset` and used everywhere a synthetic
graph is used.
"""

from repro.datasets.synthetic import (
    PatternSpec,
    SyntheticKGConfig,
    SyntheticKGGenerator,
)
from repro.datasets.registry import (
    BENCHMARK_NAMES,
    benchmark_config,
    load_benchmark,
)

__all__ = [
    "PatternSpec",
    "SyntheticKGConfig",
    "SyntheticKGGenerator",
    "BENCHMARK_NAMES",
    "benchmark_config",
    "load_benchmark",
]
