"""Benchmark datasets.

Because the environment has no network access, the five public benchmarks used by the
paper (WN18, WN18RR, FB15k, FB15k-237, YAGO3-10) are replaced by pattern-controlled
synthetic counterparts of CPU-friendly size (see DESIGN.md, "Substitutions").  Each
synthetic benchmark plants relations with known semantic patterns in proportions that
mimic the original dataset, which is the property the paper's relation-aware argument and
pattern-level evaluation rely on.

Real benchmark directories in the standard ``train.txt``/``valid.txt``/``test.txt``
layout (FB15k-237, WN18RR, ...) are first-class citizens: :func:`resolve_dataset`
accepts either a registry name or a directory path, fronts the TSV parser with the
binary cache of :mod:`repro.kg.cache`, and is the single entry point every CLI
subcommand and runner uses (see ``docs/DATASETS.md``).
"""

from repro.datasets.synthetic import (
    PatternSpec,
    SyntheticKGConfig,
    SyntheticKGGenerator,
)
from repro.datasets.registry import (
    BENCHMARK_NAMES,
    benchmark_config,
    load_benchmark,
)
from repro.datasets.resolve import (
    DatasetResolutionError,
    check_dataset_spec,
    dataset_label,
    is_directory_spec,
    resolve_dataset,
)

__all__ = [
    "PatternSpec",
    "SyntheticKGConfig",
    "SyntheticKGGenerator",
    "BENCHMARK_NAMES",
    "benchmark_config",
    "load_benchmark",
    "DatasetResolutionError",
    "check_dataset_spec",
    "dataset_label",
    "is_directory_spec",
    "resolve_dataset",
]
