"""Unified dataset resolution: registry benchmark names *or* on-disk TSV directories.

Every surface that accepts ``--dataset`` (``search``/``train``/``serve``/``sweep``/
``bench``, :class:`~repro.runtime.runner.SearchRunner`, the sweep orchestrator) funnels
through :func:`resolve_dataset`, so a directory containing ``train.txt`` /
``valid.txt`` / ``test.txt`` works everywhere a synthetic benchmark name does:

- a spec naming a registered benchmark (``fb15k_like``, ...) builds the synthetic
  graph via :func:`~repro.datasets.registry.load_benchmark`, honouring ``scale`` and
  ``seed``;
- a path-like spec (contains a separator, or is a directory on disk) loads the TSV
  layout through the binary cache (:func:`~repro.kg.cache.load_dataset_directory`);
  ``scale``/``seed`` do not apply to real data and a non-default ``scale`` is
  rejected loudly;
- a bare name that is *both* a registered benchmark and a local directory is
  ambiguous and refused -- disambiguate with ``./name`` for the directory;
- anything else raises :class:`DatasetResolutionError` listing the registry.

Directory loads are memoised per resolved path and revalidated by content digest, so
repeated resolution within one process returns the *same* graph object -- which is
what keeps the per-graph filter-index and evaluator memos effective.
"""

from __future__ import annotations

import hashlib
import os
import re
from pathlib import Path
from typing import Dict, Tuple, Union

from repro.datasets.registry import BENCHMARK_NAMES, load_benchmark
from repro.kg.cache import dataset_digest, load_dataset_directory
from repro.kg.graph import KnowledgeGraph
from repro.kg.io import is_dataset_directory

DatasetSpec = Union[str, Path]


class DatasetResolutionError(ValueError):
    """A dataset spec that names nothing, or names two things at once."""


def _looks_like_path(spec: DatasetSpec) -> bool:
    if isinstance(spec, Path):
        return True
    text = str(spec)
    return (
        os.sep in text
        or "/" in text
        or text.startswith("~")
        or text in (".", "..")
        or text.startswith("./")
        or text.startswith("../")
    )


def is_directory_spec(spec: DatasetSpec) -> bool:
    """True when ``spec`` denotes an on-disk dataset directory rather than a registry name."""
    if _looks_like_path(spec):
        return True
    return str(spec) not in BENCHMARK_NAMES and is_dataset_directory(str(spec))


def check_dataset_spec(spec: DatasetSpec, scale: float = 1.0) -> None:
    """Validate a spec without loading anything (used by sweep-grid validation).

    Raises :class:`DatasetResolutionError` for unknown names, ambiguous names,
    non-dataset directories, and ``scale`` applied to real data.
    """
    text = str(spec)
    if not _looks_like_path(spec) and text in BENCHMARK_NAMES:
        if is_dataset_directory(text):
            raise DatasetResolutionError(
                f"dataset spec {text!r} is ambiguous: it names a registered benchmark "
                f"AND an existing directory; use {'./' + text!r} for the directory"
            )
        return
    if is_directory_spec(spec):
        path = Path(text).expanduser()
        if not is_dataset_directory(path):
            raise DatasetResolutionError(
                f"{path} is not a dataset directory (need train.txt, valid.txt, test.txt)"
            )
        if scale != 1.0:
            raise DatasetResolutionError(
                f"--scale applies only to synthetic registry benchmarks, not to the "
                f"on-disk dataset {path}"
            )
        return
    raise DatasetResolutionError(
        f"unknown dataset {text!r}: not a registered benchmark "
        f"({', '.join(BENCHMARK_NAMES)}) and not a directory containing "
        f"train.txt/valid.txt/test.txt"
    )


# Directory loads memoised per resolved path, revalidated by content digest so an
# edited dataset is transparently reloaded.  Bounded FIFO: sweeps touch few datasets.
_DIRECTORY_MEMO: Dict[str, Tuple[str, KnowledgeGraph]] = {}
_DIRECTORY_MEMO_SIZE = 8


def resolve_dataset(
    spec: DatasetSpec,
    scale: float = 1.0,
    seed: int = 0,
    use_cache: bool = True,
    mmap: bool = True,
) -> KnowledgeGraph:
    """Load the graph a dataset spec denotes (see module docstring for the rules)."""
    check_dataset_spec(spec, scale=scale)
    text = str(spec)
    if not _looks_like_path(spec) and text in BENCHMARK_NAMES:
        return load_benchmark(text, scale=scale, seed=seed)
    path = Path(text).expanduser().resolve()
    key = str(path)
    if use_cache:
        digest = dataset_digest(path)
        memo = _DIRECTORY_MEMO.get(key)
        if memo is not None and memo[0] == digest:
            return memo[1]
        graph = load_dataset_directory(path, use_cache=True, mmap=mmap)
        while len(_DIRECTORY_MEMO) >= _DIRECTORY_MEMO_SIZE:
            _DIRECTORY_MEMO.pop(next(iter(_DIRECTORY_MEMO)))
        _DIRECTORY_MEMO[key] = (digest, graph)
        return graph
    return load_dataset_directory(path, use_cache=False, mmap=mmap)


def dataset_label(spec: DatasetSpec) -> str:
    """A registry/filesystem-safe label for a dataset spec.

    Registry names pass through unchanged (existing artifact names and shard ids stay
    stable).  Directory specs become ``<sanitised-basename>-<6-hex digest of the
    resolved path>`` -- safe for ``ModelArtifactRegistry`` names and shard
    directories, and collision-free across distinct paths with equal basenames.
    """
    text = str(spec)
    if not _looks_like_path(spec) and text in BENCHMARK_NAMES:
        return text
    path = Path(text).expanduser().resolve()
    base = re.sub(r"[^A-Za-z0-9._-]", "-", path.name) or "dataset"
    if not re.match(r"[A-Za-z0-9]", base):
        base = f"d{base}"
    suffix = hashlib.sha256(str(path).encode("utf-8")).hexdigest()[:6]
    return f"{base}-{suffix}"
