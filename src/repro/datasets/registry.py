"""Registry of the five synthetic benchmark configurations.

The pattern mixes mirror the qualitative structure of the originals:

* **WN18** is rich in symmetric relations (``similar_to``) and inverse pairs
  (``hypernym``/``hyponym``).
* **WN18RR** removes the inverse duplicates, keeping symmetric and hierarchy
  (anti-symmetric) relations.
* **FB15k** has many inverse duplicates and a broad mix of asymmetric relations.
* **FB15k-237** removes inverse duplicates and has very few symmetric relations.
* **YAGO3-10** is dominated by anti-symmetric / general asymmetric relations with a few
  symmetric ones.

Sizes are scaled down to run on a laptop CPU; pass ``scale`` to grow or shrink them.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Tuple

from repro.datasets.synthetic import PatternSpec, SyntheticKGConfig, SyntheticKGGenerator
from repro.kg.graph import KnowledgeGraph
from repro.kg.patterns import RelationPattern

_SYM = RelationPattern.SYMMETRIC
_ANTI = RelationPattern.ANTI_SYMMETRIC
_INV = RelationPattern.INVERSE
_GEN = RelationPattern.GENERAL_ASYMMETRIC


def _config(name: str, num_entities: int, specs: Tuple[Tuple[RelationPattern, int], ...],
            triples_per_relation: int) -> SyntheticKGConfig:
    return SyntheticKGConfig(
        name=name,
        num_entities=num_entities,
        pattern_specs=tuple(PatternSpec(pattern, count) for pattern, count in specs),
        triples_per_relation=triples_per_relation,
    )


_BENCHMARKS: Dict[str, SyntheticKGConfig] = {
    "wn18_like": _config(
        "wn18_like", 200, ((_SYM, 4), (_INV, 6), (_ANTI, 6), (_GEN, 2)), 120
    ),
    "wn18rr_like": _config(
        "wn18rr_like", 200, ((_SYM, 3), (_ANTI, 6), (_GEN, 2)), 120
    ),
    "fb15k_like": _config(
        "fb15k_like", 300, ((_SYM, 6), (_INV, 16), (_ANTI, 10), (_GEN, 8)), 90
    ),
    "fb15k237_like": _config(
        "fb15k237_like", 300, ((_SYM, 2), (_ANTI, 14), (_GEN, 14)), 90
    ),
    "yago3_like": _config(
        "yago3_like", 400, ((_SYM, 5), (_INV, 6), (_ANTI, 16), (_GEN, 10)), 80
    ),
}

BENCHMARK_NAMES: Tuple[str, ...] = tuple(_BENCHMARKS)

# Mapping from the synthetic benchmark names to the original dataset names used in the
# paper's tables; handy for report printing.
PAPER_NAMES: Dict[str, str] = {
    "wn18_like": "WN18",
    "wn18rr_like": "WN18RR",
    "fb15k_like": "FB15k",
    "fb15k237_like": "FB15k237",
    "yago3_like": "YAGO3-10",
}


def benchmark_config(name: str, scale: float = 1.0) -> SyntheticKGConfig:
    """Return the configuration of a named benchmark, optionally rescaled."""
    try:
        config = _BENCHMARKS[name]
    except KeyError:
        raise KeyError(f"unknown benchmark {name!r}; available: {sorted(_BENCHMARKS)}") from None
    return config if scale == 1.0 else config.scaled(scale)


@lru_cache(maxsize=32)
def _cached_build(name: str, scale: float, seed: int) -> KnowledgeGraph:
    config = benchmark_config(name, scale=scale)
    return SyntheticKGGenerator(config).generate(seed=seed)


def load_benchmark(name: str, scale: float = 1.0, seed: int = 0) -> KnowledgeGraph:
    """Build (and memoise) a synthetic benchmark by name.

    The same ``(name, scale, seed)`` always returns the identical graph object, so
    repeated calls inside a benchmark session are free.
    """
    return _cached_build(name, float(scale), int(seed))
