"""The :class:`Tensor` class: a NumPy array with reverse-mode autodiff.

Design notes
------------
* Gradients are dense ``numpy.ndarray`` objects of the same shape as ``data``.
* Each differentiable operation creates a new ``Tensor`` whose ``_backward`` closure
  accumulates gradients into its parents.  ``backward()`` performs a topological sort of
  the graph and calls the closures in reverse order.
* Broadcasting is supported for elementwise binary operations; the backward pass reduces
  the incoming gradient back to the parent's shape (see :func:`_unbroadcast`).
* A module-level flag (see :func:`no_grad`) disables graph construction, which is used by
  evaluation code where only forward values are required.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence]

_GRAD_ENABLED = True


def is_grad_enabled() -> bool:
    """Whether newly created tensors will record the computational graph."""
    return _GRAD_ENABLED


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph construction (forward-only evaluation)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it matches ``shape`` after a broadcasting operation."""
    if grad.shape == shape:
        return grad
    # Sum over the leading dimensions that were added by broadcasting.
    extra_dims = grad.ndim - len(shape)
    if extra_dims > 0:
        grad = grad.sum(axis=tuple(range(extra_dims)))
    # Sum over dimensions that were broadcast from size 1.
    axes = tuple(i for i, size in enumerate(shape) if size == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: ArrayLike) -> np.ndarray:
    array = np.asarray(value, dtype=np.float64)
    return array


class Tensor:
    """A NumPy array plus the bookkeeping needed for reverse-mode differentiation."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Tuple["Tensor", ...] = (),
        _backward: Optional[Callable[[np.ndarray], None]] = None,
        name: Optional[str] = None,
    ) -> None:
        self.data = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self._parents = _parents if self.requires_grad or _parents else ()
        self._backward = _backward
        self.name = name

    # ------------------------------------------------------------------ basics
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def numpy(self) -> np.ndarray:
        """Return the underlying array (not a copy)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        """Clear the accumulated gradient."""
        self.grad = None

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        label = f", name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}{flag}{label})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------ graph
    @staticmethod
    def _lift(value: Union["Tensor", ArrayLike]) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def _make(
        self,
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        if not requires:
            return Tensor(data)
        return Tensor(data, requires_grad=True, _parents=parents, _backward=backward)

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = np.array(grad, dtype=np.float64, copy=True)
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Back-propagate from this tensor through the recorded graph.

        ``grad`` defaults to ones (and must be provided explicitly for non-scalar outputs
        when a different seed gradient is desired).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        seed = np.ones_like(self.data) if grad is None else _as_array(grad)
        if seed.shape != self.data.shape:
            raise ValueError(f"seed gradient shape {seed.shape} does not match tensor shape {self.data.shape}")

        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(seed)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------ arithmetic
    def __add__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._lift(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad, self.data.shape))
            other._accumulate(_unbroadcast(grad, other.data.shape))

        return self._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self + (-self._lift(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._lift(other) + (-self)

    def __mul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._lift(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad * other.data, self.data.shape))
            other._accumulate(_unbroadcast(grad * self.data, other.data.shape))

        return self._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._lift(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad / other.data, self.data.shape))
            other._accumulate(_unbroadcast(-grad * self.data / (other.data**2), other.data.shape))

        return self._make(out_data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._lift(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("Tensor.__pow__ only supports scalar exponents")
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make(out_data, (self,), backward)

    def __matmul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._lift(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            a, b = self.data, other.data
            if a.ndim == 1 and b.ndim == 1:
                self._accumulate(grad * b)
                other._accumulate(grad * a)
            elif a.ndim == 1:
                # (k,) @ (k, n) -> (n,)
                self._accumulate(grad @ b.T)
                other._accumulate(np.outer(a, grad))
            elif b.ndim == 1:
                # (m, k) @ (k,) -> (m,)
                self._accumulate(np.outer(grad, b))
                other._accumulate(a.T @ grad)
            else:
                grad_a = grad @ np.swapaxes(b, -1, -2)
                grad_b = np.swapaxes(a, -1, -2) @ grad
                self._accumulate(_unbroadcast(grad_a, a.shape))
                other._accumulate(_unbroadcast(grad_b, b.shape))

        return self._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------ reductions
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            expanded = grad
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else tuple(axis)
                axes = tuple(a % self.data.ndim for a in axes)
                for a in sorted(axes):
                    expanded = np.expand_dims(expanded, a)
            self._accumulate(np.broadcast_to(expanded, self.data.shape).copy())

        return self._make(out_data, (self,), backward)

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.data.shape[a % self.data.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            expanded = grad
            max_expanded = out_data
            if axis is not None and not keepdims:
                expanded = np.expand_dims(expanded, axis)
                max_expanded = np.expand_dims(out_data, axis)
            mask = (self.data == max_expanded).astype(np.float64)
            mask = mask / np.maximum(mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum(), 1.0)
            self._accumulate(mask * expanded)

        return self._make(out_data, (self,), backward)

    # ------------------------------------------------------------------ shape ops
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original_shape = self.data.shape

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original_shape))

        return self._make(out_data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        axes_tuple = axes if axes else tuple(reversed(range(self.data.ndim)))
        if len(axes_tuple) == 1 and isinstance(axes_tuple[0], (tuple, list)):
            axes_tuple = tuple(axes_tuple[0])
        out_data = self.data.transpose(axes_tuple)
        inverse = np.argsort(axes_tuple)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        return self._make(out_data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return self._make(out_data, (self,), backward)

    # ------------------------------------------------------------------ elementwise
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return self._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return self._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self**0.5

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * np.sign(self.data))

        return self._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data**2))

        return self._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))

        return self._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        out_data = np.maximum(self.data, 0.0)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (self.data > 0.0))

        return self._make(out_data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        out_data = np.clip(self.data, low, high)

        def backward(grad: np.ndarray) -> None:
            mask = ((self.data >= low) & (self.data <= high)).astype(np.float64)
            self._accumulate(grad * mask)

        return self._make(out_data, (self,), backward)


def concat(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing back to each input."""
    tensors = [Tensor._lift(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, end in zip(tensors, offsets[:-1], offsets[1:]):
            slicer = [slice(None)] * grad.ndim
            slicer[axis] = slice(start, end)
            tensor._accumulate(grad[tuple(slicer)])

    requires = is_grad_enabled() and any(t.requires_grad for t in tensors)
    if not requires:
        return Tensor(data)
    return Tensor(data, requires_grad=True, _parents=tuple(tensors), _backward=backward)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis``."""
    tensors = [Tensor._lift(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        pieces = np.split(grad, len(tensors), axis=axis)
        for tensor, piece in zip(tensors, pieces):
            tensor._accumulate(np.squeeze(piece, axis=axis))

    requires = is_grad_enabled() and any(t.requires_grad for t in tensors)
    if not requires:
        return Tensor(data)
    return Tensor(data, requires_grad=True, _parents=tuple(tensors), _backward=backward)
