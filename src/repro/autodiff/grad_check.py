"""Finite-difference gradient checking used by the autodiff test-suite."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.autodiff.tensor import Tensor


def numerical_gradient(
    fn: Callable[[Sequence[Tensor]], Tensor],
    inputs: Sequence[Tensor],
    index: int,
    epsilon: float = 1e-6,
) -> np.ndarray:
    """Central-difference estimate of ``d fn(inputs) / d inputs[index]``.

    ``fn`` must return a scalar tensor.  The estimate perturbs one coordinate at a time,
    so it is only intended for the small tensors used in tests.
    """
    target = inputs[index]
    grad = np.zeros_like(target.data)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + epsilon
        plus = float(fn(inputs).data)
        flat[i] = original - epsilon
        minus = float(fn(inputs).data)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * epsilon)
    return grad


def check_gradients(
    fn: Callable[[Sequence[Tensor]], Tensor],
    inputs: Sequence[Tensor],
    atol: float = 1e-5,
    rtol: float = 1e-4,
    epsilon: float = 1e-6,
) -> bool:
    """Compare analytic and numerical gradients of a scalar-valued function.

    Returns ``True`` when every input's analytic gradient matches the finite-difference
    estimate, and raises ``AssertionError`` with a useful message otherwise.
    """
    for tensor in inputs:
        tensor.zero_grad()
    output = fn(inputs)
    if output.size != 1:
        raise ValueError("check_gradients requires a scalar-valued function")
    output.backward()
    for i, tensor in enumerate(inputs):
        if not tensor.requires_grad:
            continue
        analytic = tensor.grad if tensor.grad is not None else np.zeros_like(tensor.data)
        numeric = numerical_gradient(fn, inputs, i, epsilon=epsilon)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            max_err = float(np.max(np.abs(analytic - numeric)))
            raise AssertionError(
                f"gradient mismatch for input {i}: max abs error {max_err:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )
    return True
