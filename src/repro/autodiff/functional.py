"""Composite differentiable functions built on top of :class:`~repro.autodiff.tensor.Tensor`.

These cover the loss functions and normalisations used by the KG embedding models and the
LSTM controller: numerically stable log-softmax / softmax, softmax cross-entropy with
integer targets (the "multiclass log-loss" of Lacroix et al. used by AutoSF and ERAS),
binary cross-entropy, margin ranking loss, and log-sum-exp.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.autodiff.tensor import Tensor, concat, stack  # re-exported for convenience

__all__ = [
    "softmax",
    "log_softmax",
    "logsumexp",
    "cross_entropy",
    "nll_loss",
    "binary_cross_entropy_with_logits",
    "margin_ranking_loss",
    "softplus",
    "dropout",
    "concat",
    "stack",
]


def logsumexp(x: Tensor, axis: int = -1, keepdims: bool = False) -> Tensor:
    """Numerically stable ``log(sum(exp(x)))`` along ``axis``."""
    x = Tensor._lift(x)
    shift = Tensor(x.data.max(axis=axis, keepdims=True))
    shifted = x - shift
    summed = shifted.exp().sum(axis=axis, keepdims=True).log() + shift
    if keepdims:
        return summed
    return summed.reshape(tuple(np.delete(np.array(summed.shape), axis)))


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Log-softmax along ``axis``, computed in a numerically stable way."""
    x = Tensor._lift(x)
    return x - logsumexp(x, axis=axis, keepdims=True)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Softmax along ``axis``."""
    return log_softmax(x, axis=axis).exp()


def nll_loss(log_probs: Tensor, targets: Union[np.ndarray, Sequence[int]], reduction: str = "mean") -> Tensor:
    """Negative log-likelihood given ``log_probs`` of shape (batch, classes)."""
    targets = np.asarray(targets, dtype=np.int64)
    if log_probs.ndim != 2:
        raise ValueError(f"log_probs must be 2-D (batch, classes), got shape {log_probs.shape}")
    if targets.ndim != 1 or targets.shape[0] != log_probs.shape[0]:
        raise ValueError("targets must be a 1-D integer array with one entry per row of log_probs")
    rows = np.arange(log_probs.shape[0])
    picked = log_probs[rows, targets]
    loss = -picked
    return _reduce(loss, reduction)


def cross_entropy(logits: Tensor, targets: Union[np.ndarray, Sequence[int]], reduction: str = "mean") -> Tensor:
    """Softmax cross-entropy with integer class targets (the multiclass log-loss)."""
    return nll_loss(log_softmax(logits, axis=-1), targets, reduction=reduction)


def binary_cross_entropy_with_logits(
    logits: Tensor, targets: Union[np.ndarray, Sequence[float]], reduction: str = "mean"
) -> Tensor:
    """Numerically stable binary cross-entropy from logits.

    Uses the identity ``BCE(x, y) = max(x, 0) - x*y + log(1 + exp(-|x|))``.
    """
    logits = Tensor._lift(logits)
    targets = np.asarray(targets, dtype=np.float64)
    loss = logits.relu() - logits * Tensor(targets) + softplus(-logits.abs())
    return _reduce(loss, reduction)


def margin_ranking_loss(
    positive_scores: Tensor, negative_scores: Tensor, margin: float = 1.0, reduction: str = "mean"
) -> Tensor:
    """Hinge loss ``max(0, margin - positive + negative)`` used by translational models."""
    diff = Tensor(float(margin)) - positive_scores + negative_scores
    return _reduce(diff.relu(), reduction)


def softplus(x: Tensor) -> Tensor:
    """``log(1 + exp(x))`` computed stably via the identity ``softplus(x) = max(x,0) + log1p(exp(-|x|))``."""
    x = Tensor._lift(x)
    return x.relu() + ((-x.abs()).exp() + 1.0).log()


def dropout(x: Tensor, p: float, rng: Optional[np.random.Generator] = None, training: bool = True) -> Tensor:
    """Inverted dropout; identity when not training or when ``p == 0``."""
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    if not training or p == 0.0:
        return Tensor._lift(x)
    rng = rng if rng is not None else np.random.default_rng()
    mask = (rng.random(x.shape) >= p).astype(np.float64) / (1.0 - p)
    return Tensor._lift(x) * Tensor(mask)


def _reduce(loss: Tensor, reduction: str) -> Tensor:
    if reduction == "mean":
        return loss.mean()
    if reduction == "sum":
        return loss.sum()
    if reduction == "none":
        return loss
    raise ValueError(f"unknown reduction {reduction!r}; expected 'mean', 'sum' or 'none'")
