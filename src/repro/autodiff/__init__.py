"""A small reverse-mode automatic differentiation engine over NumPy arrays.

This package replaces the PyTorch dependency of the original ERAS implementation.  It
provides exactly the operations the paper's models need: bilinear block scores, softmax
cross-entropy losses, an LSTM controller and the Adagrad/Adam optimisers that drive them.

The central object is :class:`~repro.autodiff.tensor.Tensor`, a thin wrapper around a
``numpy.ndarray`` that records the operations applied to it and can back-propagate
gradients through the resulting computational graph.
"""

from repro.autodiff.tensor import Tensor, no_grad, is_grad_enabled
from repro.autodiff import functional
from repro.autodiff.grad_check import check_gradients, numerical_gradient

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "functional",
    "check_gradients",
    "numerical_gradient",
]
