"""The argparse layer behind ``python -m repro``.

Five subcommands drive the :class:`~repro.runtime.runner.SearchRunner` facade, the
sweep orchestrator and the serving subsystem:

- ``search`` -- run any registered scoring-function search (``--list-searchers``),
  optionally under a budget (``--budget-steps/evals/seconds``), with step-level
  checkpoint/resume, and re-train / evaluate / publish the winner.
- ``sweep``  -- run a sharded (searcher x seed x dataset) grid on a fault-tolerant
  worker pool (:mod:`repro.runtime.orchestrator`), resumable with ``--resume``, and
  aggregate a per-searcher fair-comparison report.
- ``train``  -- train a classic structure or a saved search result from scratch and
  evaluate it.
- ``serve``  -- answer link-prediction queries against a model stored in the artifact
  registry, optionally memory-mapped (``--mmap``) and memory-bounded
  (``--entity-chunk``).
- ``bench``  -- run the runtime timing workloads (derive-phase scaling, serving
  latency, filtered-ranking throughput, per-searcher step latency, sweep
  orchestration, streaming graph updates, the out-of-core scale curve), writing
  ``BENCH_*.json`` files into ``--out`` (default ``./bench-out/``) so the committed
  baselines in the repository root stay intact.

``--dataset`` (and the sweep's ``--datasets``) accepts either a registry benchmark
name or a directory containing ``train.txt``/``valid.txt``/``test.txt`` -- see
:func:`repro.datasets.resolve_dataset` and ``docs/DATASETS.md``.

Every invocation documented in ``docs/CLI.md`` is checked against these parsers by
``tests/test_docs.py``, so the documentation cannot drift from the implementation.
:func:`build_parser` and :func:`subcommand_parsers` are the public introspection
points that the test uses.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from typing import Dict, List, Optional

from repro.datasets import DatasetResolutionError
from repro.datasets.registry import BENCHMARK_NAMES
from repro.search.registry import available_searchers

from repro.runtime.runner import RunConfig, SearchRunner

CLASSIC_NAMES = ("distmult", "complex", "simple", "analogy")


# ---------------------------------------------------------------------------- parser
def build_parser() -> argparse.ArgumentParser:
    """The full ``python -m repro`` parser with all four subcommands attached."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="ERAS reproduction runtime: search, train, serve and benchmark "
        "relation-aware scoring functions for knowledge-graph embedding.",
    )
    subparsers = parser.add_subparsers(dest="command", metavar="command")
    _add_search_parser(subparsers)
    _add_sweep_parser(subparsers)
    _add_train_parser(subparsers)
    _add_serve_parser(subparsers)
    _add_bench_parser(subparsers)
    return parser


def subcommand_parsers(parser: Optional[argparse.ArgumentParser] = None) -> Dict[str, argparse.ArgumentParser]:
    """Map of subcommand name to its parser (used by the doc-consistency tests)."""
    parser = parser or build_parser()
    action = next(a for a in parser._actions if isinstance(a, argparse._SubParsersAction))
    return dict(action.choices)


def _add_dataset_arguments(parser: argparse.ArgumentParser, default: Optional[str] = "wn18rr_like") -> None:
    parser.add_argument(
        "--dataset", default=default, metavar="NAME_OR_DIR",
        help=f"synthetic benchmark name ({', '.join(BENCHMARK_NAMES)}) or a directory "
        f"containing train.txt/valid.txt/test.txt (default: {default})",
    )
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="dataset scale factor; synthetic benchmarks only (default: 1.0)",
    )
    parser.add_argument("--data-seed", type=int, default=0, help="dataset generator seed (default: 0)")


def _add_search_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "search",
        help="run a scoring-function search and optionally re-train / publish the winner",
        description="Search relation-aware scoring functions with ERAS or one of the "
        "baselines; candidate evaluations are cached and fanned out over --workers "
        "processes (any worker count returns a bit-identical winner).",
    )
    _add_dataset_arguments(parser)
    parser.add_argument(
        "--searcher", choices=available_searchers(), default="eras",
        help="search algorithm from the plugin registry (default: eras)",
    )
    parser.add_argument(
        "--list-searchers", action="store_true",
        help="print every registered searcher name and exit",
    )
    parser.add_argument("--groups", type=int, default=3, help="N, relation groups for ERAS (default: 3)")
    parser.add_argument("--blocks", type=int, default=4, help="M, structure block count (default: 4)")
    parser.add_argument("--epochs", type=int, default=15, help="ERAS search epochs (default: 15)")
    parser.add_argument(
        "--candidates", type=int, default=8,
        help="candidate budget of the random/bayes searchers (default: 8)",
    )
    parser.add_argument(
        "--derive-samples", type=int, default=16,
        help="K, candidates sampled in the ERAS derive phase (default: 16)",
    )
    parser.add_argument("--dim", type=int, default=48, help="embedding dimension (default: 48)")
    parser.add_argument("--seed", type=int, default=0, help="search seed (default: 0)")
    parser.add_argument(
        "--workers", type=int, default=1,
        help="evaluation-pool processes; 1 = serial, 0 = all cores (default: 1)",
    )
    parser.add_argument(
        "--proxy-epochs", type=int, default=None,
        help="per-candidate training epochs of the autosf/random/bayes proxy "
        "(default: each algorithm's benchmark budget)",
    )
    parser.add_argument(
        "--checkpoint", metavar="PATH", default=None,
        help="JSON checkpoint file; any searcher resumes from it when it exists",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=1,
        help="write the checkpoint every this many steps (default: 1)",
    )
    parser.add_argument(
        "--budget-steps", type=int, default=None,
        help="stop the search after this many steps (default: unlimited)",
    )
    parser.add_argument(
        "--budget-evals", type=int, default=None,
        help="stop the search after this many candidate evaluations (default: unlimited)",
    )
    parser.add_argument(
        "--budget-seconds", type=float, default=None,
        help="stop the search after this much cumulative wall clock (default: unlimited)",
    )
    parser.add_argument("--output", metavar="PATH", default=None, help="write the search result as JSON")
    parser.add_argument(
        "--train", action="store_true",
        help="re-train the winning candidate from scratch and evaluate it",
    )
    parser.add_argument("--train-epochs", type=int, default=30, help="final training epochs (default: 30)")
    parser.add_argument(
        "--no-rerank", action="store_true",
        help="skip re-ranking the top candidates before the final training",
    )
    parser.add_argument(
        "--eval-split", choices=("valid", "test"), default="test",
        help="split of the final evaluation (default: test)",
    )
    parser.add_argument("--registry", metavar="PATH", default=None, help="model artifact registry root")
    parser.add_argument(
        "--publish", metavar="NAME", default=None,
        help="publish the re-trained model under this registry name (implies --train)",
    )
    parser.set_defaults(handler=cmd_search)


def _add_sweep_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "sweep",
        help="run a sharded (searcher x seed x dataset) grid and aggregate a fair comparison",
        description="Expand a grid of (searcher, seed, dataset) combinations into shards, "
        "run them on a bounded fault-tolerant worker pool (crashed shards are requeued and "
        "resume from their checkpoints), and aggregate per-searcher mean/std metrics into "
        "report.json / report.md inside the sweep directory.",
    )
    parser.add_argument(
        "--sweep-dir", metavar="PATH", default=None,
        help="directory receiving the manifest, shard checkpoints/results and the report "
        "(required unless --resume)",
    )
    parser.add_argument(
        "--resume", metavar="PATH", default=None,
        help="resume the sweep in this directory: finished shards are skipped, partial "
        "shards continue from their checkpoints (the grid comes from the manifest, so "
        "no grid flags are needed)",
    )
    parser.add_argument(
        "--searchers", nargs="+", choices=available_searchers(), default=["eras"],
        metavar="NAME",
        help="grid axis: searcher names from the plugin registry (default: eras)",
    )
    parser.add_argument(
        "--seeds", nargs="+", type=int, default=[0], metavar="SEED",
        help="grid axis: one shard per search seed (default: 0)",
    )
    parser.add_argument(
        "--datasets", nargs="+", default=["wn18rr_like"],
        metavar="NAME_OR_DIR",
        help="grid axis: synthetic benchmark names and/or dataset directories to "
        "sweep over (default: wn18rr_like)",
    )
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="dataset scale factor; synthetic benchmarks only (default: 1.0)",
    )
    parser.add_argument("--data-seed", type=int, default=0, help="dataset generator seed (default: 0)")
    parser.add_argument(
        "--max-workers", type=int, default=2,
        help="shard worker processes; 1 = serial in-process, 0 = all cores (default: 2)",
    )
    parser.add_argument(
        "--max-shard-retries", type=int, default=1,
        help="retry a crashed or failed shard this many times (resuming from its "
        "checkpoint) before reporting it failed (default: 1)",
    )
    parser.add_argument("--groups", type=int, default=3, help="N, relation groups for ERAS (default: 3)")
    parser.add_argument("--blocks", type=int, default=4, help="M, structure block count (default: 4)")
    parser.add_argument("--epochs", type=int, default=15, help="ERAS search epochs per shard (default: 15)")
    parser.add_argument(
        "--candidates", type=int, default=8,
        help="candidate budget of the random/bayes shards (default: 8)",
    )
    parser.add_argument(
        "--derive-samples", type=int, default=16,
        help="K, candidates sampled in the ERAS derive phase (default: 16)",
    )
    parser.add_argument("--dim", type=int, default=48, help="embedding dimension (default: 48)")
    parser.add_argument(
        "--proxy-epochs", type=int, default=None,
        help="per-candidate training epochs of the autosf/random/bayes proxy "
        "(default: each algorithm's benchmark budget)",
    )
    parser.add_argument(
        "--budget-steps", type=int, default=None,
        help="uniform per-shard step budget (default: unlimited)",
    )
    parser.add_argument(
        "--budget-evals", type=int, default=None,
        help="uniform per-shard candidate-evaluation budget (default: unlimited)",
    )
    parser.add_argument(
        "--budget-seconds", type=float, default=None,
        help="uniform per-shard wall-clock budget; makes shard outcomes host-dependent "
        "(default: unlimited)",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=1,
        help="write each shard's checkpoint every this many steps (default: 1)",
    )
    parser.add_argument(
        "--no-train", action="store_true",
        help="search-only shards: skip the final re-training/evaluation and aggregate "
        "the searchers' validation-proxy MRR",
    )
    parser.add_argument("--train-epochs", type=int, default=30, help="final training epochs (default: 30)")
    parser.add_argument(
        "--no-rerank", action="store_true",
        help="skip re-ranking each shard's top candidates before the final training",
    )
    parser.add_argument(
        "--eval-split", choices=("valid", "test"), default="test",
        help="split of the final evaluation (default: test)",
    )
    parser.add_argument(
        "--registry", metavar="PATH", default=None,
        help="publish every trained shard winner into this model artifact registry",
    )
    parser.set_defaults(handler=cmd_sweep)


def _add_train_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "train",
        help="train a scoring function from scratch and evaluate it",
        description="Train either a classic literature structure (--structure) or the "
        "winner of a saved search (--from-result) and report filtered ranking metrics.",
    )
    _add_dataset_arguments(parser)
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--structure", choices=CLASSIC_NAMES,
        help="classic scoring function to train",
    )
    source.add_argument(
        "--from-result", metavar="PATH",
        help="JSON search result written by `python -m repro search --output`",
    )
    parser.add_argument("--dim", type=int, default=48, help="embedding dimension (default: 48)")
    parser.add_argument("--epochs", type=int, default=30, help="training epochs (default: 30)")
    parser.add_argument("--seed", type=int, default=0, help="training seed (default: 0)")
    parser.add_argument(
        "--eval-split", choices=("valid", "test"), default="test",
        help="split of the evaluation (default: test)",
    )
    parser.add_argument("--registry", metavar="PATH", default=None, help="model artifact registry root")
    parser.add_argument(
        "--publish", metavar="NAME", default=None,
        help="publish the trained model under this registry name (requires --registry)",
    )
    parser.set_defaults(handler=cmd_train)


def _add_serve_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "serve",
        help="answer link-prediction queries against a registered model",
        description="Load a model from the artifact registry and answer head/tail "
        "completion queries through the batched prediction service.",
    )
    parser.add_argument("--registry", metavar="PATH", required=True, help="model artifact registry root")
    parser.add_argument("--model", metavar="NAME", required=True, help="artifact name in the registry")
    parser.add_argument("--version", type=int, default=None, help="artifact version (default: latest)")
    _add_dataset_arguments(parser, default=None)
    parser.add_argument(
        "--query", action="append", default=[], metavar="H,R,T",
        help="completion query 'head,relation,?' (predict tail) or '?,relation,tail' "
        "(predict head); ids or vocabulary symbols; repeatable",
    )
    parser.add_argument(
        "--demo", type=int, default=0, metavar="N",
        help="additionally answer N random seeded demo queries",
    )
    parser.add_argument("--top-k", type=int, default=5, help="completions per query (default: 5)")
    parser.add_argument("--seed", type=int, default=0, help="seed of the demo queries (default: 0)")
    parser.add_argument(
        "--mmap", action="store_true",
        help="memory-map the artifact weights instead of loading them resident "
        "(applies to hot reloads too)",
    )
    parser.add_argument(
        "--entity-chunk", type=int, default=None, metavar="N",
        help="score candidates in entity chunks of about this size, bounding the "
        "peak score-matrix memory (default: unchunked; results are bit-identical)",
    )
    parser.add_argument(
        "--http", action="store_true",
        help="serve over HTTP instead of answering --query/--demo and exiting: "
        "POST /v1/predict plus /healthz, /readyz, /metrics and /v1/reload, with "
        "admission control, per-request deadlines, graceful drain on SIGTERM and "
        "hot-reload of new registry versions (disabled when --version pins one)",
    )
    parser.add_argument("--host", default="127.0.0.1", help="HTTP bind address (default: 127.0.0.1)")
    parser.add_argument(
        "--port", type=int, default=8080,
        help="HTTP port; 0 picks an ephemeral port (default: 8080)",
    )
    parser.add_argument(
        "--max-queue-depth", type=int, default=256,
        help="admitted requests waiting for scoring before new ones are shed with "
        "503 + Retry-After (default: 256)",
    )
    parser.add_argument(
        "--deadline-ms", type=float, default=5000.0,
        help="default per-request deadline in milliseconds; expired requests get 504 "
        "and never occupy a batch slot (default: 5000)",
    )
    parser.add_argument(
        "--flush-interval-ms", type=float, default=5.0,
        help="how long the batch loop waits for stragglers before scoring a partial "
        "micro-batch (default: 5)",
    )
    parser.add_argument(
        "--reload-poll-s", type=float, default=2.0,
        help="seconds between registry polls for a newer model version (default: 2)",
    )
    parser.add_argument(
        "--no-reload", action="store_true",
        help="never hot-reload, even when --version is not pinned",
    )
    parser.set_defaults(handler=cmd_serve)


def _add_bench_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "bench",
        help="run a runtime timing workload",
        description="Benchmark the runtime layer: 'derive' times serial vs parallel vs "
        "cached derive-phase scoring, 'serving' measures the prediction service's "
        "latency and throughput, 'ranking' times vectorized filtered ranking against "
        "the retained naive reference, 'search' times one budgeted step of every "
        "registered searcher and writes BENCH_search.json, 'sweep' times serial vs "
        "pooled execution of a sweep grid and writes BENCH_sweep.json, 'shm' times "
        "shared-memory publish/attach against the pickle round-trip and writes "
        "BENCH_shm.json, 'streaming' interleaves live graph deltas with queries "
        "(incremental merge vs rebuild) and writes BENCH_streaming.json, 'scale' "
        "evaluates one model at growing dataset scales with chunked vs unchunked "
        "scoring (recording peak RSS next to throughput) and writes BENCH_scale.json.",
    )
    parser.add_argument(
        "--workload",
        choices=("derive", "serving", "ranking", "search", "sweep", "shm", "streaming", "scale"),
        default="derive",
        help="which workload to run (default: derive)",
    )
    _add_dataset_arguments(parser, default="fb15k_like")
    parser.add_argument("--candidates", type=int, default=64, help="derive-phase candidates (default: 64)")
    parser.add_argument("--workers", type=int, default=2, help="evaluation-pool processes (default: 2)")
    parser.add_argument("--dim", type=int, default=64, help="embedding dimension (default: 64)")
    parser.add_argument("--queries", type=int, default=256, help="serving workload queries (default: 256)")
    parser.add_argument("--top-k", type=int, default=10, help="completions per serving query (default: 10)")
    parser.add_argument(
        "--deltas", type=int, default=12,
        help="streaming workload: graph deltas to apply (default: 12); --queries is "
        "spread evenly across the update stream",
    )
    parser.add_argument(
        "--delta-triples", type=int, default=32,
        help="streaming workload: triples per delta, half adds / half removes (default: 32)",
    )
    parser.add_argument(
        "--scales", nargs="+", type=float, default=[0.5, 1.0, 2.0], metavar="S",
        help="scale workload: dataset scale factors of the curve's tiers, smallest "
        "first (default: 0.5 1.0 2.0)",
    )
    parser.add_argument(
        "--chunk-entities", type=int, default=2048, metavar="N",
        help="scale workload: entity chunk size of the memory-bounded tier "
        "(default: 2048)",
    )
    parser.add_argument("--seed", type=int, default=0, help="workload seed (default: 0)")
    parser.add_argument("--output", metavar="PATH", default=None, help="write the result row as JSON")
    parser.add_argument(
        "--out", metavar="DIR", default=None,
        help="directory receiving the BENCH_*.json perf-trajectory files "
        "(default: $BENCH_OUTPUT_DIR or ./bench-out/; the committed repository-root "
        "copies are the regression baselines and are never overwritten)",
    )
    parser.set_defaults(handler=cmd_bench)


# ---------------------------------------------------------------------------- commands
def cmd_search(args: argparse.Namespace) -> int:
    """``python -m repro search``: search, optionally train/evaluate/publish."""
    from repro.runtime.checkpoint import save_search_result
    from repro.scoring.render import render_relation_aware

    if args.list_searchers:
        for name in available_searchers():
            print(name)
        return 0
    if args.publish and not args.registry:
        print("--publish requires --registry", file=sys.stderr)
        return 2
    config = RunConfig(
        dataset=args.dataset,
        scale=args.scale,
        data_seed=args.data_seed,
        searcher=args.searcher,
        num_groups=args.groups,
        num_blocks=args.blocks,
        search_epochs=args.epochs,
        num_candidates=args.candidates,
        derive_samples=args.derive_samples,
        dim=args.dim,
        seed=args.seed,
        workers=args.workers,
        proxy_epochs=args.proxy_epochs,
        checkpoint_path=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
        budget_steps=args.budget_steps,
        budget_evals=args.budget_evals,
        budget_seconds=args.budget_seconds,
        train_final=bool(args.train or args.publish),
        train_epochs=args.train_epochs,
        rerank=not args.no_rerank,
        eval_split=args.eval_split,
        registry_root=args.registry,
        model_name=args.publish,
    )
    from repro.runtime.checkpoint import CheckpointError

    runner = SearchRunner(config)
    try:
        report = runner.run()
    except CheckpointError as error:
        print(str(error), file=sys.stderr)
        return 2
    result = report.search_result

    if "budget" in result.extras:
        print(f"search stopped early: {result.extras['budget']['stopped']}")
    print(f"winning candidate (signature): {result.best_candidate.signature()}")
    if runner.graph.relation_vocab is not None:
        group_relations = {
            group: [runner.graph.relation_vocab.symbol_of(r) for r in relations]
            for group, relations in result.relations_per_group().items()
        }
        print(render_relation_aware(result.best_structures(), group_relations))
    if args.output:
        # Record the data provenance so `train --from-result` can refuse a mismatched
        # --dataset/--scale/--data-seed instead of training against the wrong graph.
        result.extras["run"] = {"dataset": args.dataset, "scale": args.scale, "data_seed": args.data_seed}
        save_search_result(result, args.output)
        print(f"search result written to {args.output}")
    print(json.dumps(report.summary(), indent=2, sort_keys=True))
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """``python -m repro sweep``: sharded grid execution + aggregated comparison."""
    from repro.runtime.orchestrator import SweepConfig, SweepError, SweepOrchestrator
    from repro.search.base import SearchBudget

    try:
        if args.resume:
            if args.sweep_dir:
                print("pass either --sweep-dir (fresh sweep) or --resume, not both", file=sys.stderr)
                return 2
            # A resumed sweep runs under the manifest's configuration, full stop --
            # silently ignoring grid/shard flags would let a user believe they
            # extended the grid.  Reject anything that differs from its default.
            overridden = [
                option
                for option, action in subcommand_parsers()["sweep"]._option_string_actions.items()
                if option.startswith("--")
                and action.dest not in ("resume", "sweep_dir", "help")
                and getattr(args, action.dest) != action.default
            ]
            if overridden:
                print(
                    f"--resume runs the sweep exactly as its manifest describes; drop "
                    f"{', '.join(sorted(set(overridden)))} (to change the grid, start a "
                    "fresh sweep directory)",
                    file=sys.stderr,
                )
                return 2
            orchestrator = SweepOrchestrator.from_directory(args.resume)
            report = orchestrator.run(resume=True)
        else:
            if not args.sweep_dir:
                print("a fresh sweep needs --sweep-dir (or --resume an existing one)", file=sys.stderr)
                return 2
            budget = None
            if (
                args.budget_steps is not None
                or args.budget_evals is not None
                or args.budget_seconds is not None
            ):
                budget = SearchBudget(
                    max_steps=args.budget_steps,
                    max_evaluations=args.budget_evals,
                    max_seconds=args.budget_seconds,
                )
            config = SweepConfig(
                searchers=tuple(args.searchers),
                seeds=tuple(args.seeds),
                datasets=tuple(args.datasets),
                budgets=(budget,),
                scale=args.scale,
                data_seed=args.data_seed,
                num_groups=args.groups,
                num_blocks=args.blocks,
                search_epochs=args.epochs,
                num_candidates=args.candidates,
                derive_samples=args.derive_samples,
                dim=args.dim,
                proxy_epochs=args.proxy_epochs,
                train_final=not args.no_train,
                train_epochs=args.train_epochs,
                rerank=not args.no_rerank,
                eval_split=args.eval_split,
                registry_root=args.registry,
                max_workers=args.max_workers,
                checkpoint_every=args.checkpoint_every,
                max_shard_retries=args.max_shard_retries,
            )
            report = SweepOrchestrator(config, args.sweep_dir).run()
    except SweepError as error:
        print(str(error), file=sys.stderr)
        return 2

    print(report.markdown_path.read_text(encoding="utf-8"))
    print(f"aggregated report written to {report.path} (markdown: {report.markdown_path})")
    if not report.ok:
        print(
            f"{len(report.failed)} shard(s) failed: {', '.join(report.failed)}; "
            f"re-run with --resume {report.path.parent} to retry them",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_train(args: argparse.Namespace) -> int:
    """``python -m repro train``: stand-alone training of a structure or search winner."""
    from repro.bench.workloads import train_structure
    from repro.runtime.checkpoint import load_search_result
    from repro.scoring.classics import named_structure

    from repro.datasets import dataset_label

    if args.publish and not args.registry:
        print("--publish requires --registry", file=sys.stderr)
        return 2
    default_name = args.structure or "searched"
    config = RunConfig(
        dataset=args.dataset,
        scale=args.scale,
        data_seed=args.data_seed,
        dim=args.dim,
        seed=args.seed,
        train_epochs=args.epochs,
        eval_split=args.eval_split,
        registry_root=args.registry,
        model_name=args.publish or f"{default_name}-{dataset_label(args.dataset)}",
    )
    runner = SearchRunner(config)
    result = None
    if args.from_result:
        result = load_search_result(args.from_result)
        # Directory datasets record the graph's name in the result, so accept a
        # spec that resolves to the same graph, not only the identical string.
        if result.dataset not in (args.dataset, runner.graph.name):
            print(
                f"search result {args.from_result} was produced on dataset "
                f"{result.dataset!r}; pass --dataset {result.dataset}",
                file=sys.stderr,
            )
            return 2
        provenance = result.extras.get("run")
        requested = {"dataset": args.dataset, "scale": args.scale, "data_seed": args.data_seed}
        if provenance is not None and provenance != requested:
            print(
                f"search result {args.from_result} was produced on {provenance}; "
                f"requested {requested} -- pass the matching --dataset/--scale/--data-seed",
                file=sys.stderr,
            )
            return 2
        if len(result.best_assignment) != runner.graph.num_relations:
            print(
                f"search result {args.from_result} has an assignment for "
                f"{len(result.best_assignment)} relations but the loaded graph has "
                f"{runner.graph.num_relations}; the dataset scale or seed differs",
                file=sys.stderr,
            )
            return 2
        model, training = runner.train(result)
    else:
        model, training = train_structure(
            runner.graph, named_structure(args.structure), dim=args.dim, epochs=args.epochs, seed=args.seed
        )
    metrics = runner.evaluate(model)
    row = {"model": args.structure or result.searcher, **metrics.as_row()}
    print(json.dumps({"training_epochs": training.epochs_run, **row}, indent=2, sort_keys=True))
    if args.publish:
        ref = runner.publish(model, result, metrics, source=args.structure)
        print(f"published {ref.name}/v{ref.version} to {args.registry}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """``python -m repro serve``: batched link-prediction against a stored model."""
    from repro.datasets import resolve_dataset
    from repro.serve.artifacts import ModelArtifactRegistry
    from repro.serve.engine import LinkPredictionEngine, LinkQuery
    from repro.serve.service import PredictionService
    from repro.utils.rng import new_rng

    if args.http and (args.query or args.demo):
        print("--http runs a server; drop --query/--demo", file=sys.stderr)
        return 2
    if not args.http and not args.query and not args.demo:
        print("nothing to do: pass --query and/or --demo N, or --http", file=sys.stderr)
        return 2
    registry = ModelArtifactRegistry(args.registry)
    graph = (
        resolve_dataset(args.dataset, scale=args.scale, seed=args.data_seed)
        if args.dataset
        else None
    )
    if args.http:
        return _serve_http(args, registry, graph)
    engine = LinkPredictionEngine.from_artifact(
        registry,
        name=args.model,
        version=args.version,
        graph=graph,
        mmap=args.mmap,
        entity_chunk_size=args.entity_chunk,
    )
    service = PredictionService(engine)

    queries: List[LinkQuery] = [_parse_query(text, engine, args.top_k) for text in args.query]
    queries += _random_queries(
        new_rng(args.seed), args.demo, engine.model.num_relations, engine.model.num_entities, args.top_k
    )

    for query, result in zip(queries, service.query_many(queries)):
        anchor = engine.label(query.anchor)
        print(f"\n({anchor}, r{query.relation}, ?)" if query.direction == "tail" else f"\n(?, r{query.relation}, {anchor})")
        for entity, score in result.pairs():
            print(f"  {engine.label(entity):<24} {score:+.4f}")
    print()
    print(service.stats_table().render())
    print(service.cache_table().render())
    return 0


def _serve_http(args: argparse.Namespace, registry, graph) -> int:
    """The ``serve --http`` branch: run the asyncio front-end until SIGTERM/SIGINT."""
    import asyncio

    from repro.serve.frontend import FrontendConfig, ReloadConfig, ServingFrontend
    from repro.serve.http import HttpFrontendServer

    config = FrontendConfig(
        max_queue_depth=args.max_queue_depth,
        default_deadline_s=args.deadline_ms / 1000.0,
        max_deadline_s=max(args.deadline_ms / 1000.0, 30.0),
        flush_interval_s=args.flush_interval_ms / 1000.0,
    )
    frontend = ServingFrontend.from_registry(
        registry,
        args.model,
        version=args.version,
        graph=graph,
        config=config,
        reload_config=ReloadConfig(poll_interval_s=0.0 if args.no_reload else args.reload_poll_s),
        mmap=args.mmap,
        entity_chunk_size=args.entity_chunk,
    )
    if args.no_reload:
        frontend.reloader = None
    server = HttpFrontendServer(frontend, host=args.host, port=args.port)
    asyncio.run(server.run())
    return 0


def _random_queries(rng, count: int, num_relations: int, num_entities: int, k: int) -> List["LinkQuery"]:
    """Seeded demo traffic: alternating tail/head completions over random ids."""
    from repro.serve.engine import LinkQuery

    queries: List[LinkQuery] = []
    for index in range(count):
        relation = int(rng.integers(num_relations))
        entity = int(rng.integers(num_entities))
        if index % 2 == 0:
            queries.append(LinkQuery(relation=relation, head=entity, k=k))
        else:
            queries.append(LinkQuery(relation=relation, tail=entity, k=k))
    return queries


def _parse_query(text: str, engine, k: int):
    """Parse ``head,relation,tail`` where exactly one of head/tail is ``?``."""
    from repro.serve.engine import LinkQuery

    parts = [part.strip() for part in text.split(",")]
    if len(parts) != 3:
        raise SystemExit(f"malformed --query {text!r}: expected 'head,relation,tail' with one '?'")

    def resolve(token: str, vocab) -> Optional[int]:
        if token == "?":
            return None
        if re.fullmatch(r"-?\d+", token):
            return int(token)
        if vocab is None:
            raise SystemExit(f"cannot resolve symbol {token!r}: the artifact stores no vocabulary")
        try:
            return vocab.id_of(token)
        except KeyError:
            raise SystemExit(f"cannot resolve symbol {token!r}: not in the artifact's vocabulary") from None

    head = resolve(parts[0], engine.entity_vocab)
    relation = resolve(parts[1], engine.relation_vocab)
    tail = resolve(parts[2], engine.entity_vocab)
    if relation is None:
        raise SystemExit(f"malformed --query {text!r}: the relation cannot be '?'")
    try:
        query = LinkQuery(relation=relation, head=head, tail=tail, k=k)
        engine.validate_query(query)
    except ValueError as error:
        raise SystemExit(f"malformed --query {text!r}: {error}") from error
    return query


def cmd_bench(args: argparse.Namespace) -> int:
    """``python -m repro bench``: runtime timing workloads (derive/serving/ranking/search/sweep)."""
    from repro.bench.reporting import TableReport, write_bench_json
    from repro.bench.workloads import train_structure
    from repro.datasets import is_directory_spec, resolve_dataset
    from repro.runtime.profiling import (
        time_derive_phase,
        time_filtered_ranking,
        time_scale_curve,
        time_search_steps,
        time_shm_transport,
        time_streaming_updates,
        time_sweep,
    )
    from repro.scoring.classics import named_structure
    from repro.serve.engine import LinkPredictionEngine, LinkQuery
    from repro.serve.service import PredictionService
    from repro.utils.rng import new_rng
    from repro.utils.serialization import save_json

    if args.workload == "scale":
        # The curve grows one synthetic benchmark through --scales; a fixed-size
        # directory dataset has no scale axis to sweep.
        if is_directory_spec(args.dataset):
            print("the scale workload needs a synthetic registry benchmark, not a directory", file=sys.stderr)
            return 2
        rows = time_scale_curve(
            dataset=args.dataset,
            scales=args.scales,
            chunk_entities=args.chunk_entities,
            dim=min(args.dim, 48),
            data_seed=args.data_seed,
            seed=args.seed,
        )
        report = TableReport("scale curve: chunked vs unchunked scoring at growing dataset scales")
        for tier_row in rows:
            report.add_row(**tier_row)
        print(report.render())
        path = write_bench_json("scale", rows, directory=args.out)
        print(f"perf trajectory written to {path}")
        # One row per tier, so --output writes the list (like the search workload).
        if args.output:
            save_json(rows, args.output)
            print(f"result rows written to {args.output}")
        if not all(row["scores_match"] and row["ranks_match"] for row in rows):
            print("chunked scoring diverged from the unchunked reference", file=sys.stderr)
            return 1
        return 0

    graph = resolve_dataset(args.dataset, scale=args.scale, seed=args.data_seed)
    if args.workload == "derive":
        row = time_derive_phase(
            graph,
            num_candidates=args.candidates,
            workers=args.workers,
            dim=args.dim,
            seed=args.seed,
        )
        report = TableReport("derive-phase timing: serial vs parallel vs cached")
        report.add_row(**row)
        print(report.render())
    elif args.workload == "ranking":
        row = time_filtered_ranking(graph, dim=args.dim, seed=args.seed)
        report = TableReport("filtered ranking: naive reference vs vectorized")
        report.add_row(**row)
        print(report.render())
        if not row["ranks_match"]:
            print("vectorized ranks diverge from the naive reference", file=sys.stderr)
            write_bench_json(args.workload, row, directory=args.out)
            return 1
    elif args.workload == "search":
        rows = time_search_steps(graph, workers=args.workers, dim=min(args.dim, 32), seed=args.seed)
        report = TableReport("search workload: one budgeted step per registered searcher")
        for searcher_row in rows:
            report.add_row(**searcher_row)
        print(report.render())
        path = write_bench_json("search", rows, directory=args.out)
        print(f"perf trajectory written to {path}")
        # One row per searcher, so --output writes the list (unlike the single-row workloads).
        if args.output:
            save_json(rows, args.output)
            print(f"result rows written to {args.output}")
        return 0
    elif args.workload == "sweep":
        row = time_sweep(
            dataset=args.dataset,
            scale=args.scale,
            workers=args.workers,
            dim=min(args.dim, 32),
            data_seed=args.data_seed,
        )
        report = TableReport("sweep workload: serial vs pooled shard execution")
        report.add_row(**row)
        print(report.render())
        path = write_bench_json("sweep", row, directory=args.out)
        print(f"perf trajectory written to {path}")
        if not row["reports_match"]:
            print("pooled sweep report diverges from the serial report", file=sys.stderr)
            return 1
    elif args.workload == "streaming":
        row = time_streaming_updates(
            graph,
            num_deltas=args.deltas,
            delta_triples=args.delta_triples,
            queries_per_delta=max(1, args.queries // max(args.deltas, 1)),
            dim=min(args.dim, 32),
            k=args.top_k,
            seed=args.seed,
        )
        report = TableReport("streaming workload: interleaved graph updates and queries")
        report.add_row(**row)
        print(report.render())
        if not row["merge_matches_rebuild"] or row["failed_queries"] or row["stale_results"]:
            print(
                "streaming workload failed fidelity checks (merge/rebuild divergence, "
                "failed queries, or stale results)",
                file=sys.stderr,
            )
            write_bench_json(args.workload, row, directory=args.out)
            return 1
    elif args.workload == "shm":
        row = time_shm_transport(graph, workers=args.workers, seed=args.seed)
        report = TableReport("shared-memory transport: publish/attach vs pickle round-trip")
        report.add_row(**row)
        print(report.render())
        path = write_bench_json("shm", row, directory=args.out)
        print(f"perf trajectory written to {path}")
        if not (row["views_match"] and row["segments_released"]):
            print("shared-memory transport failed fidelity or cleanup checks", file=sys.stderr)
            return 1
    else:
        model, _ = train_structure(graph, named_structure("distmult"), dim=min(args.dim, 32), epochs=8, seed=args.seed)
        engine = LinkPredictionEngine.from_graph(model, graph)
        service = PredictionService(engine)
        queries = _random_queries(
            new_rng(args.seed), args.queries, graph.num_relations, graph.num_entities, args.top_k
        )
        service.query_many(queries)
        print(service.stats_table().render())
        print(service.cache_table().render())
        row = service.stats.as_row()
    # Every workload contributes to the perf trajectory in --out, so regenerating a
    # baseline is the same one-liner regardless of workload.
    path = write_bench_json(args.workload, row, directory=args.out)
    print(f"perf trajectory written to {path}")
    if args.output:
        save_json(row, args.output)
        print(f"result row written to {args.output}")
    return 0


# ---------------------------------------------------------------------------- entry
def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of ``python -m repro``; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "handler", None) is None:
        parser.print_help()
        return 1
    try:
        return int(args.handler(args) or 0)
    except DatasetResolutionError as error:
        # A bad --dataset/--datasets spec is a usage error, not a crash: exit 2 with
        # the resolver's message (which names the registry and the ./name escape).
        print(f"error: {error}", file=sys.stderr)
        return 2
