"""The :class:`SearchRunner` facade: one object that owns the whole pipeline.

A run is *dataset -> search -> re-train winner -> evaluate -> publish*:

- the dataset comes from :mod:`repro.datasets.registry`,
- the search is any of the four searchers (ERAS, ERAS_N=1, AutoSF, random, Bayes),
  evaluated through a shared :class:`~repro.runtime.evaluation.EvaluationPool`,
- ERAS searches are checkpointed to JSON between epochs and resumed automatically
  (:mod:`repro.runtime.checkpoint`),
- the winning candidate is re-trained from scratch (:mod:`repro.models.trainer`),
  evaluated with the filtered ranking protocol (:mod:`repro.eval.ranking`), and
- the trained model is published into the versioned
  :class:`~repro.serve.artifacts.ModelArtifactRegistry` of the serving subsystem.

``python -m repro`` is a thin argparse layer over this class; scripts and tests can
drive it directly.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.datasets import load_benchmark
from repro.eval.ranking import RankingEvaluator, RankingMetrics
from repro.kg.graph import KnowledgeGraph
from repro.models.kge import KGEModel
from repro.models.trainer import TrainingResult
from repro.search import SearchResult
from repro.search.autosf import AutoSFSearcher
from repro.search.bayes_search import BayesSearcher
from repro.search.eras import ERASSearcher
from repro.search.random_search import RandomSearcher
from repro.search.variants import eras_n1
from repro.serve.artifacts import ArtifactRef, ModelArtifactRegistry
from repro.utils.logging import get_logger
from repro.utils.serialization import to_jsonable

from repro.runtime.checkpoint import load_search_checkpoint, save_search_checkpoint
from repro.runtime.evaluation import EvalCache, EvaluationPool

logger = get_logger("runtime.runner")

SEARCHER_NAMES: Tuple[str, ...] = ("eras", "eras_n1", "autosf", "random", "bayes")


@dataclass
class RunConfig:
    """Everything a :class:`SearchRunner` needs, CLI-addressable field by field.

    Fields
    ------
    dataset:
        Synthetic benchmark name from :mod:`repro.datasets.registry`
        (default ``"wn18rr_like"``).
    scale:
        Dataset scale factor passed to the registry (default 1.0, > 0).
    data_seed:
        Seed of the synthetic dataset generator (default 0).
    searcher:
        One of ``eras | eras_n1 | autosf | random | bayes`` (default ``"eras"``).
    num_groups:
        N, relation groups of the ERAS search (default 3, >= 1; ignored by the
        task-aware searchers).
    num_blocks:
        M, structure block count shared by every searcher (default 4, >= 2).
    search_epochs:
        ERAS search epochs (default 15, >= 1; ignored by the stand-alone searchers).
    num_candidates:
        Candidate budget of the random / Bayes searchers (default 8, >= 1).
    derive_samples:
        K, ERAS derive-phase samples (default 16, >= 1).
    dim:
        Embedding dimension of the supernet and the final re-trained model
        (default 48, > 0).
    seed:
        Seed of the search and the final training (default 0).
    workers:
        Evaluation-pool processes; 1 is serial in-process, 0 means all cores
        (default 1).  Any value yields a bit-identical winning candidate.
    checkpoint_path:
        Optional JSON file for epoch-level ERAS checkpointing; if it exists the
        search resumes from it (default None; ignored for non-ERAS searchers).
    checkpoint_every:
        Write the checkpoint every this many epochs (default 1, >= 1).
    train_final:
        Re-train the winning candidate from scratch and evaluate it
        (default True; False stops after the search).
    train_epochs:
        Epochs of the final from-scratch training (default 30, >= 1).
    rerank:
        Re-rank the searcher's top candidates with short training runs before the
        final training (default True; reduces one-shot proxy variance).
    eval_split:
        Split of the final ranking evaluation, ``"valid"`` or ``"test"``
        (default ``"test"``).
    registry_root:
        Root directory of the model artifact registry; when set, the trained model
        is published there (default None).
    model_name:
        Artifact name in the registry (default None: ``"<searcher>-<dataset>"``).
    """

    dataset: str = "wn18rr_like"
    scale: float = 1.0
    data_seed: int = 0
    searcher: str = "eras"
    num_groups: int = 3
    num_blocks: int = 4
    search_epochs: int = 15
    num_candidates: int = 8
    derive_samples: int = 16
    dim: int = 48
    seed: int = 0
    workers: int = 1
    checkpoint_path: Optional[str] = None
    checkpoint_every: int = 1
    train_final: bool = True
    train_epochs: int = 30
    rerank: bool = True
    eval_split: str = "test"
    registry_root: Optional[str] = None
    model_name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.searcher not in SEARCHER_NAMES:
            raise ValueError(f"unknown searcher {self.searcher!r}; choose from {SEARCHER_NAMES}")
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        if self.workers < 0:
            raise ValueError("workers must be >= 0 (0 means all cores)")
        if min(self.num_groups, self.search_epochs, self.num_candidates, self.derive_samples) < 1:
            raise ValueError("num_groups, search_epochs, num_candidates and derive_samples must be positive")
        if self.num_blocks < 2:
            raise ValueError("num_blocks must be at least 2")
        if self.dim < 1 or self.train_epochs < 1 or self.checkpoint_every < 1:
            raise ValueError("dim, train_epochs and checkpoint_every must be positive")
        if self.eval_split not in ("valid", "test"):
            raise ValueError("eval_split must be 'valid' or 'test'")


@dataclass
class RunReport:
    """Outcome of one :meth:`SearchRunner.run` pipeline.

    Fields
    ------
    config:
        The :class:`RunConfig` that produced this report.
    search_result:
        The :class:`~repro.search.result.SearchResult` of the search stage.
    training:
        The final from-scratch :class:`~repro.models.trainer.TrainingResult`
        (None when ``train_final`` was off).
    metrics:
        Filtered ranking metrics of the re-trained model on ``eval_split``
        (None when ``train_final`` was off).
    artifact:
        Registry reference of the published model (None unless ``registry_root``
        was set).
    """

    config: RunConfig
    search_result: SearchResult
    training: Optional[TrainingResult] = None
    metrics: Optional[RankingMetrics] = None
    artifact: Optional[ArtifactRef] = None

    def summary(self) -> Dict[str, object]:
        """Compact JSON-friendly description of the run."""
        summary: Dict[str, object] = dict(self.search_result.summary())
        summary["workers"] = self.config.workers
        if self.training is not None:
            summary["final_train_epochs"] = self.training.epochs_run
            summary["final_valid_mrr"] = round(self.training.best_valid_mrr, 4)
        if self.metrics is not None:
            summary.update(
                {f"{self.config.eval_split}_{key}": value for key, value in self.metrics.as_row().items()}
            )
        if self.artifact is not None:
            summary["artifact"] = f"{self.artifact.name}/v{self.artifact.version}"
        return to_jsonable(summary)


class SearchRunner:
    """Owns dataset, pool, searcher, training, evaluation and publishing for one run."""

    def __init__(self, config: RunConfig, pool: Optional[EvaluationPool] = None) -> None:
        self.config = config
        self.pool = pool if pool is not None else EvaluationPool(n_workers=config.workers, cache=EvalCache())
        self._graph: Optional[KnowledgeGraph] = None
        self._evaluator: Optional[RankingEvaluator] = None

    # ------------------------------------------------------------------ components
    @property
    def graph(self) -> KnowledgeGraph:
        """The benchmark graph (loaded once, memoised by the dataset registry)."""
        if self._graph is None:
            self._graph = load_benchmark(
                self.config.dataset, scale=self.config.scale, seed=self.config.data_seed
            )
        return self._graph

    def build_searcher(self):
        """Instantiate the configured searcher, wired to the shared evaluation pool."""
        from repro.bench.workloads import (
            quick_autosf_config,
            quick_bayes_config,
            quick_eras_config,
            quick_random_config,
        )

        config = self.config
        if config.searcher in ("eras", "eras_n1"):
            groups = 1 if config.searcher == "eras_n1" else config.num_groups
            eras_config = dataclasses.replace(
                quick_eras_config(
                    num_groups=groups,
                    num_blocks=config.num_blocks,
                    epochs=config.search_epochs,
                    dim=config.dim,
                    seed=config.seed,
                ),
                derive_samples=config.derive_samples,
            )
            if config.searcher == "eras_n1":
                return eras_n1(eras_config, pool=self.pool)
            return ERASSearcher(eras_config, pool=self.pool)
        if config.searcher == "autosf":
            autosf_config = dataclasses.replace(
                quick_autosf_config(seed=config.seed),
                num_blocks=config.num_blocks,
                embedding_dim=config.dim,
            )
            return AutoSFSearcher(autosf_config, pool=self.pool)
        if config.searcher == "random":
            random_config = dataclasses.replace(
                quick_random_config(num_candidates=config.num_candidates, seed=config.seed),
                num_blocks=config.num_blocks,
                embedding_dim=config.dim,
            )
            return RandomSearcher(random_config, pool=self.pool)
        bayes_config = dataclasses.replace(
            quick_bayes_config(num_candidates=config.num_candidates, seed=config.seed),
            num_blocks=config.num_blocks,
            embedding_dim=config.dim,
        )
        return BayesSearcher(bayes_config, pool=self.pool)

    # ------------------------------------------------------------------ stages
    def search(self) -> SearchResult:
        """Run (or resume) the configured search and return its result."""
        searcher = self.build_searcher()
        checkpoint = self.config.checkpoint_path
        if checkpoint and isinstance(searcher, ERASSearcher):
            return self._run_checkpointed(searcher, Path(checkpoint))
        if checkpoint:
            logger.warning(
                "checkpointing is only supported for the ERAS searchers; ignoring %s", checkpoint
            )
        return searcher.search(self.graph)

    def _run_checkpointed(self, searcher: ERASSearcher, path: Path) -> SearchResult:
        if path.exists():
            state = load_search_checkpoint(path, searcher, self.graph)
            logger.info("resumed search from %s at epoch %d", path, state.epochs_completed)
        else:
            state = searcher.init_state(self.graph)
        while state.epochs_completed < searcher.config.epochs:
            searcher.run_epoch(state)
            if (
                state.epochs_completed % self.config.checkpoint_every == 0
                or state.epochs_completed == searcher.config.epochs
            ):
                save_search_checkpoint(path, searcher, state)
        return searcher.finalize(state)

    def train(self, result: SearchResult) -> Tuple[KGEModel, TrainingResult]:
        """Re-train the winning candidate from scratch (the paper's final protocol)."""
        from repro.bench.workloads import retrain_searched, train_candidate

        config = self.config
        if config.rerank:
            return retrain_searched(
                self.graph, result, dim=config.dim, epochs=config.train_epochs, seed=config.seed
            )
        return train_candidate(
            self.graph,
            result.best_candidate,
            result.best_assignment,
            dim=config.dim,
            epochs=config.train_epochs,
            seed=config.seed,
        )

    def evaluate(self, model: KGEModel) -> RankingMetrics:
        """Filtered ranking metrics of ``model`` on the configured split.

        The evaluator is memoised (it shares the graph's cached filter index and its
        own per-split flat filter arrays), so evaluating many models per run pays the
        filter setup once.
        """
        if self._evaluator is None:
            self._evaluator = RankingEvaluator(self.graph)
        return self._evaluator.evaluate(model, split=self.config.eval_split)

    def publish(
        self,
        model: KGEModel,
        result: Optional[SearchResult] = None,
        metrics: Optional[RankingMetrics] = None,
        source: Optional[str] = None,
    ) -> ArtifactRef:
        """Store ``model`` as the next version of the configured registry artifact.

        ``source`` labels where the model came from in the manifest metadata; it
        defaults to the search result's algorithm (or the configured searcher), so a
        model trained from e.g. a classic structure is not attributed to a search.
        """
        config = self.config
        if not config.registry_root:
            raise ValueError("RunConfig.registry_root must be set to publish a model")
        registry = ModelArtifactRegistry(config.registry_root)
        name = config.model_name or f"{config.searcher}-{config.dataset}"
        metadata: Dict[str, object] = {
            "dataset": config.dataset,
            "scale": config.scale,
            "searcher": source or (result.searcher if result is not None else config.searcher),
            "seed": config.seed,
        }
        if result is not None:
            metadata["search"] = result.summary()
        if metrics is not None:
            metadata[f"{config.eval_split}_metrics"] = metrics.as_row()
        ref = registry.save(
            name,
            model,
            entity_vocab=self.graph.entity_vocab,
            relation_vocab=self.graph.relation_vocab,
            metadata=to_jsonable(metadata),
        )
        logger.info("published %s/v%d to %s", ref.name, ref.version, config.registry_root)
        return ref

    # ------------------------------------------------------------------ pipeline
    def run(self) -> RunReport:
        """Full pipeline: search, optional re-train + evaluate, optional publish."""
        result = self.search()
        report = RunReport(config=self.config, search_result=result)
        if self.config.train_final:
            model, training = self.train(result)
            report.training = training
            report.metrics = self.evaluate(model)
            if self.config.registry_root:
                report.artifact = self.publish(model, result, report.metrics)
        return report
