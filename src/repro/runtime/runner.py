"""The :class:`SearchRunner` facade: one object that owns the whole pipeline.

A run is *dataset -> search -> re-train winner -> evaluate -> publish*:

- the dataset is anything :func:`repro.datasets.resolve_dataset` accepts -- a
  registry benchmark name or a directory of ``train.txt``/``valid.txt``/``test.txt``
  TSV files (see ``docs/DATASETS.md``),
- the search is any algorithm of the :mod:`repro.search.registry` plugin registry
  (``eras``, ``eras_n1``, ``eras_diff``, ``autosf``, ``random``, ``bayes``, plus
  anything third-party code registered), built against a shared
  :class:`~repro.runtime.evaluation.EvaluationPool` and driven through the stepwise
  :class:`~repro.search.base.Searcher` protocol under an optional
  :class:`~repro.search.base.SearchBudget`,
- every search is checkpointed to JSON between steps and resumed automatically when a
  checkpoint path is configured (:mod:`repro.runtime.checkpoint`),
- the winning candidate is re-trained from scratch (:mod:`repro.models.trainer`),
  evaluated with the filtered ranking protocol (:mod:`repro.eval.ranking`), and
- the trained model is published into the versioned
  :class:`~repro.serve.artifacts.ModelArtifactRegistry` of the serving subsystem.

``python -m repro`` is a thin argparse layer over this class; scripts and tests can
drive it directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple

from repro.datasets import dataset_label, resolve_dataset
from repro.eval.ranking import RankingEvaluator, RankingMetrics
from repro.kg.graph import KnowledgeGraph
from repro.models.kge import KGEModel
from repro.models.trainer import TrainingResult
from repro.search import SearchResult
from repro.search.base import Searcher, SearchBudget, SearchState
from repro.search.registry import SearcherOptions, available_searchers, create_searcher
from repro.serve.artifacts import ArtifactRef, ModelArtifactRegistry
from repro.utils.logging import get_logger
from repro.utils.serialization import to_jsonable

from repro.runtime.checkpoint import load_search_checkpoint, save_search_checkpoint
from repro.runtime.evaluation import EvalCache, EvaluationPool

logger = get_logger("runtime.runner")


@dataclass
class RunConfig:
    """Everything a :class:`SearchRunner` needs, CLI-addressable field by field.

    Fields
    ------
    dataset:
        Synthetic benchmark name from :mod:`repro.datasets.registry` *or* a
        directory containing ``train.txt``/``valid.txt``/``test.txt``, resolved by
        :func:`repro.datasets.resolve_dataset` (default ``"wn18rr_like"``).
    scale:
        Dataset scale factor passed to the registry (default 1.0, > 0; rejected for
        directory datasets, which have a fixed size).
    data_seed:
        Seed of the synthetic dataset generator (default 0).
    searcher:
        Any name from :func:`repro.search.registry.available_searchers` -- the
        built-ins are ``eras | eras_n1 | eras_diff | autosf | random | bayes``
        (default ``"eras"``); unknown names raise :class:`ValueError` listing the
        registered searchers.
    num_groups:
        N, relation groups of the ERAS search (default 3, >= 1; ignored by the
        task-aware searchers).
    num_blocks:
        M, structure block count shared by every searcher (default 4, >= 2).
    search_epochs:
        ERAS search epochs (default 15, >= 1; ignored by the stand-alone searchers).
    num_candidates:
        Candidate budget of the random / Bayes searchers (default 8, >= 1).
    derive_samples:
        K, ERAS derive-phase samples (default 16, >= 1).
    dim:
        Embedding dimension of the supernet and the final re-trained model
        (default 48, > 0).
    seed:
        Seed of the search and the final training (default 0).
    workers:
        Evaluation-pool processes; 1 is serial in-process, 0 means all cores
        (default 1).  Any value yields a bit-identical winning candidate.
    proxy_epochs:
        Override of the stand-alone per-candidate training epochs of the
        AutoSF/random/Bayes evaluation proxy (default None: each algorithm's
        benchmark budget; >= 1 when set).
    checkpoint_path:
        Optional JSON file for step-level checkpointing; if it exists the search
        resumes from it (default None; supported by every registered searcher).
    checkpoint_every:
        Write the checkpoint every this many steps (default 1, >= 1).
    budget_steps:
        Stop the search after this many steps (default None = unlimited, >= 1).
    budget_evals:
        Stop the search once this many candidate evaluations were performed
        (default None = unlimited, >= 1).
    budget_seconds:
        Stop the search once its cumulative wall clock reaches this many seconds
        (default None = unlimited, > 0).
    train_final:
        Re-train the winning candidate from scratch and evaluate it
        (default True; False stops after the search).
    train_epochs:
        Epochs of the final from-scratch training (default 30, >= 1).
    rerank:
        Re-rank the searcher's top candidates with short training runs before the
        final training (default True; reduces one-shot proxy variance).
    eval_split:
        Split of the final ranking evaluation, ``"valid"`` or ``"test"``
        (default ``"test"``).
    registry_root:
        Root directory of the model artifact registry; when set, the trained model
        is published there (default None).
    model_name:
        Artifact name in the registry (default None:
        ``"<searcher>-<dataset label>"``, see :func:`repro.datasets.dataset_label`).
    """

    dataset: str = "wn18rr_like"
    scale: float = 1.0
    data_seed: int = 0
    searcher: str = "eras"
    num_groups: int = 3
    num_blocks: int = 4
    search_epochs: int = 15
    num_candidates: int = 8
    derive_samples: int = 16
    dim: int = 48
    seed: int = 0
    workers: int = 1
    proxy_epochs: Optional[int] = None
    checkpoint_path: Optional[str] = None
    checkpoint_every: int = 1
    budget_steps: Optional[int] = None
    budget_evals: Optional[int] = None
    budget_seconds: Optional[float] = None
    train_final: bool = True
    train_epochs: int = 30
    rerank: bool = True
    eval_split: str = "test"
    registry_root: Optional[str] = None
    model_name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.searcher not in available_searchers():
            raise ValueError(
                f"unknown searcher {self.searcher!r}; choose from: {', '.join(available_searchers())}"
            )
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        if self.workers < 0:
            raise ValueError("workers must be >= 0 (0 means all cores)")
        if min(self.num_groups, self.search_epochs, self.num_candidates, self.derive_samples) < 1:
            raise ValueError("num_groups, search_epochs, num_candidates and derive_samples must be positive")
        if self.num_blocks < 2:
            raise ValueError("num_blocks must be at least 2")
        if self.dim < 1 or self.train_epochs < 1 or self.checkpoint_every < 1:
            raise ValueError("dim, train_epochs and checkpoint_every must be positive")
        if self.proxy_epochs is not None and self.proxy_epochs < 1:
            raise ValueError("proxy_epochs must be >= 1 (or None for the default budget)")
        if self.eval_split not in ("valid", "test"):
            raise ValueError("eval_split must be 'valid' or 'test'")
        # SearchBudget validates the budget fields; build it once to fail fast.
        self.search_budget()

    def search_budget(self) -> Optional[SearchBudget]:
        """The configured :class:`~repro.search.base.SearchBudget`, or None if unbounded."""
        if self.budget_steps is None and self.budget_evals is None and self.budget_seconds is None:
            return None
        return SearchBudget(
            max_steps=self.budget_steps,
            max_evaluations=self.budget_evals,
            max_seconds=self.budget_seconds,
        )


@dataclass
class RunReport:
    """Outcome of one :meth:`SearchRunner.run` pipeline.

    Fields
    ------
    config:
        The :class:`RunConfig` that produced this report.
    search_result:
        The :class:`~repro.search.result.SearchResult` of the search stage.
    training:
        The final from-scratch :class:`~repro.models.trainer.TrainingResult`
        (None when ``train_final`` was off).
    metrics:
        Filtered ranking metrics of the re-trained model on ``eval_split``
        (None when ``train_final`` was off).
    artifact:
        Registry reference of the published model (None unless ``registry_root``
        was set).
    """

    config: RunConfig
    search_result: SearchResult
    training: Optional[TrainingResult] = None
    metrics: Optional[RankingMetrics] = None
    artifact: Optional[ArtifactRef] = None

    def summary(self) -> Dict[str, object]:
        """Compact JSON-friendly description of the run."""
        summary: Dict[str, object] = dict(self.search_result.summary())
        summary["workers"] = self.config.workers
        if self.training is not None:
            summary["final_train_epochs"] = self.training.epochs_run
            summary["final_valid_mrr"] = round(self.training.best_valid_mrr, 4)
        if self.metrics is not None:
            summary.update(
                {f"{self.config.eval_split}_{key}": value for key, value in self.metrics.as_row().items()}
            )
        if self.artifact is not None:
            summary["artifact"] = f"{self.artifact.name}/v{self.artifact.version}"
        return to_jsonable(summary)


# Process-wide evaluator memo keyed by graph identity.  Many runners evaluating on the
# same (registry-memoised) graph -- e.g. every shard a sweep worker executes on one
# dataset -- share a single RankingEvaluator, so the per-split flat filter arrays are
# built once per worker process instead of once per shard.  Holding the graph itself
# keeps the id() key alive, so a match can never be a recycled object.  The memo is
# bounded (insertion-order eviction): a sweep worker touches a handful of datasets,
# and an unbounded cache would pin every graph a long-lived process ever evaluated.
_EVALUATOR_MEMO: Dict[int, Tuple[KnowledgeGraph, RankingEvaluator]] = {}
_EVALUATOR_MEMO_SIZE = 4


def shared_evaluator(graph: KnowledgeGraph) -> RankingEvaluator:
    """The process-wide memoised :class:`~repro.eval.ranking.RankingEvaluator` of ``graph``."""
    entry = _EVALUATOR_MEMO.get(id(graph))
    if entry is None or entry[0] is not graph:
        while len(_EVALUATOR_MEMO) >= _EVALUATOR_MEMO_SIZE:
            _EVALUATOR_MEMO.pop(next(iter(_EVALUATOR_MEMO)))
        entry = (graph, RankingEvaluator(graph))
        _EVALUATOR_MEMO[id(graph)] = entry
    return entry[1]


class SearchRunner:
    """Owns dataset, pool, searcher, training, evaluation and publishing for one run.

    Every stage is independently callable -- :meth:`search`, :meth:`train`,
    :meth:`evaluate`, :meth:`publish` -- which is what lets the sweep orchestrator
    (:mod:`repro.runtime.orchestrator`) drive one runner per shard without repeating
    the dataset or evaluator setup: pass a pre-loaded ``graph`` to share it across
    runners, and the evaluator is memoised per graph process-wide.
    """

    def __init__(
        self,
        config: RunConfig,
        pool: Optional[EvaluationPool] = None,
        graph: Optional[KnowledgeGraph] = None,
    ) -> None:
        self.config = config
        self.pool = pool if pool is not None else EvaluationPool(n_workers=config.workers, cache=EvalCache())
        self._graph: Optional[KnowledgeGraph] = graph

    # ------------------------------------------------------------------ components
    @property
    def graph(self) -> KnowledgeGraph:
        """The dataset graph (loaded once, memoised by the resolver per spec)."""
        if self._graph is None:
            self._graph = resolve_dataset(
                self.config.dataset, scale=self.config.scale, seed=self.config.data_seed
            )
        return self._graph

    def build_searcher(self) -> Searcher:
        """Instantiate the configured searcher through the plugin registry, wired to
        the shared evaluation pool.  Unknown names raise :class:`ValueError` listing
        :func:`~repro.search.registry.available_searchers`."""
        config = self.config
        options = SearcherOptions(
            num_groups=config.num_groups,
            num_blocks=config.num_blocks,
            search_epochs=config.search_epochs,
            num_candidates=config.num_candidates,
            derive_samples=config.derive_samples,
            dim=config.dim,
            seed=config.seed,
            proxy_epochs=config.proxy_epochs,
        )
        return create_searcher(config.searcher, options, pool=self.pool)

    # ------------------------------------------------------------------ stages
    def search(self, on_step: Optional[Callable[[SearchState], None]] = None) -> SearchResult:
        """Run (or resume) the configured search under the configured budget.

        ``on_step`` is invoked after every completed step (and, on the checkpointed
        path, after the step's checkpoint write) -- the sweep orchestrator hooks its
        fault-injection and progress reporting here.
        """
        searcher = self.build_searcher()
        budget = self.config.search_budget()
        if self.config.checkpoint_path:
            return self._run_checkpointed(
                searcher, Path(self.config.checkpoint_path), budget, on_step=on_step
            )
        return searcher.drive(searcher.init_state(self.graph), budget=budget, on_step=on_step)

    def _run_checkpointed(
        self,
        searcher: Searcher,
        path: Path,
        budget: Optional[SearchBudget] = None,
        on_step: Optional[Callable[[SearchState], None]] = None,
    ) -> SearchResult:
        """Drive the stepwise loop, persisting the state every ``checkpoint_every`` steps.

        Works for every registered searcher: the generic checkpoint envelope wraps
        whatever the searcher's ``state_dict`` returns.
        """
        if path.exists():
            state = load_search_checkpoint(path, searcher, self.graph)
            logger.info(
                "resumed %s search from %s at step %d", searcher.name, path, state.steps_completed
            )
        else:
            state = searcher.init_state(self.graph)

        def checkpoint_step(current: SearchState) -> None:
            if (
                current.steps_completed % self.config.checkpoint_every == 0
                or searcher.is_complete(current)
            ):
                save_search_checkpoint(path, searcher, current)
            if on_step is not None:
                on_step(current)

        return searcher.drive(state, budget=budget, on_step=checkpoint_step)

    def train(self, result: SearchResult) -> Tuple[KGEModel, TrainingResult]:
        """Re-train the winning candidate from scratch (the paper's final protocol)."""
        from repro.bench.workloads import retrain_searched, train_candidate

        config = self.config
        if config.rerank:
            return retrain_searched(
                self.graph, result, dim=config.dim, epochs=config.train_epochs, seed=config.seed
            )
        return train_candidate(
            self.graph,
            result.best_candidate,
            result.best_assignment,
            dim=config.dim,
            epochs=config.train_epochs,
            seed=config.seed,
        )

    def evaluate(self, model: KGEModel) -> RankingMetrics:
        """Filtered ranking metrics of ``model`` on the configured split.

        The evaluator is memoised per graph process-wide (:func:`shared_evaluator`):
        it shares the graph's cached filter index and its own per-split flat filter
        arrays, so evaluating many models -- or many runners on the same graph, as a
        sweep worker does -- pays the filter setup once.
        """
        return shared_evaluator(self.graph).evaluate(model, split=self.config.eval_split)

    def publish(
        self,
        model: KGEModel,
        result: Optional[SearchResult] = None,
        metrics: Optional[RankingMetrics] = None,
        source: Optional[str] = None,
    ) -> ArtifactRef:
        """Store ``model`` as the next version of the configured registry artifact.

        ``source`` labels where the model came from in the manifest metadata; it
        defaults to the search result's algorithm (or the configured searcher), so a
        model trained from e.g. a classic structure is not attributed to a search.
        """
        config = self.config
        if not config.registry_root:
            raise ValueError("RunConfig.registry_root must be set to publish a model")
        registry = ModelArtifactRegistry(config.registry_root)
        name = config.model_name or f"{config.searcher}-{dataset_label(config.dataset)}"
        metadata: Dict[str, object] = {
            "dataset": str(config.dataset),
            "scale": config.scale,
            "searcher": source or (result.searcher if result is not None else config.searcher),
            "seed": config.seed,
        }
        if result is not None:
            metadata["search"] = result.summary()
        if metrics is not None:
            metadata[f"{config.eval_split}_metrics"] = metrics.as_row()
        ref = registry.save(
            name,
            model,
            entity_vocab=self.graph.entity_vocab,
            relation_vocab=self.graph.relation_vocab,
            metadata=to_jsonable(metadata),
        )
        logger.info("published %s/v%d to %s", ref.name, ref.version, config.registry_root)
        return ref

    # ------------------------------------------------------------------ pipeline
    def run(self) -> RunReport:
        """Full pipeline: search, optional re-train + evaluate, optional publish."""
        result = self.search()
        report = RunReport(config=self.config, search_result=result)
        if self.config.train_final:
            model, training = self.train(result)
            report.training = training
            report.metrics = self.evaluate(model)
            if self.config.registry_root:
                report.artifact = self.publish(model, result, report.metrics)
        return report
