"""Zero-copy payload transport over ``multiprocessing.shared_memory``.

The evaluation fan-out of every searcher ships the same few *big, read-only* arrays to
its workers -- triple arrays, embedding tables, the CSR buffers of a
:class:`~repro.kg.filter_index.FilterIndex` -- while the per-candidate payloads stay
tiny.  Before this module, those big arrays travelled by pickle on **every**
``EvaluationPool.map`` call (and every sweep worker re-imported its dataset), which is
exactly why the committed baselines showed the pool *losing* to serial.  Here they are
published **once** into named POSIX shared-memory segments and every process -- the
publisher included -- reads them through zero-copy NumPy views:

- :func:`publish_arrays` copies a dict of arrays into fresh segments and returns a
  picklable :class:`BundleHandle` (segment names + dtypes/shapes, a few hundred bytes);
- :func:`attach_arrays` maps a handle back to read-only views.  In the publishing
  process it short-circuits to the original owner views; elsewhere it attaches the
  named segments, **refcounted per bundle** so repeated attaches cost one lookup and
  the mappings close exactly when the last user releases them;
- :func:`release_arrays` / :func:`unpublish` manage the two ends of the lifecycle, and
  :func:`unpublish_all` (also registered via ``atexit``) guarantees the owner unlinks
  its segments on normal interpreter exit;
- :class:`SharedGraphPayload` is the domain-level wrapper: a whole
  :class:`~repro.kg.graph.KnowledgeGraph` (splits + pre-built CSR filter index) behind
  one handle, resolving to the *original* graph object in the publisher and to a
  zero-copy reconstruction everywhere else, memoised per content digest.

Crash safety
------------
Only the publishing process unlinks segments, and only the publisher is known to
Python's ``resource_tracker``.  Workers attach through a raw ``shm_open`` + ``mmap``
(no ``SharedMemory`` object, hence no tracker registration): a *tracked* attachment
would make a SIGKILLed worker's tracker "clean up" segments the publisher and its
sibling workers still use (a Python 3.11 sharp edge; opt-out tracking only arrived in
3.13).  The publisher keeps its own registration, so even a hard-killed publisher
leaks nothing -- its tracker unlinks the segments when the process tree dies.
``tests/test_shm.py`` gates all three exits (normal release, owner ``atexit``,
SIGKILLed worker) against ``/dev/shm`` leftovers, and the suite-wide session fixture
asserts zero leaked ``repro_shm_*`` segments after the full run.
"""

from __future__ import annotations

import atexit
import hashlib
import mmap
import os
import secrets
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.utils.logging import get_logger

logger = get_logger("runtime.shm")

#: Every segment this module creates starts with this prefix, so leak checks (the
#: session fixture of the test suite, :func:`leaked_segments`) can scan ``/dev/shm``
#: without ever confusing foreign segments for ours.
SHM_PREFIX = "repro_shm_"

try:  # pragma: no cover - exercised implicitly by every publish/attach
    from multiprocessing import shared_memory as _shared_memory
    from multiprocessing import resource_tracker as _resource_tracker

    HAVE_SHARED_MEMORY = True
except ImportError:  # pragma: no cover - all supported platforms ship it
    _shared_memory = None
    _resource_tracker = None
    HAVE_SHARED_MEMORY = False

try:  # pragma: no cover - CPython's POSIX shared-memory primitive (Linux/macOS)
    import _posixshmem
except ImportError:  # pragma: no cover - Windows: fall back to tracked SharedMemory
    _posixshmem = None


class ShmError(RuntimeError):
    """A shared-memory bundle could not be published, attached or released."""


@dataclass(frozen=True)
class SegmentSpec:
    """Picklable description of one published array segment.

    Fields
    ------
    name:
        Name of the POSIX shared-memory segment (``/dev/shm/<name>`` on Linux),
        always starting with :data:`SHM_PREFIX`.
    shape:
        Shape of the stored array.
    dtype:
        NumPy dtype string of the stored array.
    """

    name: str
    shape: Tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        """Size of the stored array in bytes."""
        return int(np.dtype(self.dtype).itemsize * int(np.prod(self.shape, dtype=np.int64)))


@dataclass(frozen=True)
class BundleHandle:
    """Picklable reference to a published bundle of arrays.

    The handle is what travels to workers (a few hundred bytes) instead of the arrays
    themselves; :func:`attach_arrays` turns it back into zero-copy views.

    Fields
    ------
    token:
        Process-unique identity of the bundle (content digest plus a random tag);
        refcounting, memoisation and ownership checks key on it.
    owner_pid:
        PID of the publishing process; :func:`attach_arrays` short-circuits to the
        owner's views when it runs there.
    segments:
        ``(key, spec)`` pairs, one per published array, in publication order.
    """

    token: str
    owner_pid: int
    segments: Tuple[Tuple[str, SegmentSpec], ...]

    @property
    def total_bytes(self) -> int:
        """Total payload size behind this handle."""
        return sum(spec.nbytes for _, spec in self.segments)


class _OwnedBundle:
    """Publisher-side record: the live segments plus the owner's views."""

    def __init__(self, handle: BundleHandle, segments: List, arrays: Dict[str, np.ndarray]) -> None:
        self.handle = handle
        self.segments = segments  # live SharedMemory objects, parallel to handle.segments
        self.arrays = arrays

    def destroy(self) -> None:
        for segment in self.segments:
            try:
                segment.close()
            except (OSError, BufferError, ValueError):
                # A live NumPy view still exports the buffer: the mapping stays until
                # the view dies, but the name must disappear regardless -- fall through.
                pass
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass
        self.segments = []
        self.arrays = {}


class _Attachment:
    """Attacher-side record: mapped segments, views and a refcount."""

    def __init__(self, segments: List, arrays: Dict[str, np.ndarray]) -> None:
        self.segments = segments
        self.arrays = arrays
        self.refcount = 1

    def close(self) -> None:
        for segment in self.segments:
            try:
                segment.close()
            except (OSError, BufferError, ValueError):
                # Views handed out earlier may still export the buffer; the mapping
                # then lives exactly as long as those views do.
                pass
        self.segments = []
        self.arrays = {}


_OWNED: Dict[str, _OwnedBundle] = {}
_ATTACHED: Dict[str, _Attachment] = {}


def _reset_child_state() -> None:
    """Forget inherited registries in a forked child.

    A ``fork`` worker inherits ``_OWNED``/``_ATTACHED`` by reference-copy.  The child
    must never treat itself as the owner (its ``atexit`` would unlink segments the
    parent still serves) and its inherited refcounts are meaningless, so both maps are
    cleared; the child re-attaches by name on first use.  The inherited *mappings*
    stay valid for the parent -- clearing our bookkeeping does not unmap anything.
    """
    _OWNED.clear()
    _ATTACHED.clear()


if hasattr(os, "register_at_fork"):  # POSIX; Windows uses spawn and never forks
    os.register_at_fork(after_in_child=_reset_child_state)


def _attach_mapping(name: str):
    """Map an existing segment read-only WITHOUT registering it anywhere.

    ``SharedMemory(name=...)`` would register the mapping with the process's resource
    tracker; a SIGKILLed attacher's tracker then *unlinks* the segment even though
    the publisher still owns it (and with a fork-shared tracker, unregistering on our
    own behalf would instead erase the publisher's registration).  Opening the
    segment directly via ``shm_open`` + ``mmap`` sidesteps the tracker entirely --
    only the publisher's registration ever exists.  Returns an object with ``buf``
    (writable-buffer protocol for NumPy) and ``close()``.
    """
    if _posixshmem is not None:
        fd = _posixshmem.shm_open(f"/{name}", os.O_RDONLY, mode=0)
        try:
            size = os.fstat(fd).st_size
            return mmap.mmap(fd, size, prot=mmap.PROT_READ)
        finally:
            os.close(fd)
    # Windows named memory has no resource tracker, so plain SharedMemory is safe.
    return _shared_memory.SharedMemory(name=name)  # pragma: no cover - non-POSIX


def _new_segment(name: str, size: int):
    return _shared_memory.SharedMemory(name=name, create=True, size=max(1, size))


# ---------------------------------------------------------------------------- publish
def publish_arrays(arrays: Mapping[str, np.ndarray], token: Optional[str] = None) -> BundleHandle:
    """Copy ``arrays`` into fresh shared-memory segments; returns the picklable handle.

    ``token`` names the bundle (e.g. a graph content digest); publishing the same
    token twice in one process returns the existing handle without touching the
    segments, so callers can publish idempotently per digest.  ``None`` generates a
    unique anonymous token.  Zero-size arrays are carried inside the handle's specs
    (a POSIX segment cannot be empty), everything else lands in one segment per array.
    """
    if not HAVE_SHARED_MEMORY:  # pragma: no cover - all supported platforms ship it
        raise ShmError("multiprocessing.shared_memory is unavailable on this platform")
    token = token or f"anon-{secrets.token_hex(8)}"
    existing = _OWNED.get(token)
    if existing is not None:
        return existing.handle

    specs: List[Tuple[str, SegmentSpec]] = []
    segments: List = []
    views: Dict[str, np.ndarray] = {}
    tag = secrets.token_hex(4)
    try:
        for index, (key, array) in enumerate(arrays.items()):
            array = np.ascontiguousarray(array)
            name = f"{SHM_PREFIX}{os.getpid()}_{tag}_{index}"
            segment = _new_segment(name, array.nbytes)
            segments.append(segment)
            view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
            if array.nbytes:
                view[...] = array
            view.setflags(write=False)
            views[key] = view
            specs.append((key, SegmentSpec(name=name, shape=tuple(array.shape), dtype=str(array.dtype))))
    except Exception:
        for segment in segments:
            try:
                segment.close()
                segment.unlink()
            except (OSError, BufferError, ValueError):  # pragma: no cover - best effort
                pass
        raise

    handle = BundleHandle(token=token, owner_pid=os.getpid(), segments=tuple(specs))
    _OWNED[token] = _OwnedBundle(handle, segments, views)
    logger.debug("published bundle %s: %d arrays, %d bytes", token, len(specs), handle.total_bytes)
    return handle


def attach_arrays(handle: BundleHandle) -> Dict[str, np.ndarray]:
    """Read-only zero-copy views of a published bundle, refcounted per token.

    In the publishing process this returns the owner's own views (free).  Elsewhere
    the named segments are attached once; further calls bump a refcount and reuse the
    mappings until :func:`release_arrays` drops the count to zero.
    """
    owned = _OWNED.get(handle.token)
    if owned is not None and handle.owner_pid == os.getpid():
        return owned.arrays
    attachment = _ATTACHED.get(handle.token)
    if attachment is not None:
        attachment.refcount += 1
        return attachment.arrays

    segments: List = []
    views: Dict[str, np.ndarray] = {}
    try:
        for key, spec in handle.segments:
            if spec.nbytes == 0:
                views[key] = np.zeros(spec.shape, dtype=spec.dtype)
                views[key].setflags(write=False)
                continue
            mapping = _attach_mapping(spec.name)
            segments.append(mapping)
            buffer = mapping if isinstance(mapping, mmap.mmap) else mapping.buf
            view = np.ndarray(spec.shape, dtype=spec.dtype, buffer=buffer)
            view.setflags(write=False)
            views[key] = view
    except FileNotFoundError as error:
        for mapping in segments:
            mapping.close()
        raise ShmError(
            f"bundle {handle.token} is gone (segment {error.filename or error}); "
            "the publisher released it while workers were still attached"
        ) from error
    _ATTACHED[handle.token] = _Attachment(segments, views)
    return views


def release_arrays(handle: BundleHandle) -> None:
    """Drop one reference to an attached bundle; unmaps at refcount zero.

    A no-op in the publishing process (the owner's views live until
    :func:`unpublish`) and for tokens this process never attached.
    """
    if handle.token in _OWNED and handle.owner_pid == os.getpid():
        return
    attachment = _ATTACHED.get(handle.token)
    if attachment is None:
        return
    attachment.refcount -= 1
    if attachment.refcount <= 0:
        attachment.close()
        del _ATTACHED[handle.token]


def unpublish(token: str) -> None:
    """Owner-side teardown: close and unlink every segment of ``token``.

    Safe to call for unknown tokens (idempotent), so cleanup paths never have to
    track whether a publish actually happened.
    """
    owned = _OWNED.pop(token, None)
    if owned is not None:
        owned.destroy()
    _GRAPH_BY_TOKEN.pop(token, None)
    _HANDLE_BY_TOKEN.pop(token, None)


def unpublish_all() -> None:
    """Unlink every bundle this process published (the ``atexit`` safety net)."""
    for token in list(_OWNED):
        unpublish(token)


atexit.register(unpublish_all)


def owned_tokens() -> List[str]:
    """Tokens currently published by this process (diagnostics and tests)."""
    return sorted(_OWNED)


def leaked_segments() -> List[str]:
    """Names of ``repro_shm_*`` segments still present in ``/dev/shm``.

    Linux-only introspection (empty elsewhere): the test suite's session fixture
    calls this after the full run to assert nothing leaked, and the SIGKILL tests
    use it to prove a hard-killed worker leaves no residue behind.
    """
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):  # pragma: no cover - non-Linux
        return []
    return sorted(name for name in os.listdir(shm_dir) if name.startswith(SHM_PREFIX))


# ---------------------------------------------------------------------------- graphs
def graph_digest(graph) -> str:
    """Stable content digest of a :class:`~repro.kg.graph.KnowledgeGraph`.

    Hashes the three split arrays plus the name and id-domain sizes, so two graphs
    with equal content share a digest across processes and runs (unlike the salted
    ``hash()`` of :func:`~repro.runtime.evaluation.graph_fingerprint`, which is
    process-local by design).  Memoised on the graph instance -- splits are immutable.
    """
    cached = getattr(graph, "_content_digest", None)
    if cached is not None:
        return cached
    hasher = hashlib.sha256()
    hasher.update(f"{graph.name}|{graph.num_entities}|{graph.num_relations}".encode())
    for split in (graph.train, graph.valid, graph.test):
        array = np.ascontiguousarray(split.array)
        hasher.update(str(array.shape).encode())
        hasher.update(array.tobytes())
    digest = hasher.hexdigest()[:16]
    try:
        object.__setattr__(graph, "_content_digest", digest)
    except (AttributeError, TypeError):  # pragma: no cover - exotic graph stand-ins
        pass
    return digest


#: Publisher-side registry: digest token -> the original graph object, so
#: :meth:`SharedGraphPayload.resolve` in the publisher returns the exact instance
#: (sharing its memoised filter index and evaluator) instead of a reconstruction.
_GRAPH_BY_TOKEN: Dict[str, object] = {}

#: Attacher-side memo: digest token -> reconstructed graph, so a warm worker builds
#: the zero-copy view graph once per digest no matter how many tasks it executes.
_RESOLVED_GRAPHS: Dict[str, object] = {}

#: Every live handle this process knows per graph digest -- its own publications and
#: the payloads it resolved.  :func:`publish_graph` consults it so a process that
#: *attached* a graph (a sweep worker) never re-publishes a duplicate copy of content
#: that already sits in shared memory.
_HANDLE_BY_TOKEN: Dict[str, BundleHandle] = {}


class SharedGraphPayload:
    """A :class:`~repro.kg.graph.KnowledgeGraph` published once, attachable anywhere.

    Pickles down to a :class:`BundleHandle` plus scalars.  :meth:`resolve` returns
    the original graph in the publishing process and a zero-copy reconstruction
    (splits *and* the pre-built CSR filter index, no lexsort on the worker side)
    everywhere else -- byte-identical arrays either way, which is what keeps
    pool results bit-identical to serial ones.
    """

    def __init__(self, handle: BundleHandle, name: str, num_entities: int, num_relations: int) -> None:
        self.handle = handle
        self.name = name
        self.num_entities = int(num_entities)
        self.num_relations = int(num_relations)

    @property
    def token(self) -> str:
        """The underlying bundle token (the graph's content digest)."""
        return self.handle.token

    def resolve(self):
        """The graph behind this payload, memoised per process."""
        original = _GRAPH_BY_TOKEN.get(self.token)
        if original is not None:
            return original
        cached = _RESOLVED_GRAPHS.get(self.token)
        if cached is not None:
            return cached
        _HANDLE_BY_TOKEN.setdefault(self.token, self.handle)

        from repro.kg.filter_index import FilterIndex
        from repro.kg.graph import KnowledgeGraph
        from repro.kg.triples import TripleSet

        arrays = attach_arrays(self.handle)
        graph = KnowledgeGraph(
            name=self.name,
            num_entities=self.num_entities,
            num_relations=self.num_relations,
            train=TripleSet(arrays["train"]),
            valid=TripleSet(arrays["valid"]),
            test=TripleSet(arrays["test"]),
        )
        graph._filter_index = FilterIndex.from_csr_arrays(
            arrays, num_entities=self.num_entities, num_relations=self.num_relations
        )
        _RESOLVED_GRAPHS[self.token] = graph
        return graph


def publish_graph(graph) -> SharedGraphPayload:
    """Publish a graph's splits and CSR filter-index buffers once per content digest.

    Idempotent per digest: repeated calls (one per ``map``, one per sweep shard on the
    same dataset) return the existing payload.  The filter index is built (memoised on
    the graph) before publication so workers inherit the finished CSR buffers instead
    of each paying the lexsort.
    """
    token = graph_digest(graph)
    known = _HANDLE_BY_TOKEN.get(token)
    if known is not None:
        # Already in shared memory -- either published by this process or attached
        # from another publisher (a sweep worker resolving the orchestrator's copy).
        return SharedGraphPayload(known, graph.name, graph.num_entities, graph.num_relations)
    arrays: Dict[str, np.ndarray] = {
        "train": graph.train.array,
        "valid": graph.valid.array,
        "test": graph.test.array,
    }
    arrays.update(graph.filter_index().csr_arrays())
    handle = publish_arrays(arrays, token=token)
    _GRAPH_BY_TOKEN[token] = graph
    _HANDLE_BY_TOKEN[token] = handle
    return SharedGraphPayload(handle, graph.name, graph.num_entities, graph.num_relations)
