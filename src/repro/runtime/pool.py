"""The persistent warm-worker pool behind parallel candidate evaluation.

The original :class:`~repro.runtime.evaluation.EvaluationPool` forked a fresh
``multiprocessing.Pool`` on **every** ``map`` call and shipped the shared payload to
every worker through the pool initializer -- for evaluations in the tens of
milliseconds, the committed baselines showed that overhead eating the entire parallel
win (``parallel_speedup`` 0.84/0.66).  :class:`WarmPool` replaces that with processes
that outlive any single map call:

- **spawn once, reuse forever** -- workers start lazily on the first parallel map and
  stay warm; later maps pay only queue traffic.  :func:`get_warm_pool` hands out one
  process-wide pool per ``(start_method, n_workers)``, so every search in a process
  (and every shard of an in-process sweep) shares the same warm workers;
- **install once per payload** -- the shared payload travels to each worker at most
  once per ``payload_key`` (an ``install`` message), and with the shm-backed payloads
  of :mod:`repro.runtime.evaluation` that message is a few hundred bytes of segment
  names.  Workers keep an LRU of installed payloads (:data:`INSTALL_LRU`), which
  bounds their RSS no matter how many searches run;
- **batched dispatch** -- tasks go out as contiguous chunks instead of per-item
  pickles, cutting queue round-trips by ``CHUNKS_PER_WORKER``×;
- **crash recovery** -- the parent polls worker liveness while waiting for results;
  a dead worker (OOM-killed, SIGKILLed by a fault-injection test) is respawned, its
  installed payloads are re-sent and its unfinished chunks re-dispatched.  Results
  are deduplicated by chunk id, so a worker that died *after* finishing a chunk can
  never produce a duplicate.  Because worker functions are pure, a re-executed chunk
  returns bit-identical values and determinism survives any number of crashes.

Results are reassembled by task index, so the outcome is independent of chunking,
worker count and scheduling -- the bit-identity contract of
``tests/test_runtime.py`` holds through this pool exactly as it does for the serial
path.
"""

from __future__ import annotations

import atexit
import itertools
import multiprocessing
import queue as queue_module
import traceback
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.utils.logging import get_logger

logger = get_logger("runtime.pool")

#: Upper bound on shared payloads a worker keeps installed; the oldest is dropped
#: first.  Four covers a sweep alternating between one-shot and stand-alone payloads
#: on two datasets without ever re-installing.
INSTALL_LRU = 4

#: Target number of chunks per worker per map call: small enough to amortise queue
#: traffic, large enough that an uneven task mix still load-balances.
CHUNKS_PER_WORKER = 4

#: Seconds between liveness polls while waiting for results.
POLL_INTERVAL = 0.2


class WarmPoolError(RuntimeError):
    """A worker raised, or the pool lost workers beyond recovery."""


def _worker_main(worker_id: int, task_queue, result_queue) -> None:
    """Worker loop: install payloads, execute chunks, report results.

    Payloads arrive once per key and are memoised (LRU-bounded); chunk messages then
    carry only the key plus the per-task payloads.  Exceptions are caught and
    reported per chunk, so one bad candidate cannot take the worker down.
    """
    installed: "OrderedDict[str, Tuple[Callable, object]]" = OrderedDict()
    while True:
        message = task_queue.get()
        kind = message[0]
        if kind == "stop":
            return
        if kind == "install":
            _, key, fn, shared = message
            installed[key] = (fn, shared)
            installed.move_to_end(key)
            while len(installed) > INSTALL_LRU:
                installed.popitem(last=False)
            continue
        if kind == "forget":
            installed.pop(message[1], None)
            continue
        # ("chunk", chunk_id, payload_key, [(task_index, payload), ...])
        _, chunk_id, key, items = message
        try:
            entry = installed.get(key)
            if entry is None:
                raise WarmPoolError(f"worker {worker_id} has no installed payload {key!r}")
            installed.move_to_end(key)
            fn, shared = entry
            values = [(task_index, fn(shared, payload)) for task_index, payload in items]
        except BaseException as error:  # noqa: BLE001 - reported to the parent verbatim
            if isinstance(error, (KeyboardInterrupt, SystemExit)):
                raise
            result_queue.put(("error", worker_id, chunk_id, f"{error!r}\n{traceback.format_exc()}"))
            continue
        result_queue.put(("done", worker_id, chunk_id, values))


class _WorkerSlot:
    """Parent-side record of one worker: process, private queue, installed keys."""

    def __init__(self, process, task_queue) -> None:
        self.process = process
        self.task_queue = task_queue
        self.keys: Set[str] = set()


class WarmPool:
    """Persistent workers with install-once payloads and batched, crash-safe dispatch.

    Workers spawn lazily on the first :meth:`run` and persist until :meth:`close`
    (registered via ``atexit`` for the process-wide pools of :func:`get_warm_pool`).
    Each worker owns a private task queue -- the parent always knows which chunks a
    worker holds, so a crash loses nothing: the slot is respawned, its payloads
    re-installed and its pending chunks re-dispatched.
    """

    def __init__(self, n_workers: int, start_method: Optional[str] = None) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be positive, got {n_workers}")
        self.n_workers = n_workers
        self._context = (
            multiprocessing.get_context(start_method) if start_method else multiprocessing.get_context()
        )
        self._slots: List[_WorkerSlot] = []
        self._result_queue = None
        self._installed: "OrderedDict[str, Tuple[Callable, object]]" = OrderedDict()
        self._chunk_ids = itertools.count()
        self._closed = False
        self.respawns = 0  # total workers respawned after a crash (test observability)

    # ------------------------------------------------------------------ lifecycle
    @property
    def started(self) -> bool:
        """Whether worker processes exist yet (they spawn on first :meth:`run`)."""
        return bool(self._slots)

    def _ensure_started(self) -> None:
        if self._closed:
            raise WarmPoolError("pool is closed")
        if self._slots:
            return
        self._result_queue = self._context.Queue()
        for worker_id in range(self.n_workers):
            self._slots.append(self._spawn(worker_id))

    def _spawn(self, worker_id: int) -> _WorkerSlot:
        task_queue = self._context.Queue()
        process = self._context.Process(
            target=_worker_main,
            args=(worker_id, task_queue, self._result_queue),
            name=f"repro-warm-{worker_id}",
            daemon=True,
        )
        process.start()
        return _WorkerSlot(process, task_queue)

    def close(self) -> None:
        """Stop every worker (politely, then by force) and drop all queues."""
        self._closed = True
        for slot in self._slots:
            try:
                slot.task_queue.put(("stop",))
            except (OSError, ValueError):  # pragma: no cover - queue already torn down
                pass
        for slot in self._slots:
            slot.process.join(timeout=2.0)
            if slot.process.is_alive():  # pragma: no cover - stuck worker
                slot.process.terminate()
                slot.process.join(timeout=1.0)
            slot.task_queue.close()
        if self._result_queue is not None:
            self._result_queue.close()
            self._result_queue = None
        self._slots = []
        self._installed.clear()

    # ------------------------------------------------------------------ payloads
    def install(self, key: str, fn: Callable, shared: object) -> None:
        """Register a shared payload; it reaches each worker at most once per key."""
        self._installed[key] = (fn, shared)
        self._installed.move_to_end(key)
        while len(self._installed) > INSTALL_LRU:
            evicted, _ = self._installed.popitem(last=False)
            self.forget(evicted)
        for slot in self._slots:
            if key not in slot.keys:
                slot.task_queue.put(("install", key, fn, shared))
                slot.keys.add(key)

    def forget(self, key: str) -> None:
        """Drop a payload from the parent registry and every worker's memo."""
        self._installed.pop(key, None)
        for slot in self._slots:
            if key in slot.keys:
                try:
                    slot.task_queue.put(("forget", key))
                except (OSError, ValueError):  # pragma: no cover - queue torn down
                    pass
                slot.keys.discard(key)

    def installed_keys(self) -> List[str]:
        """Currently registered payload keys, oldest first (test observability)."""
        return list(self._installed)

    # ------------------------------------------------------------------ dispatch
    def run(self, payload_key: str, fn: Callable, shared: object, payloads: Sequence[object]) -> List:
        """Evaluate ``fn(shared, payload)`` for every payload; results in input order.

        The payload is installed under ``payload_key`` (sent only to workers that do
        not have it yet), tasks ship as contiguous chunks, and lost chunks are
        re-dispatched to respawned workers until every task has reported.
        """
        if not payloads:
            return []
        self._ensure_started()
        self.install(payload_key, fn, shared)

        chunk_size = max(1, -(-len(payloads) // (self.n_workers * CHUNKS_PER_WORKER)))
        # chunk_id -> (slot index, payload key, chunk items); the payload key rides
        # along so a re-dispatch after a crash can rebuild the exact chunk message.
        pending: Dict[int, Tuple[int, str, List[Tuple[int, object]]]] = {}
        for offset, start in enumerate(range(0, len(payloads), chunk_size)):
            items = [(index, payloads[index]) for index in range(start, min(start + chunk_size, len(payloads)))]
            chunk_id = next(self._chunk_ids)
            slot_index = offset % len(self._slots)
            pending[chunk_id] = (slot_index, payload_key, items)
            self._slots[slot_index].task_queue.put(("chunk", chunk_id, payload_key, items))

        results: List = [None] * len(payloads)
        while pending:
            try:
                message = self._result_queue.get(timeout=POLL_INTERVAL)
            except queue_module.Empty:
                self._recover_dead_workers(pending)
                continue
            kind, _, chunk_id, body = message
            if chunk_id not in pending:
                continue  # stale: an aborted run, or a chunk already re-dispatched and served
            if kind == "error":
                raise WarmPoolError(f"worker evaluation failed: {body}")
            del pending[chunk_id]
            for task_index, value in body:
                results[task_index] = value
        return results

    def _recover_dead_workers(self, pending: Dict[int, Tuple[int, str, List]]) -> None:
        """Respawn any dead worker and re-dispatch the chunks it was holding."""
        for slot_index, slot in enumerate(self._slots):
            if slot.process.is_alive():
                continue
            self.respawns += 1
            logger.warning(
                "warm worker %d died (exitcode %s); respawning and re-dispatching",
                slot_index,
                slot.process.exitcode,
            )
            # A fresh queue: messages buffered for the dead worker are unreachable
            # anyway, and the replacement must see installs before any chunk.
            slot.task_queue.close()
            replacement = self._spawn(slot_index)
            self._slots[slot_index] = replacement
            for key, (fn, shared) in self._installed.items():
                replacement.task_queue.put(("install", key, fn, shared))
                replacement.keys.add(key)
            for chunk_id, (owner, chunk_key, items) in pending.items():
                if owner == slot_index:
                    # Same chunk id: if the dead worker did manage to report it, the
                    # first result wins and the duplicate is dropped as stale.
                    replacement.task_queue.put(("chunk", chunk_id, chunk_key, items))

    def __repr__(self) -> str:
        state = "closed" if self._closed else ("warm" if self._slots else "cold")
        return f"WarmPool(n_workers={self.n_workers}, {state}, respawns={self.respawns})"


# ------------------------------------------------------------------ process registry
_POOLS: Dict[Tuple[Optional[str], int], WarmPool] = {}


def get_warm_pool(n_workers: int, start_method: Optional[str] = None) -> WarmPool:
    """The process-wide :class:`WarmPool` for ``(start_method, n_workers)``.

    Sharing pools across :class:`~repro.runtime.evaluation.EvaluationPool` instances
    is what makes workers *warm*: the second search of a sweep finds the workers (and
    their attached shared-memory segments and model memos) already in place.
    """
    key = (start_method, n_workers)
    pool = _POOLS.get(key)
    if pool is None or pool._closed:
        pool = WarmPool(n_workers, start_method=start_method)
        _POOLS[key] = pool
    return pool


def shutdown_warm_pools() -> None:
    """Close every process-wide pool (``atexit``; also used by test teardown)."""
    for pool in list(_POOLS.values()):
        pool.close()
    _POOLS.clear()


atexit.register(shutdown_warm_pools)
