"""Timing workloads of the runtime layer.

:func:`time_derive_phase` measures the cost of the ERAS derive phase -- the
``derive_samples=K`` full-validation scorings at the end of Algorithm 2 -- under three
execution strategies:

1. ``serial``   -- the seed's loop: one in-process
   :meth:`~repro.search.supernet.SharedEmbeddingSupernet.one_shot_validation_mrr`
   call per candidate;
2. ``parallel`` -- the same candidates fanned out over an
   :class:`~repro.runtime.evaluation.EvaluationPool` with ``workers`` processes;
3. ``cached``   -- a second pooled pass, now served entirely from the
   :class:`~repro.runtime.evaluation.EvalCache` (the regime of the anchor pass and
   of converged controllers that resample the same candidates).

Both ``benchmarks/test_figure02_search_efficiency.py`` and
``python -m repro bench --workload derive`` report these numbers, so the benchmark
and the CLI can never drift apart.
"""

from __future__ import annotations

import time
from typing import Dict

import numpy as np

from repro.kg.graph import KnowledgeGraph
from repro.search.controller import ArchitectureController, ControllerConfig
from repro.search.space import RelationAwareSearchSpace
from repro.search.supernet import SharedEmbeddingSupernet, SupernetConfig
from repro.utils.rng import new_rng

from repro.runtime.evaluation import (
    EvalCache,
    EvaluationPool,
    candidate_payload,
    one_shot_shared_payload,
    release_one_shot_model,
    score_candidate_one_shot,
)


def time_derive_phase(
    graph: KnowledgeGraph,
    num_groups: int = 3,
    num_blocks: int = 4,
    num_candidates: int = 48,
    workers: int = 2,
    dim: int = 48,
    seed: int = 0,
) -> Dict[str, object]:
    """Time serial vs pooled vs cached scoring of one derive phase on ``graph``.

    Returns a row with the three wall-clock measurements, the resulting speedups and a
    ``scores_match`` flag asserting that all strategies produced bit-identical MRRs
    (the determinism guarantee behind ``--workers N``).
    """
    space = RelationAwareSearchSpace(num_blocks=num_blocks, num_groups=num_groups)
    supernet = SharedEmbeddingSupernet(graph, num_groups=num_groups, config=SupernetConfig(dim=dim, seed=seed))
    controller = ArchitectureController(space, config=ControllerConfig(seed=seed))
    rng = new_rng(seed)

    candidates = []
    seen = set()
    for sample in controller.sample(num_candidates, rng=rng):
        signature = sample.candidate.signature()
        if signature not in seen:
            seen.add(signature)
            candidates.append(sample.candidate)

    started = time.perf_counter()
    serial_scores = [supernet.one_shot_validation_mrr(candidate) for candidate in candidates]
    serial_seconds = time.perf_counter() - started

    pool = EvaluationPool(n_workers=workers, cache=EvalCache())
    shared = one_shot_shared_payload(supernet)
    payloads = [candidate_payload(candidate) for candidate in candidates]
    keys = [("one-shot", candidate.signature()) for candidate in candidates]

    started = time.perf_counter()
    parallel_scores = pool.map(score_candidate_one_shot, payloads, shared=shared, keys=keys)
    parallel_seconds = time.perf_counter() - started

    started = time.perf_counter()
    cached_scores = pool.map(score_candidate_one_shot, payloads, shared=shared, keys=keys)
    cached_seconds = time.perf_counter() - started
    release_one_shot_model()

    return {
        "dataset": graph.name,
        "candidates": len(candidates),
        "workers": workers,
        "serial_seconds": round(serial_seconds, 4),
        "parallel_seconds": round(parallel_seconds, 4),
        "cached_seconds": round(cached_seconds, 4),
        "parallel_speedup": round(serial_seconds / max(parallel_seconds, 1e-9), 2),
        "cached_speedup": round(serial_seconds / max(cached_seconds, 1e-9), 2),
        "cache_hit_rate": pool.cache.hit_rate,
        "scores_match": bool(
            np.array_equal(np.asarray(serial_scores), np.asarray(parallel_scores))
            and np.array_equal(np.asarray(serial_scores), np.asarray(cached_scores))
        ),
    }
