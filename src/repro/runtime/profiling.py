"""Timing workloads of the runtime layer.

:func:`time_derive_phase` measures the cost of the ERAS derive phase -- the
``derive_samples=K`` full-validation scorings at the end of Algorithm 2 -- under three
execution strategies:

1. ``serial``   -- the seed's loop: one in-process
   :meth:`~repro.search.supernet.SharedEmbeddingSupernet.one_shot_validation_mrr`
   call per candidate;
2. ``parallel`` -- the same candidates fanned out over an
   :class:`~repro.runtime.evaluation.EvaluationPool` with ``workers`` processes,
   measured twice: a *cold* pass that pays the warm pool's one-time costs (worker
   spawn, shared-memory attach, payload install) and a *warm* pass in the steady
   state every later map call enjoys -- ``parallel_seconds`` / ``parallel_speedup``
   report the warm regime, ``cold_parallel_seconds`` and ``warm_vs_cold_speedup``
   quantify what warmth is worth;
3. ``cached``   -- a third pooled pass, now served entirely from the
   :class:`~repro.runtime.evaluation.EvalCache` (the regime of the anchor pass and
   of converged controllers that resample the same candidates).

The row also prices the payload transport itself: ``payload_publish_seconds`` (copy
the supernet state + validation split into shared-memory segments, once per derive)
vs ``payload_pickle_seconds`` (serialise the equivalent in-band payload dict, what
the pre-shm pool paid **per map call per worker**), plus the byte sizes of both
representations (``handle_bytes`` is what actually crosses the queue now).
:func:`time_shm_transport` isolates the same comparison for whole graphs -- publish
+ worker-side attach vs a pickle round-trip -- and feeds ``python -m repro bench
--workload shm`` / ``benchmarks/test_shared_memory_pool.py`` (``BENCH_shm.json``).

:func:`time_search_steps` times one budgeted step
(:class:`~repro.search.base.SearchBudget` ``max_steps=1``) of **every registered
searcher** through the shared stepwise protocol -- the fairness primitive behind the
paper's efficiency comparisons: each algorithm gets the identical driver, budget and
evaluation pool, and the row records what one step of it costs.  ``python -m repro
bench --workload search`` and ``benchmarks/test_search_step_latency.py`` report these
rows and persist them as ``BENCH_search.json``.

:func:`time_sweep` measures the sharded sweep orchestrator
(:mod:`repro.runtime.orchestrator`): the same (searcher x seed) grid is run once
serially in-process and once on a bounded worker pool, and the row reports both wall
clocks, the summed per-shard wall clock (the "serial sum" a naive loop would pay),
the orchestrator's own dispatch/aggregation overhead and a ``reports_match`` flag
asserting the two runs' timing-stripped reports are bit-identical.  ``python -m repro
bench --workload sweep`` and ``benchmarks/test_sweep_orchestrator.py`` report this
row and persist it as ``BENCH_sweep.json``.

:func:`time_filtered_ranking` measures the repository's hottest path -- filtered
ranking evaluation as a search exercises it (one fresh evaluator per candidate, the
same validation sample re-ranked every time) -- under the retained naive reference
(:mod:`repro.eval.reference`: per-candidate dict-of-sets index rebuild + per-triple
dense masks + Tensor scoring) versus the vectorized pipeline (memoised CSR
:class:`~repro.kg.filter_index.FilterIndex`, flat fancy-indexed filters, compiled
no-grad kernels).  The returned row carries a ``ranks_match`` bit-identity flag that
both the benchmark gate and the CLI treat as a hard failure when false.

:func:`time_streaming_updates` drives the live-graph path end to end: a stream of
random :class:`~repro.stream.GraphDelta` batches is applied through a
:class:`~repro.stream.MutableGraphView` (split splice + incremental CSR merge) and a
:meth:`~repro.serve.engine.LinkPredictionEngine.apply_delta` cache-preserving engine
swap, with link-prediction queries interleaved between updates.  The row reports the
incremental merge wall clock against the full :class:`~repro.kg.filter_index.FilterIndex`
rebuild a non-incremental server would pay per delta (``merge_speedup``), end-to-end
update-apply and query latency percentiles, a staleness counter (results stamped with
an older ``graph_version`` than the view's) and a ``merge_matches_rebuild`` flag
asserting every merged index is bit-identical to its rebuild.  ``python -m repro bench
--workload streaming`` and ``benchmarks/test_streaming.py`` report this row and
persist it as ``BENCH_streaming.json``.

:func:`time_scale_curve` turns the ranking workload into an out-of-core **scale
curve**: the same seeded model/sample workload is evaluated on one synthetic
benchmark at a ladder of ``--scales`` tiers, each tier scored twice -- unchunked
(one ``(batch, E)`` score matrix) and entity-chunked
(:class:`~repro.eval.ranking.RankingEvaluator` with ``entity_chunk_size``, bounding
the peak score-matrix footprint).  Per tier the row records wall clocks and
throughputs for both regimes, ``tracemalloc`` peak evaluation memory for both (the
chunked peak stays roughly flat as the entity count grows -- the memory-bounded
property), the process-wide ``peak_rss_mb`` high-water mark
(``resource.getrusage``; tiers run smallest-first because ``ru_maxrss`` is
monotonic per process), and ``scores_match`` / ``ranks_match`` flags asserting the
chunked path is bit-identical to the unchunked reference.  ``python -m repro bench
--workload scale`` reports these rows and persists them as ``BENCH_scale.json``.

``benchmarks/test_figure02_search_efficiency.py`` /
``benchmarks/test_ranking_throughput.py`` and ``python -m repro bench --workload
derive|ranking`` report these same rows, so the benchmarks and the CLI can never
drift apart.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.bench.reporting import summarize_latencies
from repro.eval.ranking import RankingEvaluator
from repro.eval.reference import NaiveRankingEvaluator
from repro.kg.filter_index import FilterIndex
from repro.kg.graph import KnowledgeGraph
from repro.kg.triples import TripleSet
from repro.models.kge import KGEModel
from repro.scoring.structure import BlockStructure
from repro.search.controller import ArchitectureController, ControllerConfig
from repro.search.space import RelationAwareSearchSpace
from repro.search.supernet import SharedEmbeddingSupernet, SupernetConfig
from repro.utils.rng import new_rng

from repro.runtime import shm
from repro.runtime.evaluation import (
    EvalCache,
    EvaluationPool,
    candidate_payload,
    one_shot_shared_payload,
    release_one_shot_model,
    score_candidate_one_shot,
)


def time_derive_phase(
    graph: KnowledgeGraph,
    num_groups: int = 3,
    num_blocks: int = 4,
    num_candidates: int = 48,
    workers: int = 2,
    dim: int = 48,
    seed: int = 0,
) -> Dict[str, object]:
    """Time serial vs pooled (cold and warm) vs cached scoring of one derive phase.

    Returns a row with the wall-clock measurements, the resulting speedups, the
    payload-transport costs (shm publish vs the pre-shm pickle round-trip) and a
    ``scores_match`` flag asserting that all strategies produced bit-identical MRRs
    (the determinism guarantee behind ``--workers N``).
    """
    import pickle

    space = RelationAwareSearchSpace(num_blocks=num_blocks, num_groups=num_groups)
    supernet = SharedEmbeddingSupernet(graph, num_groups=num_groups, config=SupernetConfig(dim=dim, seed=seed))
    controller = ArchitectureController(space, config=ControllerConfig(seed=seed))
    rng = new_rng(seed)

    candidates = []
    seen = set()
    for sample in controller.sample(num_candidates, rng=rng):
        signature = sample.candidate.signature()
        if signature not in seen:
            seen.add(signature)
            candidates.append(sample.candidate)

    started = time.perf_counter()
    serial_scores = [supernet.one_shot_validation_mrr(candidate) for candidate in candidates]
    serial_seconds = time.perf_counter() - started

    # Price the payload transport.  The pickle side is what the pre-shm pool paid to
    # move the supernet to workers on *every* map call (dumps in the parent + loads in
    # each worker); the publish side is the one-time shared-memory copy after which
    # only a few-hundred-byte handle crosses the queue.
    state = supernet.model.state_dict()
    legacy_payload = {
        "num_entities": supernet.graph.num_entities,
        "num_relations": supernet.graph.num_relations,
        "dim": supernet.config.dim,
        "assignment": supernet.assignment.copy(),
        "state": state,
        "valid": np.asarray(supernet.graph.valid.array),
    }
    started = time.perf_counter()
    pickled = pickle.dumps(legacy_payload, protocol=pickle.HIGHEST_PROTOCOL)
    pickle.loads(pickled)
    payload_pickle_seconds = time.perf_counter() - started

    started = time.perf_counter()
    shared = one_shot_shared_payload(supernet)
    payload_publish_seconds = time.perf_counter() - started
    handle_bytes = len(pickle.dumps(shared, protocol=pickle.HIGHEST_PROTOCOL))

    payloads = [candidate_payload(candidate) for candidate in candidates]
    keys = [("one-shot", candidate.signature()) for candidate in candidates]

    # Cold pass: the first map on this payload pays the warm pool's one-time costs
    # (worker spawn if the process-wide pool is not yet running, shm attach, payload
    # install).  Warm pass: a fresh EvalCache forces re-evaluation, but the workers,
    # attachments and installed payload are reused -- the steady-state regime every
    # later map call (and every later search in this process) enjoys.
    cold_pool = EvaluationPool(n_workers=workers, cache=EvalCache())
    started = time.perf_counter()
    cold_scores = cold_pool.map(score_candidate_one_shot, payloads, shared=shared, keys=keys)
    cold_parallel_seconds = time.perf_counter() - started

    pool = EvaluationPool(n_workers=workers, cache=EvalCache())
    started = time.perf_counter()
    parallel_scores = pool.map(score_candidate_one_shot, payloads, shared=shared, keys=keys)
    parallel_seconds = time.perf_counter() - started

    started = time.perf_counter()
    cached_scores = pool.map(score_candidate_one_shot, payloads, shared=shared, keys=keys)
    cached_seconds = time.perf_counter() - started
    release_one_shot_model()

    return {
        "dataset": graph.name,
        "candidates": len(candidates),
        "workers": workers,
        "serial_seconds": round(serial_seconds, 4),
        "parallel_seconds": round(parallel_seconds, 4),
        "cold_parallel_seconds": round(cold_parallel_seconds, 4),
        "cached_seconds": round(cached_seconds, 4),
        "parallel_speedup": round(serial_seconds / max(parallel_seconds, 1e-9), 2),
        "cached_speedup": round(serial_seconds / max(cached_seconds, 1e-9), 2),
        "warm_vs_cold_speedup": round(cold_parallel_seconds / max(parallel_seconds, 1e-9), 2),
        "payload_publish_seconds": round(payload_publish_seconds, 4),
        "payload_pickle_seconds": round(payload_pickle_seconds, 4),
        "payload_pickle_bytes": len(pickled),
        "handle_bytes": handle_bytes,
        "cache_hit_rate": pool.cache.hit_rate,
        "scores_match": bool(
            np.array_equal(np.asarray(serial_scores), np.asarray(parallel_scores))
            and np.array_equal(np.asarray(serial_scores), np.asarray(cold_scores))
            and np.array_equal(np.asarray(serial_scores), np.asarray(cached_scores))
        ),
    }


def _attach_probe(shared: Dict[str, object], payload: Dict[str, object]) -> Dict[str, float]:
    """Worker-side probe behind :func:`time_shm_transport`.

    Times :func:`repro.runtime.shm.attach_arrays` for the shared bundle (the first
    call in a worker is a real ``shm_open`` + ``mmap``; later calls hit the refcounted
    attachment memo) and checksums a slice of every view so the parent can assert
    round-trip fidelity against its own copies.
    """
    started = time.perf_counter()
    views = shm.attach_arrays(shared["handle"])
    elapsed = time.perf_counter() - started
    checksum = float(sum(float(np.asarray(view[:16], dtype=np.float64).sum()) for view in views.values()))
    return {"attach_seconds": elapsed, "checksum": checksum}


def time_shm_transport(
    graph: KnowledgeGraph,
    workers: int = 2,
    probes_per_worker: int = 8,
    seed: int = 0,
) -> Dict[str, object]:
    """Shared-memory publish/attach vs pickle round-trip for a whole graph bundle.

    Publishes the arrays a sweep worker actually needs -- ``graph``'s three splits
    plus its CSR filter-index buffers -- into an anonymous shm bundle and compares
    that one-time cost against the pickle round-trip the pre-shm pool paid per
    dispatch.  A :class:`~repro.runtime.pool.WarmPool` then runs attach probes in
    real worker processes: the slowest probe is the cold attach (``shm_open`` +
    ``mmap`` on first touch), the fastest is the warm refcounted-memo hit.  The row
    carries both latencies, the byte sizes, a ``views_match`` fidelity flag and a
    ``segments_released`` flag asserting the bundle is unlinked afterwards.
    """
    from repro.runtime.pool import get_warm_pool

    arrays: Dict[str, np.ndarray] = {
        "train": np.asarray(graph.train.array),
        "valid": np.asarray(graph.valid.array),
        "test": np.asarray(graph.test.array),
    }
    arrays.update(graph.filter_index().csr_arrays())

    import pickle

    started = time.perf_counter()
    blob = pickle.dumps(arrays, protocol=pickle.HIGHEST_PROTOCOL)
    pickle.loads(blob)
    pickle_seconds = time.perf_counter() - started

    started = time.perf_counter()
    handle = shm.publish_arrays(arrays)
    publish_seconds = time.perf_counter() - started

    expected = float(
        sum(float(np.asarray(array[:16], dtype=np.float64).sum()) for array in arrays.values())
    )
    pool = get_warm_pool(workers)
    shared = {"handle": handle, "payload_key": handle.token}
    payloads: List[Dict[str, object]] = [{} for _ in range(max(1, workers) * probes_per_worker)]
    probes = pool.run(f"shm-transport-{handle.token}", _attach_probe, shared, payloads)

    attach_times = sorted(float(probe["attach_seconds"]) for probe in probes)
    views_match = all(abs(float(probe["checksum"]) - expected) < 1e-6 for probe in probes)
    pool.forget(f"shm-transport-{handle.token}")

    shm.unpublish(handle.token)
    try:
        shm.attach_arrays(handle)
        segments_released = False
    except shm.ShmError:
        segments_released = True

    cold_attach = attach_times[-1]
    warm_attach = attach_times[0]
    return {
        "dataset": graph.name,
        "workers": workers,
        "probes": len(probes),
        "bundle_arrays": len(arrays),
        "bundle_bytes": int(handle.total_bytes),
        "pickle_bytes": len(blob),
        "publish_seconds": round(publish_seconds, 4),
        "pickle_seconds": round(pickle_seconds, 4),
        "publish_vs_pickle_speedup": round(pickle_seconds / max(publish_seconds, 1e-9), 2),
        "cold_attach_seconds": round(cold_attach, 6),
        "warm_attach_seconds": round(warm_attach, 6),
        "warm_vs_cold_attach_speedup": round(cold_attach / max(warm_attach, 1e-9), 2),
        "views_match": bool(views_match),
        "segments_released": bool(segments_released),
    }


def time_search_steps(
    graph: KnowledgeGraph,
    workers: int = 1,
    dim: int = 32,
    seed: int = 0,
    names: Optional[Sequence[str]] = None,
) -> List[Dict[str, object]]:
    """Time one budgeted step of each registered searcher on ``graph``.

    For every name in ``names`` (default: :func:`~repro.search.registry.available_searchers`),
    the searcher is built from the registry at the small uniform
    :func:`~repro.bench.workloads.search_step_options` budget, its state is
    initialised, and exactly one protocol step runs under
    ``SearchBudget(max_steps=1)`` -- the same driver every algorithm shares.  Rows
    report the init and step wall clocks plus the candidate evaluations the step
    performed, which is the per-step cost asymmetry of Table IX in benchmarkable form.
    """
    from repro.bench.workloads import search_step_options
    from repro.search.base import SearchBudget
    from repro.search.registry import available_searchers, create_searcher

    budget = SearchBudget(max_steps=1)
    options = search_step_options(dim=dim, seed=seed)
    rows: List[Dict[str, object]] = []
    for name in names if names is not None else available_searchers():
        pool = EvaluationPool(n_workers=workers, cache=EvalCache())
        searcher = create_searcher(name, options, pool=pool)
        started = time.perf_counter()
        state = searcher.init_state(graph)
        init_seconds = time.perf_counter() - started
        # The driver loop with the budget genuinely governing execution (finalize is
        # skipped so the row times steps only, not result packaging).
        stopped = None
        step_seconds = 0.0
        while not searcher.is_complete(state):
            stopped = budget.exhausted(state)
            if stopped is not None:
                break
            started = time.perf_counter()
            searcher.run_step(state)
            step_seconds += time.perf_counter() - started
        rows.append(
            {
                "searcher": name,
                "dataset": graph.name,
                "workers": workers,
                "budget": "max_steps=1",
                "steps_completed": int(state.steps_completed),
                "init_seconds": round(init_seconds, 4),
                "step_seconds": round(step_seconds, 4),
                "evaluations": int(state.evaluations),
                "seconds_per_evaluation": round(step_seconds / max(state.evaluations, 1), 4),
                "stopped": stopped if stopped is not None else "complete",
            }
        )
    return rows


def time_sweep(
    dataset: str = "wn18rr_like",
    searchers: Sequence[str] = ("eras", "random"),
    seeds: Sequence[int] = (0, 1),
    scale: float = 0.5,
    workers: int = 2,
    dim: int = 32,
    budget_steps: int = 1,
    proxy_epochs: int = 2,
    data_seed: int = 0,
) -> Dict[str, object]:
    """Serial vs pooled execution of one sweep grid through the orchestrator.

    The identical ``(searcher x seed)`` grid runs twice in throw-away sweep
    directories: once with ``max_workers=1`` (in-process, the serial reference) and
    once on a ``workers``-process pool with work-stealing dispatch.  Shards are
    search-only (``train_final=False``) under a small uniform step budget, so the
    row measures orchestration, not training.  ``reports_match`` asserts the two
    timing-stripped reports are bit-identical -- the sweep-level determinism
    guarantee behind crash recovery and ``--max-workers``.
    """
    import shutil
    import tempfile

    from repro.datasets import load_benchmark
    from repro.search.base import SearchBudget
    from repro.runtime.orchestrator import SweepConfig, SweepOrchestrator, strip_timing

    def build_config(max_workers: int) -> SweepConfig:
        return SweepConfig(
            searchers=tuple(searchers),
            seeds=tuple(int(seed) for seed in seeds),
            datasets=(dataset,),
            budgets=(SearchBudget(max_steps=budget_steps),),
            scale=scale,
            data_seed=data_seed,
            num_groups=2,
            search_epochs=budget_steps,
            num_candidates=4,
            derive_samples=8,
            dim=dim,
            proxy_epochs=proxy_epochs,
            train_final=False,
            max_workers=max_workers,
        )

    def shard_wall_sum(report) -> float:
        per_searcher = report.payload["timing"]["per_searcher"]
        return float(sum(entry["total_shard_wall_seconds"] for entry in per_searcher.values()))

    # Warm the dataset memo before either timer: otherwise the serial run (which goes
    # first) pays the one-time synthetic generation that forked pool workers inherit
    # for free, and the serial-vs-pool comparison is biased in the pool's favor.  The
    # graph bundle is published here for the same reason -- the pooled orchestrator
    # finds the digest already owned and reuses it, so neither timed run pays the
    # one-time copy; the row records how many bytes the pool shares zero-copy.
    graph = load_benchmark(dataset, scale=scale, seed=data_seed)
    graph_shared_bytes = 0
    if shm.HAVE_SHARED_MEMORY:
        graph_shared_bytes = int(shm.publish_graph(graph).handle.total_bytes)

    scratch = Path(tempfile.mkdtemp(prefix="repro-sweep-bench-"))
    try:
        started = time.perf_counter()
        serial_report = SweepOrchestrator(build_config(max_workers=1), scratch / "serial").run()
        serial_seconds = time.perf_counter() - started

        started = time.perf_counter()
        pool_report = SweepOrchestrator(build_config(max_workers=workers), scratch / "pool").run()
        pool_seconds = time.perf_counter() - started
    finally:
        shutil.rmtree(scratch, ignore_errors=True)

    serial_sum = shard_wall_sum(serial_report)
    num_shards = len(serial_report.payload["shards"])
    return {
        "dataset": dataset,
        "shards": num_shards,
        "workers": workers,
        "budget": f"max_steps={budget_steps}",
        "serial_wall_seconds": round(serial_seconds, 4),
        "serial_shard_seconds_sum": round(serial_sum, 4),
        "pool_wall_seconds": round(pool_seconds, 4),
        "pool_shard_seconds_sum": round(shard_wall_sum(pool_report), 4),
        "parallel_speedup": round(serial_seconds / max(pool_seconds, 1e-9), 2),
        "graph_shared_bytes": graph_shared_bytes,
        "shards_per_second": round(num_shards / max(pool_seconds, 1e-9), 3),
        "orchestrator_overhead_seconds": round(max(serial_seconds - serial_sum, 0.0), 4),
        "reports_match": bool(
            strip_timing(serial_report.payload) == strip_timing(pool_report.payload)
            and serial_report.ok
            and pool_report.ok
        ),
    }


def _ranking_workload_models(graph: KnowledgeGraph, num_models: int, dim: int, seed: int) -> List[KGEModel]:
    """Seeded stand-ins for search candidates: random structures, 1-3 relation groups."""
    rng = new_rng(seed)
    models = []
    for index in range(num_models):
        num_groups = 1 + index % 3
        structures = [BlockStructure.random(4, rng) for _ in range(num_groups)]
        assignment = rng.integers(0, num_groups, size=graph.num_relations)
        models.append(
            KGEModel(
                num_entities=graph.num_entities,
                num_relations=graph.num_relations,
                dim=dim,
                scorers=structures,
                assignment=assignment,
                seed=seed + index,
            )
        )
    return models


def time_filtered_ranking(
    graph: KnowledgeGraph,
    num_models: int = 6,
    sample_size: int = 96,
    dim: int = 64,
    seed: int = 0,
) -> Dict[str, object]:
    """Naive-reference vs vectorized filtered ranking over a search-style workload.

    The workload mirrors what a search actually does: for each of ``num_models``
    candidate models, construct a fresh evaluator over ``graph`` and rank the same
    validation sample.  The naive side therefore pays the seed's per-candidate costs
    (dict-of-sets index rebuild, per-triple dense masks, Tensor scoring); the
    vectorized side shares the graph's memoised CSR index and flat filter arrays and
    scores through the compiled kernels.  Returns one row with both wall clocks,
    throughputs (ranked queries per second; each triple is ranked in both directions),
    the speedup and a ``ranks_match`` flag asserting bit-identical ranks.
    """
    rng = new_rng(seed)
    models = _ranking_workload_models(graph, num_models, dim, seed)
    valid = graph.valid.array
    size = min(sample_size, len(valid))
    sample = TripleSet(valid[rng.choice(len(valid), size=size, replace=False)].copy())

    started = time.perf_counter()
    naive_ranks = []
    for model in models:
        evaluator = NaiveRankingEvaluator(graph)  # rebuilds the set-based index, as the seed did
        naive_ranks.append(evaluator.ranks(model, sample))
    naive_seconds = time.perf_counter() - started

    # Cold-start cost of the vectorized setup (CSR lexsort build + flat filters), timed
    # against a private index so graph-level memoisation cannot hide it.
    started = time.perf_counter()
    cold_index = FilterIndex((graph.train, graph.valid, graph.test))
    cold_index.flat_filter(sample.array, "tail")
    cold_index.flat_filter(sample.array, "head")
    cold_build_seconds = time.perf_counter() - started

    # Warm the shared memos so the timed loop measures the steady-state regime (the
    # one-off build cost is what cold_build_seconds above reports).
    graph.filter_index().flat_filter(sample.array, "tail")
    graph.filter_index().flat_filter(sample.array, "head")

    started = time.perf_counter()
    fast_ranks = []
    for model in models:
        evaluator = RankingEvaluator(graph)  # shares the graph's memoised index
        fast_ranks.append(evaluator.ranks(model, sample))
    fast_seconds = time.perf_counter() - started

    queries = 2 * size * num_models  # both directions, per model
    return {
        "dataset": graph.name,
        "models": num_models,
        "sample_triples": size,
        "ranked_queries": queries,
        "dim": dim,
        "naive_seconds": round(naive_seconds, 4),
        "vectorized_seconds": round(fast_seconds, 4),
        "vectorized_cold_build_seconds": round(cold_build_seconds, 4),
        "naive_queries_per_second": round(queries / max(naive_seconds, 1e-9), 1),
        "vectorized_queries_per_second": round(queries / max(fast_seconds, 1e-9), 1),
        "speedup": round(naive_seconds / max(fast_seconds, 1e-9), 2),
        "ranks_match": bool(
            all(np.array_equal(a, b) for a, b in zip(naive_ranks, fast_ranks))
        ),
    }


def time_scale_curve(
    dataset: str = "fb15k_like",
    scales: Sequence[float] = (0.5, 1.0, 2.0),
    chunk_entities: int = 2048,
    dim: int = 48,
    sample_size: int = 64,
    data_seed: int = 0,
    seed: int = 0,
) -> List[Dict[str, object]]:
    """Chunked vs unchunked filtered ranking at growing dataset scales, one row per tier.

    Tiers run smallest scale first so the monotonic ``ru_maxrss`` high-water mark a
    row reports is the one *this* tier (and its predecessors) established, and so a
    regression that blows up memory on the largest tier is visible in its row.  Per
    tier, the timed passes run first and the ``tracemalloc`` passes after, so the
    evaluator/filter memos built on first use are not billed to either memory peak.
    ``scores_match`` compares the raw chunk-assembled score matrix bit-for-bit
    against one full :meth:`~repro.models.kge.KGEModel.score_all_arrays` call;
    ``ranks_match`` does the same for the two evaluators' filtered ranks.
    """
    import resource
    import tracemalloc

    from repro.datasets import load_benchmark

    rows: List[Dict[str, object]] = []
    for scale in sorted(float(s) for s in scales):
        graph = load_benchmark(dataset, scale=scale, seed=data_seed)
        model = _ranking_workload_models(graph, 1, dim, seed)[0]
        rng = new_rng(seed)
        valid = graph.valid.array
        size = min(sample_size, len(valid))
        sample = TripleSet(valid[rng.choice(len(valid), size=size, replace=False)].copy())

        plain = RankingEvaluator(graph)
        chunked = RankingEvaluator(graph, entity_chunk_size=chunk_entities)
        # Warm the graph-level filter memos outside the timers and memory probes.
        graph.filter_index().flat_filter(sample.array, "tail")
        graph.filter_index().flat_filter(sample.array, "head")

        started = time.perf_counter()
        plain_ranks = plain.ranks(model, sample)
        plain_seconds = time.perf_counter() - started

        started = time.perf_counter()
        chunked_ranks = chunked.ranks(model, sample)
        chunked_seconds = time.perf_counter() - started

        full_scores = model.score_all_arrays(sample.array, "tail")
        step = chunked.entity_chunk_size or graph.num_entities
        assembled = np.concatenate(
            [
                model.score_chunk_entities(sample.array, "tail", a, min(a + step, graph.num_entities))
                for a in range(0, graph.num_entities, step)
            ],
            axis=1,
        )
        scores_match = bool(np.array_equal(full_scores, assembled))

        tracemalloc.start()
        plain.ranks(model, sample)
        _, plain_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        tracemalloc.start()
        chunked.ranks(model, sample)
        _, chunked_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        queries = 2 * size  # both directions
        rows.append(
            {
                "dataset": f"{dataset}@{scale:g}",
                "scale": scale,
                "entities": int(graph.num_entities),
                "triples": int(len(graph.train) + len(graph.valid) + len(graph.test)),
                "sample_triples": size,
                "chunk_entities": int(chunk_entities),
                "unchunked_seconds": round(plain_seconds, 4),
                "chunked_seconds": round(chunked_seconds, 4),
                "chunked_overhead": round(chunked_seconds / max(plain_seconds, 1e-9), 2),
                "unchunked_queries_per_second": round(queries / max(plain_seconds, 1e-9), 1),
                "chunked_queries_per_second": round(queries / max(chunked_seconds, 1e-9), 1),
                "unchunked_eval_peak_mb": round(plain_peak / 2**20, 2),
                "chunked_eval_peak_mb": round(chunked_peak / 2**20, 2),
                "peak_rss_mb": round(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0, 1),
                "scores_match": scores_match,
                "ranks_match": bool(np.array_equal(plain_ranks, chunked_ranks)),
            }
        )
    return rows


def _random_graph_delta(graph: KnowledgeGraph, delta_triples: int, rng) -> "object":
    """A random train-split delta against ``graph``'s *current* state.

    Half the budget removes triples sampled from the live train split, the other half
    adds fresh triples absent from the whole graph (checked against the combined
    filter index, so the delta is always valid for :meth:`FilterIndex.apply_delta`).
    """
    from repro.stream.delta import GraphDelta

    index = graph.filter_index()
    train = np.asarray(graph.train.array)
    num_removes = min(delta_triples // 2, len(train))
    if num_removes:
        picks = train[rng.choice(len(train), size=num_removes, replace=False)]
        removes = np.unique(picks, axis=0)
    else:
        removes = np.empty((0, 3), dtype=np.int64)

    adds_needed = delta_triples - len(removes)
    chunks: List[np.ndarray] = []
    collected = 0
    while collected < adds_needed:
        candidates = np.column_stack(
            [
                rng.integers(0, graph.num_entities, size=4 * adds_needed),
                rng.integers(0, graph.num_relations, size=4 * adds_needed),
                rng.integers(0, graph.num_entities, size=4 * adds_needed),
            ]
        ).astype(np.int64)
        fresh = np.unique(candidates[~index.contains_batch(candidates)], axis=0)
        chunks.append(fresh)
        collected += len(fresh)
    adds = np.unique(np.concatenate(chunks), axis=0)[:adds_needed]
    return GraphDelta.from_arrays(adds={"train": adds}, removes={"train": removes})


def time_streaming_updates(
    graph: KnowledgeGraph,
    num_deltas: int = 12,
    delta_triples: int = 32,
    queries_per_delta: int = 32,
    dim: int = 32,
    k: int = 10,
    seed: int = 0,
) -> Dict[str, object]:
    """Interleaved update/query stream over a live graph: merge vs rebuild, latencies.

    ``num_deltas`` random train-split deltas (``delta_triples`` triples each, half
    adds / half removes) are applied through a
    :class:`~repro.stream.MutableGraphView` followed by the serving-path
    :meth:`~repro.serve.engine.LinkPredictionEngine.apply_delta` engine swap; between
    updates, ``queries_per_delta`` random link-prediction queries run against the
    live engine.  Per delta the row also times the full ``FilterIndex`` rebuild a
    non-incremental server would pay and asserts (``merge_matches_rebuild``) that the
    incrementally merged CSR buffers are bit-identical to the rebuilt ones.  Query
    results are checked against the view's version: any result stamped with an older
    ``graph_version`` counts as ``stale_results``.
    """
    from repro.serve.engine import LinkPredictionEngine, LinkQuery
    from repro.stream.delta import MutableGraphView

    rng = new_rng(seed)
    model = _ranking_workload_models(graph, 1, dim, seed)[0]
    view = MutableGraphView(graph)
    engine = LinkPredictionEngine.from_graph(model, graph)

    # Pay the one-time scoring warmup outside the timed stream so the first query's
    # latency measures serving, not kernel priming.
    engine.predict([LinkQuery(relation=0, head=0, k=k)])

    total_triples = len(graph.train) + len(graph.valid) + len(graph.test)
    update_ms: List[float] = []
    query_ms: List[float] = []
    merge_seconds = 0.0
    rebuild_seconds = 0.0
    stale_results = 0
    failed_queries = 0
    merge_matches_rebuild = True

    for _ in range(num_deltas):
        delta = _random_graph_delta(view.graph, delta_triples, rng)

        started = time.perf_counter()
        new_graph = view.apply(delta)
        merge_elapsed = time.perf_counter() - started
        merge_seconds += merge_elapsed

        started = time.perf_counter()
        engine = engine.apply_delta(new_graph, delta)
        update_ms.append((merge_elapsed + time.perf_counter() - started) * 1000.0)

        # What a non-incremental server pays per delta: a from-scratch lexsort build
        # over the spliced splits.  The merged index must be bit-identical to it.
        started = time.perf_counter()
        rebuilt = FilterIndex((new_graph.train, new_graph.valid, new_graph.test))
        rebuild_seconds += time.perf_counter() - started
        merged_arrays = new_graph.filter_index().csr_arrays()
        rebuilt_arrays = rebuilt.csr_arrays()
        merge_matches_rebuild = merge_matches_rebuild and set(merged_arrays) == set(
            rebuilt_arrays
        ) and all(np.array_equal(merged_arrays[key], rebuilt_arrays[key]) for key in merged_arrays)

        for _ in range(queries_per_delta):
            query = LinkQuery(
                relation=int(rng.integers(0, graph.num_relations)),
                head=int(rng.integers(0, graph.num_entities)),
                k=k,
            )
            started = time.perf_counter()
            try:
                result = engine.predict([query])[0]
            except Exception:
                failed_queries += 1
                continue
            query_ms.append((time.perf_counter() - started) * 1000.0)
            if result.graph_version != view.version:
                stale_results += 1

    update_summary = summarize_latencies(update_ms)
    query_summary = summarize_latencies(query_ms)
    return {
        "dataset": graph.name,
        "deltas": num_deltas,
        "delta_triples": delta_triples,
        "delta_fraction": round(delta_triples / max(total_triples, 1), 4),
        "queries": len(query_ms),
        "merge_seconds": round(merge_seconds, 4),
        "rebuild_seconds": round(rebuild_seconds, 4),
        "merge_speedup": round(rebuild_seconds / max(merge_seconds, 1e-9), 2),
        "update_apply_p50_ms": update_summary["p50_ms"],
        "update_apply_p95_ms": update_summary["p95_ms"],
        "update_apply_max_ms": update_summary["max_ms"],
        "query_p50_ms": query_summary["p50_ms"],
        "query_p95_ms": query_summary["p95_ms"],
        "stale_results": stale_results,
        "failed_queries": failed_queries,
        "final_graph_version": int(view.version),
        "cache_entries_invalidated": int(engine.stats.cache_entries_invalidated),
        "merge_matches_rebuild": bool(merge_matches_rebuild),
    }
