"""JSON serialisation of search state and search results.

Two concerns live here:

1. **Step-level checkpointing of any registered searcher** --
   :func:`save_search_checkpoint` wraps a searcher's
   :meth:`~repro.search.base.Searcher.state_dict` in a validated envelope (format
   version, searcher name, configuration, graph content identity) and writes it to a
   single JSON file; :func:`load_search_checkpoint` validates the envelope and
   restores the state through :meth:`~repro.search.base.Searcher.load_state_dict`,
   so a resumed search is **bit-identical** to an uninterrupted one for *every*
   algorithm implementing the protocol (enforced by ``tests/test_runtime.py``).
   Loading under a different searcher, configuration or dataset raises
   :class:`CheckpointError` instead of silently continuing a different search.

2. **Search-result round-tripping** -- :func:`search_result_to_jsonable` /
   :func:`search_result_from_jsonable` convert a
   :class:`~repro.search.result.SearchResult` to and from plain JSON structures, which
   backs ``python -m repro search --output`` and ``python -m repro train --from-result``.

Everything is plain JSON (no pickling), so checkpoints stay portable and inspectable.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
from pathlib import Path
from typing import Dict

import numpy as np

from repro.kg.graph import KnowledgeGraph
from repro.search.base import Searcher, SearchState, candidate_from_jsonable, candidate_to_jsonable
from repro.search.result import SearchResult, TracePoint
from repro.utils.serialization import PathLike, load_json, save_json, to_jsonable

# Version 2: protocol-level envelope ({searcher, config, graph, state}) replacing the
# version-1 ERAS-only flat layout.
CHECKPOINT_FORMAT_VERSION = 2


class CheckpointError(RuntimeError):
    """A checkpoint file is missing, malformed or belongs to a different search."""


# ---------------------------------------------------------------------------- graph identity
def _graph_identity(graph: KnowledgeGraph) -> Dict[str, object]:
    """Content identity of a graph: the name alone is ambiguous (the same benchmark at
    a different scale or data seed keeps its name), so the checkpoint stores shape plus
    a stable digest of all three splits -- the search consumes train *and* valid, and
    the final evaluation test -- and refuses to resume against anything else."""
    digest = hashlib.sha256()
    sizes = {}
    for split_name in ("train", "valid", "test"):
        array = np.ascontiguousarray(getattr(graph, split_name).array, dtype=np.int64)
        digest.update(array.tobytes())
        sizes[f"num_{split_name}_triples"] = int(len(array))
    return {
        "name": graph.name,
        "num_entities": graph.num_entities,
        "num_relations": graph.num_relations,
        **sizes,
        "splits_digest": digest.hexdigest(),
    }


# ---------------------------------------------------------------------------- checkpoints
def save_search_checkpoint(path: PathLike, searcher: Searcher, state: SearchState) -> Path:
    """Write ``searcher``'s full search state to ``path`` (atomically: write-then-rename).

    Works for every :class:`~repro.search.base.Searcher` implementation: the envelope
    is generic and the body is whatever the searcher's ``state_dict`` returns.
    """
    payload = {
        "format_version": CHECKPOINT_FORMAT_VERSION,
        "searcher": searcher.name,
        "config": to_jsonable(dataclasses.asdict(searcher.config)),
        "dataset": state.graph.name,
        "graph": _graph_identity(state.graph),
        "steps_completed": int(state.steps_completed),
        "state": searcher.state_dict(state),
    }
    path = Path(path)
    # PID-suffixed scratch so concurrent writers (e.g. a duplicated sweep shard) can
    # never promote each other's half-written file; the rename itself is atomic.
    scratch = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    save_json(payload, scratch)
    scratch.replace(path)
    return path


def load_search_checkpoint(path: PathLike, searcher: Searcher, graph: KnowledgeGraph) -> SearchState:
    """Rebuild the search state saved by :func:`save_search_checkpoint`.

    ``searcher`` and ``graph`` must match the checkpointed search; a different
    algorithm, configuration or dataset raises :class:`CheckpointError`.
    """
    path = Path(path)
    if not path.is_file():
        raise CheckpointError(f"no checkpoint at {path}")
    try:
        payload = load_json(path)
    except ValueError as error:
        raise CheckpointError(f"checkpoint at {path} is not valid JSON: {error}") from error
    declared = payload.get("format_version")
    if declared != CHECKPOINT_FORMAT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint format version {declared!r} "
            f"(this library reads version {CHECKPOINT_FORMAT_VERSION})"
        )
    if payload.get("searcher") != searcher.name:
        raise CheckpointError(
            f"checkpoint at {path} was written by searcher {payload.get('searcher')!r} "
            f"and cannot resume a {searcher.name!r} search"
        )
    expected_config = to_jsonable(dataclasses.asdict(searcher.config))
    if payload.get("config") != expected_config:
        raise CheckpointError(
            f"checkpoint at {path} was written under a different search configuration; "
            "resume with the original settings or delete the checkpoint"
        )
    if payload.get("graph") != _graph_identity(graph):
        raise CheckpointError(
            f"checkpoint at {path} belongs to a different graph "
            f"({payload.get('dataset')!r}; name, scale or data seed differ) and cannot "
            f"resume against {graph.name!r}"
        )

    # Build fresh components, then let the searcher overwrite every mutable piece.
    state = searcher.init_state(graph)
    searcher.load_state_dict(state, payload["state"])
    return state


# ---------------------------------------------------------------------------- results
def search_result_to_jsonable(result: SearchResult) -> Dict[str, object]:
    """A :class:`~repro.search.result.SearchResult` as plain JSON structures."""
    extras = dict(result.extras)
    top_candidates = extras.pop("top_candidates", None)
    payload = {
        "searcher": result.searcher,
        "dataset": result.dataset,
        "best_candidate": candidate_to_jsonable(result.best_candidate),
        "best_assignment": result.best_assignment.tolist(),
        "best_valid_mrr": result.best_valid_mrr,
        "search_seconds": result.search_seconds,
        "evaluations": result.evaluations,
        "trace": [dataclasses.asdict(point) for point in result.trace],
        "extras": to_jsonable(extras),
    }
    if top_candidates is not None:
        payload["extras"]["top_candidates"] = [candidate_to_jsonable(c) for c in top_candidates]
    return payload


def search_result_from_jsonable(data: Dict[str, object]) -> SearchResult:
    """Rebuild a :class:`~repro.search.result.SearchResult` saved by
    :func:`search_result_to_jsonable`."""
    extras = dict(data.get("extras", {}))
    if "top_candidates" in extras:
        extras["top_candidates"] = [candidate_from_jsonable(c) for c in extras["top_candidates"]]
    return SearchResult(
        searcher=str(data["searcher"]),
        dataset=str(data["dataset"]),
        best_candidate=candidate_from_jsonable(data["best_candidate"]),
        best_assignment=np.asarray(data["best_assignment"], dtype=np.int64),
        best_valid_mrr=float(data["best_valid_mrr"]),
        search_seconds=float(data["search_seconds"]),
        evaluations=int(data["evaluations"]),
        trace=[TracePoint(**point) for point in data.get("trace", [])],
        extras=extras,
    )


def save_search_result(result: SearchResult, path: PathLike) -> Path:
    """Serialise a search result to ``path`` as JSON."""
    return save_json(search_result_to_jsonable(result), path)


def load_search_result(path: PathLike) -> SearchResult:
    """Load a search result saved by :func:`save_search_result`."""
    return search_result_from_jsonable(load_json(path))
