"""JSON serialisation of search state and search results.

Two concerns live here:

1. **Epoch-level checkpointing of ERAS** -- :func:`save_search_checkpoint` writes an
   :class:`~repro.search.eras.ERASSearchState` (shared embeddings, Adagrad accumulators,
   controller weights, Adam moments, REINFORCE baseline, every random stream, the
   reward memory and all counters) to a single JSON file, and
   :func:`load_search_checkpoint` restores it so that a resumed search is
   **bit-identical** to an uninterrupted one (enforced by ``tests/test_runtime.py``).
   Checkpoints embed the search configuration; loading under a different configuration
   raises :class:`CheckpointError` instead of silently continuing a different search.

2. **Search-result round-tripping** -- :func:`search_result_to_jsonable` /
   :func:`search_result_from_jsonable` convert a
   :class:`~repro.search.result.SearchResult` to and from plain JSON structures, which
   backs ``python -m repro search --output`` and ``python -m repro train --from-result``.

Everything is plain JSON (no pickling), so checkpoints stay portable and inspectable.
"""

from __future__ import annotations

import dataclasses
import hashlib
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from repro.kg.graph import KnowledgeGraph
from repro.scoring.structure import BlockStructure
from repro.search.eras import ERASSearcher, ERASSearchState
from repro.search.result import Candidate, SearchResult, TracePoint
from repro.utils.serialization import PathLike, load_json, save_json, to_jsonable

CHECKPOINT_FORMAT_VERSION = 1


class CheckpointError(RuntimeError):
    """A checkpoint file is missing, malformed or belongs to a different search."""


# ---------------------------------------------------------------------------- candidates
def candidate_to_jsonable(candidate: Candidate) -> List[List[List[int]]]:
    """A candidate as nested lists: one signed entry matrix per relation group."""
    return [structure.entries.tolist() for structure in candidate.structures]


def candidate_from_jsonable(data: List[List[List[int]]]) -> Candidate:
    """Rebuild a :class:`~repro.search.result.Candidate` from :func:`candidate_to_jsonable`."""
    return Candidate(tuple(BlockStructure(np.asarray(entries, dtype=np.int64)) for entries in data))


# ---------------------------------------------------------------------------- graph identity
def _graph_identity(graph: KnowledgeGraph) -> Dict[str, object]:
    """Content identity of a graph: the name alone is ambiguous (the same benchmark at
    a different scale or data seed keeps its name), so the checkpoint stores shape plus
    a stable digest of all three splits -- the search consumes train *and* valid, and
    the final evaluation test -- and refuses to resume against anything else."""
    digest = hashlib.sha256()
    sizes = {}
    for split_name in ("train", "valid", "test"):
        array = np.ascontiguousarray(getattr(graph, split_name).array, dtype=np.int64)
        digest.update(array.tobytes())
        sizes[f"num_{split_name}_triples"] = int(len(array))
    return {
        "name": graph.name,
        "num_entities": graph.num_entities,
        "num_relations": graph.num_relations,
        **sizes,
        "splits_digest": digest.hexdigest(),
    }


# ---------------------------------------------------------------------------- rng streams
def _rng_state(rng: np.random.Generator) -> Dict[str, object]:
    return rng.bit_generator.state


def _restore_rng(rng: np.random.Generator, state: Dict[str, object]) -> None:
    rng.bit_generator.state = state


# ---------------------------------------------------------------------------- checkpoints
def save_search_checkpoint(path: PathLike, searcher: ERASSearcher, state: ERASSearchState) -> Path:
    """Write the full search state to ``path`` (atomically: write-then-rename)."""
    payload = {
        "format_version": CHECKPOINT_FORMAT_VERSION,
        "config": to_jsonable(dataclasses.asdict(searcher.config)),
        "dataset": state.graph.name,
        "graph": _graph_identity(state.graph),
        "epochs_completed": state.epochs_completed,
        "iteration": state.iteration,
        "evaluations": state.evaluations,
        "elapsed_seconds": state.elapsed_seconds,
        "memory_start": state.memory_start,
        "assignment": state.assignment.tolist(),
        "rng": _rng_state(state.rng),
        "supernet": {
            "model": state.supernet.model.state_dict(),
            "optimizer": state.supernet.optimizer.state_dict(),
            "rng": _rng_state(state.supernet._rng),
        },
        "controller": {"model": state.controller.state_dict()},
        "updater": {
            "baseline": state.updater.baseline,
            "optimizer": state.updater.optimizer.state_dict(),
        },
        "clustering_rng": _rng_state(state.clustering._rng),
        "trace": [dataclasses.asdict(point) for point in state.trace],
        # Insertion order matters: derive-phase ties are broken by it.
        "reward_memory": [
            {"reward": reward, "candidate": candidate_to_jsonable(candidate)}
            for reward, candidate in state.reward_memory.values()
        ],
        "last_rewards": [float(reward) for reward in state.last_rewards],
    }
    path = Path(path)
    scratch = path.with_name(path.name + ".tmp")
    save_json(payload, scratch)
    scratch.replace(path)
    return path


def load_search_checkpoint(path: PathLike, searcher: ERASSearcher, graph: KnowledgeGraph) -> ERASSearchState:
    """Rebuild an :class:`~repro.search.eras.ERASSearchState` saved by
    :func:`save_search_checkpoint`.

    ``searcher`` and ``graph`` must match the checkpointed search; a different
    configuration or dataset raises :class:`CheckpointError`.
    """
    path = Path(path)
    if not path.is_file():
        raise CheckpointError(f"no checkpoint at {path}")
    try:
        payload = load_json(path)
    except ValueError as error:
        raise CheckpointError(f"checkpoint at {path} is not valid JSON: {error}") from error
    declared = payload.get("format_version")
    if declared != CHECKPOINT_FORMAT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint format version {declared!r} "
            f"(this library reads version {CHECKPOINT_FORMAT_VERSION})"
        )
    expected_config = to_jsonable(dataclasses.asdict(searcher.config))
    if payload.get("config") != expected_config:
        raise CheckpointError(
            f"checkpoint at {path} was written under a different search configuration; "
            "resume with the original settings or delete the checkpoint"
        )
    if payload.get("graph") != _graph_identity(graph):
        raise CheckpointError(
            f"checkpoint at {path} belongs to a different graph "
            f"({payload.get('dataset')!r}; name, scale or data seed differ) and cannot "
            f"resume against {graph.name!r}"
        )

    # Build fresh components, then overwrite every piece of mutable state.
    state = searcher.init_state(graph)
    supernet_payload = payload["supernet"]
    state.supernet.model.load_state_dict(
        {name: np.asarray(value, dtype=np.float64) for name, value in supernet_payload["model"].items()}
    )
    state.supernet.optimizer.load_state_dict(supernet_payload["optimizer"])
    _restore_rng(state.supernet._rng, supernet_payload["rng"])
    state.controller.load_state_dict(
        {name: np.asarray(value, dtype=np.float64) for name, value in payload["controller"]["model"].items()}
    )
    baseline = payload["updater"]["baseline"]
    state.updater.baseline = None if baseline is None else float(baseline)
    state.updater.optimizer.load_state_dict(payload["updater"]["optimizer"])
    _restore_rng(state.clustering._rng, payload["clustering_rng"])
    _restore_rng(state.rng, payload["rng"])

    state.assignment = np.asarray(payload["assignment"], dtype=np.int64)
    state.supernet.set_assignment(state.assignment)
    state.epochs_completed = int(payload["epochs_completed"])
    state.iteration = int(payload["iteration"])
    state.evaluations = int(payload["evaluations"])
    state.elapsed_seconds = float(payload["elapsed_seconds"])
    state.memory_start = int(payload["memory_start"])
    state.trace = [TracePoint(**point) for point in payload["trace"]]
    state.reward_memory = {}
    for entry in payload["reward_memory"]:
        candidate = candidate_from_jsonable(entry["candidate"])
        state.reward_memory[candidate.signature()] = (float(entry["reward"]), candidate)
    state.last_rewards = [float(reward) for reward in payload["last_rewards"]]
    return state


# ---------------------------------------------------------------------------- results
def search_result_to_jsonable(result: SearchResult) -> Dict[str, object]:
    """A :class:`~repro.search.result.SearchResult` as plain JSON structures."""
    extras = dict(result.extras)
    top_candidates = extras.pop("top_candidates", None)
    payload = {
        "searcher": result.searcher,
        "dataset": result.dataset,
        "best_candidate": candidate_to_jsonable(result.best_candidate),
        "best_assignment": result.best_assignment.tolist(),
        "best_valid_mrr": result.best_valid_mrr,
        "search_seconds": result.search_seconds,
        "evaluations": result.evaluations,
        "trace": [dataclasses.asdict(point) for point in result.trace],
        "extras": to_jsonable(extras),
    }
    if top_candidates is not None:
        payload["extras"]["top_candidates"] = [candidate_to_jsonable(c) for c in top_candidates]
    return payload


def search_result_from_jsonable(data: Dict[str, object]) -> SearchResult:
    """Rebuild a :class:`~repro.search.result.SearchResult` saved by
    :func:`search_result_to_jsonable`."""
    extras = dict(data.get("extras", {}))
    if "top_candidates" in extras:
        extras["top_candidates"] = [candidate_from_jsonable(c) for c in extras["top_candidates"]]
    return SearchResult(
        searcher=str(data["searcher"]),
        dataset=str(data["dataset"]),
        best_candidate=candidate_from_jsonable(data["best_candidate"]),
        best_assignment=np.asarray(data["best_assignment"], dtype=np.int64),
        best_valid_mrr=float(data["best_valid_mrr"]),
        search_seconds=float(data["search_seconds"]),
        evaluations=int(data["evaluations"]),
        trace=[TracePoint(**point) for point in data.get("trace", [])],
        extras=extras,
    )


def save_search_result(result: SearchResult, path: PathLike) -> Path:
    """Serialise a search result to ``path`` as JSON."""
    return save_json(search_result_to_jsonable(result), path)


def load_search_result(path: PathLike) -> SearchResult:
    """Load a search result saved by :func:`save_search_result`."""
    return search_result_from_jsonable(load_json(path))
