"""Sharded search sweeps: the fault-tolerant multi-run orchestrator.

One :class:`~repro.runtime.runner.SearchRunner` executes exactly one
``(searcher, seed, dataset, budget)`` combination.  The paper's headline comparison
(ERAS vs AutoSF vs random vs Bayes search across seeds -- the Figure 2 / Table IX
axes) needs a *grid* of those combinations, run with crash recovery and aggregated
fairly.  This module provides that layer on top of the PR-4 stepwise
:class:`~repro.search.base.Searcher` protocol:

- :class:`SweepConfig` declares the grid (searchers x seeds x datasets x budgets)
  plus the knobs every shard shares (scale, dim, proxy epochs, final training, ...).
- :class:`SweepOrchestrator` expands the grid into deduplicated :class:`ShardSpec`
  shards, dispatches them to a bounded ``multiprocessing`` worker pool with
  work-stealing (idle workers pull the next pending shard from a shared queue), and
  writes every artifact into one **sweep directory**::

      <sweep_dir>/sweep.json                   the manifest (config, format version)
      <sweep_dir>/shards/<id>/checkpoint.json  the shard's format-v2 search envelope
      <sweep_dir>/shards/<id>/result.json      the shard's finished report
      <sweep_dir>/report.json                  the aggregated fair-comparison report
      <sweep_dir>/report.md                    the same report rendered as markdown

- **Fault tolerance**: a worker that dies mid-shard is detected by the orchestrator,
  the shard is requeued (up to ``max_shard_retries`` times) and the next worker
  resumes it from its last checkpoint -- bit-identical to an uninterrupted run, the
  same guarantee ``tests/test_runtime.py`` establishes per searcher.  A killed
  *orchestrator* recovers the same way: re-running with ``resume=True`` (CLI:
  ``python -m repro sweep --resume <sweep-dir>``) skips finished shards and resumes
  partial ones from their checkpoints.
- **Aggregation**: finished shards are reduced to a per-searcher fair-comparison
  report (mean/std MRR, Hit@1, evaluations used, wall clock) emitted as JSON and
  rendered markdown.  Wall-clock fields live under ``timing`` keys;
  :func:`strip_timing` removes them, and the remaining payload is **bit-identical**
  across crash/resume cycles and worker counts (enforced by
  ``tests/test_orchestrator.py``).

Workers execute shards with ``RunConfig(workers=1)`` -- sweep-level parallelism
replaces shard-level parallelism, so the pool is never oversubscribed.  Before the
pool spawns, the orchestrator publishes every dataset of the grid into shared memory
(:func:`repro.runtime.shm.publish_graph`: splits plus the pre-built CSR filter
index); workers receive the picklable handles and attach zero-copy views, so no
worker ever regenerates, re-parses or re-indexes a dataset -- one graph per digest in
physical memory no matter how many workers or shards touch it.
"""

from __future__ import annotations

import dataclasses
import os
import queue as queue_module
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets import DatasetResolutionError, check_dataset_spec, dataset_label
from repro.search.base import SearchBudget
from repro.search.registry import available_searchers
from repro.utils.logging import get_logger
from repro.utils.serialization import PathLike, load_json, save_json, to_jsonable

from repro.runtime.runner import RunConfig, SearchRunner

logger = get_logger("runtime.orchestrator")

#: Version of the sweep manifest / shard result / report layout.
SWEEP_FORMAT_VERSION = 1

#: Exit code a worker uses for the injected mid-step kill (tests and drills).
KILL_EXIT_CODE = 75

#: Environment variable enabling one injected worker kill: ``"<shard_id>@<step>"``
#: makes the worker running that shard die right after checkpointing that step, once
#: (a marker file inside the shard directory keeps it from firing again).
KILL_ENV_VAR = "REPRO_SWEEP_KILL"

#: Keys that carry host-dependent wall clock; :func:`strip_timing` removes them so
#: reports can be compared bit-for-bit across crash/resume cycles and worker counts.
TIMING_KEYS = frozenset({"timing", "search_seconds", "elapsed_seconds", "wall_seconds", "attempt"})


class SweepError(RuntimeError):
    """A sweep cannot start, resume or finish (bad grid, manifest mismatch, dead shards)."""


# ---------------------------------------------------------------------------- config
@dataclass(frozen=True)
class SweepConfig:
    """The declarative description of one sweep: the grid plus shared shard knobs.

    Fields
    ------
    searchers:
        Grid axis: registered searcher names to compare (default ``("eras",)``,
        non-empty; unknown names raise listing
        :func:`~repro.search.registry.available_searchers`).
    seeds:
        Grid axis: search/training seeds, one shard per seed (default ``(0,)``).
    datasets:
        Grid axis: dataset specs accepted by :func:`repro.datasets.resolve_dataset`
        -- registry benchmark names or ``train.txt``/``valid.txt``/``test.txt``
        directories (default ``("wn18rr_like",)``, non-empty).
    budgets:
        Grid axis: one optional :class:`~repro.search.base.SearchBudget` per entry
        (default ``(None,)`` = a single unbudgeted axis point).  Budgets with
        ``max_seconds`` make shard outcomes host-dependent, so prefer step/evaluation
        budgets for comparable sweeps.
    scale:
        Dataset scale factor shared by every shard (default 1.0, > 0).
    data_seed:
        Seed of the synthetic dataset generator (default 0).
    num_groups:
        N, relation groups of the ERAS-family shards (default 3, >= 1).
    num_blocks:
        M, structure block count shared by every searcher (default 4, >= 2).
    search_epochs:
        ERAS search epochs per shard (default 15, >= 1).
    num_candidates:
        Candidate budget of the random/Bayes shards (default 8, >= 1).
    derive_samples:
        K, ERAS derive-phase samples (default 16, >= 1).
    dim:
        Embedding dimension of every shard (default 48, > 0).
    proxy_epochs:
        Override of the stand-alone per-candidate training epochs of the
        AutoSF/random/Bayes proxy (default None: each algorithm's benchmark budget).
    train_final:
        Re-train each shard's winner from scratch and evaluate it on ``eval_split``
        (default True; False stops shards after the search, and the report
        aggregates the searchers' validation-proxy MRR only).
    train_epochs:
        Epochs of the final from-scratch training (default 30, >= 1).
    rerank:
        Re-rank each shard's top candidates before the final training (default True).
    eval_split:
        Split of the final ranking evaluation, ``"valid"`` or ``"test"``
        (default ``"test"``).
    registry_root:
        Optional model artifact registry root; when set, every trained shard winner
        is published as ``<searcher>-<dataset>-seed<seed>`` (default None).
    max_workers:
        Worker processes of the shard pool; 1 runs shards serially in-process,
        0 means all cores (default 2).
    checkpoint_every:
        Write each shard's checkpoint every this many steps (default 1, >= 1).
    max_shard_retries:
        How many times a crashed or failed shard is retried before the sweep reports
        it as failed (default 1, >= 0) -- the same attempt budget whether the shard
        died with its worker process or raised a Python exception, and whether it
        ran in-process or on the pool.  Each retry resumes from the shard's
        checkpoint.
    """

    searchers: Tuple[str, ...] = ("eras",)
    seeds: Tuple[int, ...] = (0,)
    datasets: Tuple[str, ...] = ("wn18rr_like",)
    budgets: Tuple[Optional[SearchBudget], ...] = (None,)
    scale: float = 1.0
    data_seed: int = 0
    num_groups: int = 3
    num_blocks: int = 4
    search_epochs: int = 15
    num_candidates: int = 8
    derive_samples: int = 16
    dim: int = 48
    proxy_epochs: Optional[int] = None
    train_final: bool = True
    train_epochs: int = 30
    rerank: bool = True
    eval_split: str = "test"
    registry_root: Optional[str] = None
    max_workers: int = 2
    checkpoint_every: int = 1
    max_shard_retries: int = 1

    def __post_init__(self) -> None:
        if not self.searchers or not self.seeds or not self.datasets or not self.budgets:
            raise SweepError(
                "empty sweep grid: searchers, seeds, datasets and budgets must each "
                "have at least one entry"
            )
        unknown = [name for name in self.searchers if name not in available_searchers()]
        if unknown:
            raise SweepError(
                f"unknown searcher(s) {unknown}; choose from: {', '.join(available_searchers())}"
            )
        for name in self.datasets:
            try:
                check_dataset_spec(name, scale=self.scale)
            except DatasetResolutionError as error:
                raise SweepError(str(error)) from error
        if self.max_workers < 0:
            raise SweepError("max_workers must be >= 0 (0 means all cores)")
        if self.max_shard_retries < 0:
            raise SweepError("max_shard_retries must be >= 0")
        # Delegate the per-shard knob validation to RunConfig by building one probe
        # config; this keeps the two validation rule sets from drifting apart.
        self.shard_run_config(self.expand_shards()[0], checkpoint_path=None)

    # ------------------------------------------------------------------ grid
    def expand_shards(self) -> List["ShardSpec"]:
        """The grid as deduplicated :class:`ShardSpec` entries, in deterministic order.

        Duplicate combinations (e.g. a searcher listed twice) collapse to one shard;
        order follows the axis declaration order, so the same config always produces
        the same shard list.
        """
        seen: Dict[str, ShardSpec] = {}
        for dataset in self.datasets:
            for searcher in self.searchers:
                for seed in self.seeds:
                    for budget_index, budget in enumerate(self.budgets):
                        spec = ShardSpec(
                            searcher=searcher,
                            seed=int(seed),
                            dataset=dataset,
                            budget_index=budget_index,
                            budget=budget,
                        )
                        seen.setdefault(spec.shard_id, spec)
        return list(seen.values())

    def shard_run_config(self, shard: "ShardSpec", checkpoint_path: Optional[str]) -> RunConfig:
        """The :class:`~repro.runtime.runner.RunConfig` executing one shard.

        Shards always run with ``workers=1``: the sweep parallelises across shards,
        not inside them, so a ``max_workers`` pool never oversubscribes the host.
        """
        budget = shard.budget
        return RunConfig(
            dataset=shard.dataset,
            scale=self.scale,
            data_seed=self.data_seed,
            searcher=shard.searcher,
            num_groups=self.num_groups,
            num_blocks=self.num_blocks,
            search_epochs=self.search_epochs,
            num_candidates=self.num_candidates,
            derive_samples=self.derive_samples,
            dim=self.dim,
            seed=shard.seed,
            workers=1,
            proxy_epochs=self.proxy_epochs,
            checkpoint_path=checkpoint_path,
            checkpoint_every=self.checkpoint_every,
            budget_steps=None if budget is None else budget.max_steps,
            budget_evals=None if budget is None else budget.max_evaluations,
            budget_seconds=None if budget is None else budget.max_seconds,
            train_final=self.train_final,
            train_epochs=self.train_epochs,
            rerank=self.rerank,
            eval_split=self.eval_split,
            registry_root=self.registry_root,
            model_name=f"{shard.searcher}-{dataset_label(shard.dataset)}-seed{shard.seed}",
        )


@dataclass(frozen=True)
class ShardSpec:
    """One grid point of a sweep: a single (searcher, seed, dataset, budget) run.

    Fields
    ------
    searcher:
        Registered searcher name this shard runs.
    seed:
        Search/training seed of the shard.
    dataset:
        Synthetic benchmark name the shard searches on.
    budget_index:
        Index into :attr:`SweepConfig.budgets` (keeps shard ids stable when several
        budget axis points are swept).
    budget:
        The shard's optional :class:`~repro.search.base.SearchBudget` (None = the
        searcher's own schedule decides when to stop).
    """

    searcher: str
    seed: int
    dataset: str
    budget_index: int = 0
    budget: Optional[SearchBudget] = None

    @property
    def shard_id(self) -> str:
        """Stable, filesystem-safe identity used for directories and dedup.

        Directory datasets contribute their :func:`repro.datasets.dataset_label`
        (basename + path digest) instead of the raw path, so the id stays one flat
        path component.
        """
        return f"{self.searcher}-{dataset_label(self.dataset)}-seed{self.seed}-b{self.budget_index}"

    def to_jsonable(self) -> Dict[str, object]:
        """The spec as plain JSON structures (the manifest/result representation)."""
        return {
            "id": self.shard_id,
            "searcher": self.searcher,
            "seed": self.seed,
            "dataset": self.dataset,
            "budget_index": self.budget_index,
            "budget": budget_to_jsonable(self.budget),
        }

    @classmethod
    def from_jsonable(cls, data: Dict[str, object]) -> "ShardSpec":
        """Rebuild a spec serialised by :meth:`to_jsonable`."""
        return cls(
            searcher=str(data["searcher"]),
            seed=int(data["seed"]),
            dataset=str(data["dataset"]),
            budget_index=int(data["budget_index"]),
            budget=budget_from_jsonable(data.get("budget")),
        )


# ---------------------------------------------------------------------------- JSON
def budget_to_jsonable(budget: Optional[SearchBudget]) -> Optional[Dict[str, object]]:
    """A :class:`~repro.search.base.SearchBudget` as a plain dict (None stays None)."""
    return None if budget is None else to_jsonable(dataclasses.asdict(budget))


def budget_from_jsonable(data: Optional[Dict[str, object]]) -> Optional[SearchBudget]:
    """Rebuild a budget serialised by :func:`budget_to_jsonable`."""
    return None if data is None else SearchBudget(**data)


def sweep_config_to_jsonable(config: SweepConfig) -> Dict[str, object]:
    """A :class:`SweepConfig` as plain JSON structures (the manifest representation)."""
    payload = to_jsonable(dataclasses.asdict(config))
    payload["budgets"] = [budget_to_jsonable(budget) for budget in config.budgets]
    return payload


def sweep_config_from_jsonable(data: Dict[str, object]) -> SweepConfig:
    """Rebuild a config serialised by :func:`sweep_config_to_jsonable`."""
    payload = dict(data)
    payload["budgets"] = tuple(budget_from_jsonable(entry) for entry in payload.get("budgets", [None]))
    for axis in ("searchers", "seeds", "datasets"):
        if axis in payload:
            payload[axis] = tuple(payload[axis])
    return SweepConfig(**payload)


def strip_timing(payload: object) -> object:
    """``payload`` with every host-dependent timing key removed, recursively.

    Shard results and sweep reports carry wall-clock numbers (under the keys of
    :data:`TIMING_KEYS`) next to deterministic search outcomes.  Stripping the former
    leaves a payload that is bit-identical between an uninterrupted sweep and any
    crash/requeue/resume history of the same grid -- the property the fault-tolerance
    tests assert.
    """
    if isinstance(payload, dict):
        return {
            key: strip_timing(value) for key, value in payload.items() if key not in TIMING_KEYS
        }
    if isinstance(payload, list):
        return [strip_timing(value) for value in payload]
    return payload


# ---------------------------------------------------------------------------- report
@dataclass
class SweepReport:
    """Outcome of one :meth:`SweepOrchestrator.run`.

    Fields
    ------
    payload:
        The aggregated report as plain JSON structures (what ``report.json`` holds):
        grid axes, per-shard statuses, per-searcher aggregates and a ``timing``
        section.
    path:
        Where ``report.json`` was written.
    markdown_path:
        Where the rendered ``report.md`` was written.
    failed:
        Shard ids that exhausted their retries (empty for a fully successful sweep).
    """

    payload: Dict[str, object]
    path: Path
    markdown_path: Path
    failed: Tuple[str, ...] = ()

    def deterministic(self) -> Dict[str, object]:
        """The report without timing fields -- comparable bit-for-bit across runs."""
        return strip_timing(self.payload)

    @property
    def ok(self) -> bool:
        """True when every shard of the grid completed."""
        return not self.failed


def _mean_std(values: Sequence[float]) -> Tuple[float, float]:
    array = np.asarray(values, dtype=np.float64)
    return round(float(array.mean()), 6), round(float(array.std()), 6)


def aggregate_shards(
    config: SweepConfig, results: Dict[str, Dict[str, object]], failures: Dict[str, str]
) -> Dict[str, object]:
    """Reduce finished shard results to the fair-comparison report payload.

    ``results`` maps shard id to the shard's ``result.json`` payload; aggregation
    iterates shards in sorted-id order, so the report never depends on completion
    order (and therefore not on worker count or crash history).
    """
    per_searcher: List[Dict[str, object]] = []
    timing_rows: Dict[str, Dict[str, object]] = {}
    for searcher in dict.fromkeys(config.searchers):
        rows = [results[sid] for sid in sorted(results) if results[sid]["shard"]["searcher"] == searcher]
        if not rows:
            continue
        valid_mrrs = [row["search"]["best_valid_mrr"] for row in rows]
        evaluations = [row["search"]["evaluations"] for row in rows]
        entry: Dict[str, object] = {
            "searcher": searcher,
            "shards": len(rows),
            "datasets": sorted({row["shard"]["dataset"] for row in rows}),
            "mean_valid_mrr": _mean_std(valid_mrrs)[0],
            "std_valid_mrr": _mean_std(valid_mrrs)[1],
            "mean_evaluations": _mean_std(evaluations)[0],
            "total_evaluations": int(sum(evaluations)),
        }
        metric_rows = [row["metrics"] for row in rows if row.get("metrics")]
        if metric_rows:
            # Deliberately split-agnostic key names: with eval_split="valid" a
            # f"mean_{split}_mrr" key would collide with (and clobber) the search
            # proxy's mean_valid_mrr above.  The report-level "eval_split" field
            # says which split these final-model numbers come from.
            final_mrrs = [row["MRR"] for row in metric_rows]
            hit1s = [row["Hit@1"] for row in metric_rows]
            entry.update(
                {
                    "mean_eval_mrr": _mean_std(final_mrrs)[0],
                    "std_eval_mrr": _mean_std(final_mrrs)[1],
                    "mean_eval_hit1": _mean_std(hit1s)[0],
                    "std_eval_hit1": _mean_std(hit1s)[1],
                }
            )
        per_searcher.append(entry)
        search_seconds = [row["search"]["search_seconds"] for row in rows]
        wall_seconds = [row["timing"]["wall_seconds"] for row in rows]
        timing_rows[searcher] = {
            "mean_search_seconds": _mean_std(search_seconds)[0],
            "total_search_seconds": round(float(sum(search_seconds)), 4),
            "mean_shard_wall_seconds": _mean_std(wall_seconds)[0],
            "total_shard_wall_seconds": round(float(sum(wall_seconds)), 4),
        }

    shards = {
        sid: {"status": "completed", "attempt": results[sid].get("attempt", 1)} for sid in sorted(results)
    }
    shards.update(
        {sid: {"status": "failed", "error": error} for sid, error in sorted(failures.items())}
    )
    return {
        "format_version": SWEEP_FORMAT_VERSION,
        "grid": {
            "searchers": list(config.searchers),
            "seeds": [int(seed) for seed in config.seeds],
            "datasets": list(config.datasets),
            "budgets": [budget_to_jsonable(budget) for budget in config.budgets],
        },
        "eval_split": config.eval_split,
        "train_final": config.train_final,
        "shards": shards,
        "per_searcher": per_searcher,
        "timing": {"per_searcher": timing_rows},
    }


def render_report_markdown(payload: Dict[str, object]) -> str:
    """The aggregated report as a markdown document (what ``report.md`` holds)."""
    grid = payload["grid"]
    eval_split = payload.get("eval_split", "test")
    completed = sum(1 for entry in payload["shards"].values() if entry["status"] == "completed")
    failed = [sid for sid, entry in payload["shards"].items() if entry["status"] == "failed"]
    lines = [
        "# Sweep report",
        "",
        f"Grid: searchers {grid['searchers']} x seeds {grid['seeds']} x "
        f"datasets {grid['datasets']} x {len(grid['budgets'])} budget(s) -- "
        f"{completed}/{len(payload['shards'])} shards completed.",
        "",
    ]
    if failed:
        lines += [f"**Failed shards:** {', '.join(failed)}", ""]
    mrr_column = f"{eval_split} MRR" if payload.get("train_final") else "valid MRR (proxy)"
    hit_column = f"{eval_split} Hit@1"
    lines += [
        f"| searcher | shards | {mrr_column} | {hit_column} | evaluations | search s (mean) |",
        "| --- | --- | --- | --- | --- | --- |",
    ]
    timing = payload["timing"]["per_searcher"]
    for entry in payload["per_searcher"]:
        name = entry["searcher"]
        if payload.get("train_final") and "mean_eval_mrr" in entry:
            mrr = f"{entry['mean_eval_mrr']:.4f} +/- {entry['std_eval_mrr']:.4f}"
            hit1 = f"{entry['mean_eval_hit1']:.1f} +/- {entry['std_eval_hit1']:.1f}"
        else:
            mrr = f"{entry['mean_valid_mrr']:.4f} +/- {entry['std_valid_mrr']:.4f}"
            hit1 = "-"
        lines.append(
            f"| {name} | {entry['shards']} | {mrr} | {hit1} | "
            f"{entry['mean_evaluations']:.1f} | {timing[name]['mean_search_seconds']:.2f} |"
        )
    lines.append("")
    return "\n".join(lines)


# ---------------------------------------------------------------------------- shard execution
def _maybe_inject_kill(shard_id: str, shard_dir: Path, steps_completed: int) -> None:
    """Honour the :data:`KILL_ENV_VAR` fault injection (used by tests and drills).

    Fires at most once per shard directory: the first worker to reach the target step
    claims a marker file with ``O_EXCL`` and dies hard (``os._exit``), skipping every
    ``finally``/``atexit`` path exactly like a real crash; any later attempt sees the
    marker and keeps running.
    """
    target = os.environ.get(KILL_ENV_VAR)
    if not target:
        return
    wanted_id, _, step_text = target.partition("@")
    if wanted_id != shard_id or not step_text.isdigit() or steps_completed != int(step_text):
        return
    try:
        handle = os.open(shard_dir / "kill.fired", os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return
    os.close(handle)
    os._exit(KILL_EXIT_CODE)


def run_shard(
    config: SweepConfig,
    shard: ShardSpec,
    sweep_dir: PathLike,
    attempt: int = 1,
    graph=None,
) -> Dict[str, object]:
    """Execute (or resume) one shard and write its ``result.json``; returns the payload.

    The shard checkpoints between steps through the universal format-v2 envelope, so
    a crashed attempt resumes from its last completed step.  The result file is
    written atomically (write-then-rename), which is what lets ``resume`` trust any
    existing, parseable ``result.json``.  ``graph`` optionally injects a pre-loaded
    :class:`~repro.kg.graph.KnowledgeGraph` for the shard's dataset (the pool path
    resolves it from the orchestrator's shared-memory publication); None loads it
    through the dataset registry as before.
    """
    from repro.runtime.checkpoint import search_result_to_jsonable

    shard_dir = Path(sweep_dir) / "shards" / shard.shard_id
    shard_dir.mkdir(parents=True, exist_ok=True)
    # Sweep away scratch files orphaned by killed writers (their PID suffix makes
    # them unique per attempt, so crash cycles would otherwise accumulate them).
    # A concurrently writing duplicate may lose its scratch here; its rename then
    # fails and the ordinary retry path covers it.
    for stale in shard_dir.glob("*.tmp"):
        try:
            stale.unlink()
        except OSError:
            pass
    run_config = config.shard_run_config(shard, checkpoint_path=str(shard_dir / "checkpoint.json"))
    runner = SearchRunner(run_config, graph=graph)

    started = time.perf_counter()
    search_result = runner.search(
        on_step=lambda state: _maybe_inject_kill(shard.shard_id, shard_dir, state.steps_completed)
    )
    payload: Dict[str, object] = {
        "format_version": SWEEP_FORMAT_VERSION,
        "shard": shard.to_jsonable(),
        "attempt": int(attempt),
        "search": search_result_to_jsonable(search_result),
        "training": None,
        "metrics": None,
        "artifact": None,
    }
    if config.train_final:
        model, training = runner.train(search_result)
        metrics = runner.evaluate(model)
        payload["training"] = {
            "epochs_run": int(training.epochs_run),
            "best_valid_mrr": float(training.best_valid_mrr),
        }
        payload["metrics"] = metrics.as_row()
        if config.registry_root:
            ref = runner.publish(model, search_result, metrics)
            payload["artifact"] = f"{ref.name}/v{ref.version}"
    payload["timing"] = {"wall_seconds": round(time.perf_counter() - started, 4)}

    path = shard_dir / "result.json"
    # PID-suffixed scratch: duplicate executions of a shard (stall-path requeues) may
    # write concurrently, and a shared scratch name would let one rename promote the
    # other's half-written file.  Distinct scratches + atomic rename = last writer
    # wins with identical deterministic content.
    scratch = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    save_json(payload, scratch)
    scratch.replace(path)
    # Return the re-parsed file, not the in-memory payload: aggregation must see the
    # identical representation (tuples as lists, JSON float round-trip) whether the
    # shard ran in-process, in a pool worker, or in an earlier resumed invocation.
    return load_json(path)


def _pool_worker(worker_id, tasks, events, config_payload, sweep_dir, graph_handles=None) -> None:
    """Worker-process loop: steal pending shards off the shared queue until sentinel.

    Crash semantics are the point: this function posts ``claimed`` *before* executing
    a shard, so if the process dies mid-shard the orchestrator knows exactly which
    shard to requeue.  A Python-level exception is not a crash -- it is reported as a
    ``failed`` event (the orchestrator applies the same retry budget it uses for
    crashes) and the worker keeps serving shards.

    ``graph_handles`` maps dataset name to the orchestrator's
    :class:`~repro.runtime.shm.SharedGraphPayload`; each resolves (once per worker,
    memoised per digest) to a zero-copy view of the parent's published graph, so the
    worker never regenerates a dataset regardless of how many shards it executes.
    """
    config = sweep_config_from_jsonable(config_payload)
    graph_handles = graph_handles or {}
    while True:
        task = tasks.get()
        if task is None:
            events.put({"kind": "exit", "worker": worker_id})
            return
        shard = ShardSpec.from_jsonable(task["shard"])
        events.put({"kind": "claimed", "worker": worker_id, "shard": shard.shard_id})
        try:
            handle = graph_handles.get(shard.dataset)
            graph = handle.resolve() if handle is not None else None
            run_shard(config, shard, sweep_dir, attempt=task["attempt"], graph=graph)
        except Exception as error:  # noqa: BLE001 -- a shard failure must not kill the pool
            events.put(
                {
                    "kind": "failed",
                    "worker": worker_id,
                    "shard": shard.shard_id,
                    "error": f"{type(error).__name__}: {error}",
                }
            )
        else:
            events.put({"kind": "done", "worker": worker_id, "shard": shard.shard_id})


# ---------------------------------------------------------------------------- orchestrator
class SweepOrchestrator:
    """Expands a :class:`SweepConfig` grid into shards and runs them fault-tolerantly."""

    def __init__(self, config: SweepConfig, sweep_dir: PathLike) -> None:
        self.config = config
        self.sweep_dir = Path(sweep_dir)
        self.shards = config.expand_shards()

    # ------------------------------------------------------------------ manifest
    @property
    def manifest_path(self) -> Path:
        """Location of the sweep manifest (``sweep.json``)."""
        return self.sweep_dir / "sweep.json"

    @classmethod
    def from_directory(cls, sweep_dir: PathLike) -> "SweepOrchestrator":
        """Rebuild an orchestrator from an existing sweep directory's manifest.

        This is what ``python -m repro sweep --resume <sweep-dir>`` uses: the grid
        and every shared knob come from the manifest, so a resumed sweep can never
        silently run under different settings.
        """
        manifest_path = Path(sweep_dir) / "sweep.json"
        if not manifest_path.is_file():
            raise SweepError(f"no sweep manifest at {manifest_path}; is this a sweep directory?")
        manifest = load_json(manifest_path)
        declared = manifest.get("format_version")
        if declared != SWEEP_FORMAT_VERSION:
            raise SweepError(
                f"unsupported sweep format version {declared!r} "
                f"(this library reads version {SWEEP_FORMAT_VERSION})"
            )
        return cls(sweep_config_from_jsonable(manifest["config"]), sweep_dir)

    def _write_manifest(self) -> None:
        self.sweep_dir.mkdir(parents=True, exist_ok=True)
        save_json(
            {
                "format_version": SWEEP_FORMAT_VERSION,
                "config": sweep_config_to_jsonable(self.config),
                "shards": [shard.to_jsonable() for shard in self.shards],
            },
            self.manifest_path,
        )

    def _check_manifest(self, resume: bool) -> None:
        if not self.manifest_path.exists():
            if resume:
                raise SweepError(
                    f"cannot resume: no sweep manifest at {self.manifest_path} -- "
                    "check the directory path (a fresh sweep would recompute every shard)"
                )
            self._write_manifest()
            return
        manifest = load_json(self.manifest_path)
        if manifest.get("config") != sweep_config_to_jsonable(self.config):
            raise SweepError(
                f"sweep directory {self.sweep_dir} was initialised with a different "
                "configuration; resume with the original settings or use a fresh directory"
            )
        if not resume:
            raise SweepError(
                f"sweep directory {self.sweep_dir} already holds a sweep; pass resume=True "
                "(CLI: --resume) to continue it, or use a fresh directory"
            )

    # ------------------------------------------------------------------ shard bookkeeping
    def _shard_dir(self, shard: ShardSpec) -> Path:
        return self.sweep_dir / "shards" / shard.shard_id

    def _load_completed(self) -> Dict[str, Dict[str, object]]:
        """Results of shards that already finished (used to resume and to aggregate)."""
        completed: Dict[str, Dict[str, object]] = {}
        for shard in self.shards:
            path = self._shard_dir(shard) / "result.json"
            if not path.is_file():
                continue
            try:
                payload = load_json(path)
            except ValueError:
                logger.warning("discarding unreadable shard result %s", path)
                path.unlink()
                continue
            if payload.get("shard", {}).get("id") == shard.shard_id:
                completed[shard.shard_id] = payload
        return completed

    # ------------------------------------------------------------------ run
    def run(self, resume: bool = False) -> SweepReport:
        """Run every pending shard, aggregate, and write ``report.json``/``report.md``.

        ``resume=False`` requires a fresh (or config-identical, never-started) sweep
        directory; ``resume=True`` skips shards with a finished ``result.json`` and
        resumes partial shards from their checkpoints.  Either way the aggregated
        deterministic payload is the same as an uninterrupted run's.
        """
        self._check_manifest(resume)
        results = self._load_completed() if resume else {}
        pending = [shard for shard in self.shards if shard.shard_id not in results]
        failures: Dict[str, str] = {}

        if pending:
            workers = self.config.max_workers
            if workers == 0:
                workers = max(1, os.cpu_count() or 1)
            if workers <= 1 or len(pending) == 1:
                self._run_serial(pending, results, failures)
            else:
                self._run_pool(pending, results, failures, workers)

        payload = aggregate_shards(self.config, results, failures)
        report_path = save_json(payload, self.sweep_dir / "report.json")
        markdown_path = self.sweep_dir / "report.md"
        markdown_path.write_text(render_report_markdown(payload), encoding="utf-8")
        report = SweepReport(
            payload=payload,
            path=report_path,
            markdown_path=markdown_path,
            failed=tuple(sorted(failures)),
        )
        if failures:
            logger.warning("sweep finished with failed shards: %s", ", ".join(report.failed))
        return report

    def _run_serial(
        self,
        pending: Sequence[ShardSpec],
        results: Dict[str, Dict[str, object]],
        failures: Dict[str, str],
    ) -> None:
        """In-process execution (``max_workers=1``): same shards, same artifacts.

        Python-level shard failures are retried in place (each retry resumes from the
        shard checkpoint, like a requeue would); a hard crash kills the sweep process
        itself, which the ``resume`` path then recovers.  Failure records use the
        exact format of the pool path, so a deterministically failing sweep produces
        the same report for any ``max_workers``.
        """
        for shard in pending:
            error_text: Optional[str] = None
            for attempt in range(1, self.config.max_shard_retries + 2):
                try:
                    results[shard.shard_id] = run_shard(
                        self.config, shard, self.sweep_dir, attempt=attempt
                    )
                    error_text = None
                    break
                except Exception as error:  # noqa: BLE001 -- isolate shard failures
                    error_text = f"shard failed: {type(error).__name__}: {error}"
                    logger.warning("shard %s attempt %d failed: %s", shard.shard_id, attempt, error)
            if error_text is not None:
                failures[shard.shard_id] = (
                    f"{error_text}; the shard exhausted its "
                    f"{self.config.max_shard_retries} retry/retries"
                )

    def _run_pool(
        self,
        pending: Sequence[ShardSpec],
        results: Dict[str, Dict[str, object]],
        failures: Dict[str, str],
        max_workers: int,
    ) -> None:
        """Bounded worker pool with work-stealing dispatch and crash requeue."""
        import multiprocessing

        from repro.datasets import resolve_dataset
        from repro.runtime import shm

        # ``fork`` keeps parent-process state (dataset memos, third-party searcher
        # registrations) visible to the workers for free; fall back to the platform
        # default where fork does not exist.
        method = "fork" if "fork" in multiprocessing.get_all_start_methods() else None
        context = multiprocessing.get_context(method)
        tasks = context.Queue()
        events = context.Queue()
        config_payload = sweep_config_to_jsonable(self.config)

        # Publish every dataset of the pending grid into shared memory once; the
        # workers get the picklable handles and attach zero-copy views (including the
        # pre-built CSR filter index), so a respawned worker warms up by attaching
        # instead of regenerating.  Tokens this call newly published are unlinked when
        # the pool drains; a SIGKILLed orchestrator leaves the cleanup to its resource
        # tracker.
        graph_handles = {}
        published_tokens: List[str] = []
        if shm.HAVE_SHARED_MEMORY:
            for dataset in dict.fromkeys(shard.dataset for shard in pending):
                graph = resolve_dataset(dataset, scale=self.config.scale, seed=self.config.data_seed)
                already_owned = shm.graph_digest(graph) in shm.owned_tokens()
                payload = shm.publish_graph(graph)
                graph_handles[dataset] = payload
                if not already_owned:
                    published_tokens.append(payload.token)

        attempts: Dict[str, int] = {}
        spec_by_id = {shard.shard_id: shard for shard in pending}
        for shard in pending:
            attempts[shard.shard_id] = 1
            tasks.put({"shard": shard.to_jsonable(), "attempt": 1})

        workers: Dict[int, multiprocessing.Process] = {}
        in_flight: Dict[int, str] = {}
        next_worker_id = 0
        # A hard ceiling on respawns: enough for every shard to use every retry plus a
        # replacement per pool slot.  Beyond it the pool is crash-looping (e.g. the
        # environment kills every worker), and raising beats spawning forever.
        spawn_limit = 2 * max_workers + len(pending) * (self.config.max_shard_retries + 1) + 4

        def spawn_worker() -> None:
            nonlocal next_worker_id
            if next_worker_id >= spawn_limit:
                raise SweepError(
                    f"worker pool is crash-looping: spawned {next_worker_id} workers for "
                    f"{len(pending)} shards; check the host for OOM kills or resource limits"
                )
            worker = context.Process(
                target=_pool_worker,
                args=(next_worker_id, tasks, events, config_payload, str(self.sweep_dir), graph_handles),
                daemon=True,
            )
            worker.start()
            workers[next_worker_id] = worker
            next_worker_id += 1

        for _ in range(min(max_workers, len(pending))):
            spawn_worker()

        outstanding = len(pending)

        def retry_or_fail(shard_id: str, error: str) -> None:
            """Shared retry policy for crashes AND Python-level shard failures, so
            ``--max-workers`` can never change how many attempts a shard gets (serial
            mode applies the identical ``max_shard_retries + 1`` attempt budget)."""
            nonlocal outstanding
            if shard_id in results or shard_id in failures:
                return  # a duplicate execution of an already-counted shard
            if attempts[shard_id] > self.config.max_shard_retries:
                failures[shard_id] = (
                    f"{error}; the shard exhausted its "
                    f"{self.config.max_shard_retries} retry/retries"
                )
                outstanding -= 1
                return
            attempts[shard_id] += 1
            logger.warning("%s; requeueing shard %s (attempt %d)", error, shard_id, attempts[shard_id])
            tasks.put({"shard": spec_by_id[shard_id].to_jsonable(), "attempt": attempts[shard_id]})

        stalled_timeouts = 0
        while outstanding > 0:
            try:
                event = events.get(timeout=0.2)
            except queue_module.Empty:
                stalled_timeouts += 1
                for worker_id, worker in list(workers.items()):
                    if worker.is_alive():
                        continue
                    worker.join()
                    del workers[worker_id]
                    crashed_shard = in_flight.pop(worker_id, None)
                    if crashed_shard is not None:
                        retry_or_fail(crashed_shard, f"worker crashed (exit code {worker.exitcode})")
                    if outstanding > 0 and len(workers) < min(max_workers, outstanding):
                        spawn_worker()
                if not workers and outstanding > 0:
                    spawn_worker()
                # Lost-task reconciliation: a worker killed between stealing a task
                # and flushing its 'claimed' event (the put happens on a feeder
                # thread) leaves a shard that is neither in flight nor queued.  The
                # orchestrator cannot tell lost from queued-but-unclaimed, so after
                # a long stall with nothing in flight it requeues every unaccounted
                # shard.  Duplicates this creates are harmless -- shards are
                # deterministic, every write uses a private PID-suffixed scratch
                # before its atomic rename, and completion is deduplicated below --
                # they only cost redundant compute in this already-pathological case.
                if stalled_timeouts >= 50 and not in_flight:
                    for shard in pending:
                        sid = shard.shard_id
                        if sid not in results and sid not in failures:
                            logger.warning("requeueing unaccounted shard %s after stall", sid)
                            tasks.put({"shard": shard.to_jsonable(), "attempt": attempts[sid]})
                    stalled_timeouts = 0
                continue

            stalled_timeouts = 0
            kind = event["kind"]
            shard_id = event.get("shard")
            already_counted = shard_id in results or shard_id in failures
            if kind == "claimed":
                in_flight[event["worker"]] = shard_id
            elif kind == "done":
                in_flight.pop(event["worker"], None)
                if not already_counted:
                    path = self._shard_dir(spec_by_id[shard_id]) / "result.json"
                    results[shard_id] = load_json(path)
                    outstanding -= 1
            elif kind == "failed":
                in_flight.pop(event["worker"], None)
                retry_or_fail(shard_id, f"shard failed: {event['error']}")

        # Scoop any leftover duplicate tasks (stall-path requeues of shards that
        # finished anyway) so idle workers see the sentinels, not redundant work.
        while True:
            try:
                tasks.get_nowait()
            except queue_module.Empty:
                break
        for _ in workers:
            tasks.put(None)
        for worker in workers.values():
            worker.join(timeout=10.0)
            if worker.is_alive():
                worker.terminate()
                worker.join()
        tasks.close()
        events.close()
        # The workers are gone; unlink the graph segments this sweep published.  (If
        # the sweep aborts before this point the atexit hook of repro.runtime.shm
        # unlinks them at interpreter exit instead.)
        for token in published_tokens:
            shm.unpublish(token)
