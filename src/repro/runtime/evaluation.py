"""Parallel candidate evaluation: the :class:`EvaluationPool` and its workers.

Every searcher in :mod:`repro.search` spends almost all of its wall clock scoring
candidates -- one-shot validation MRR with the shared supernet embeddings (ERAS's
derive phase) or full stand-alone training runs (AutoSF, random and Bayes search).
Those evaluations are *pure functions* of their inputs, which makes them safe to

1. **cache** -- a structure-keyed :class:`EvalCache` guarantees a candidate sampled
   twice (the controller resamples converged structures constantly; the anchor pass
   revisits classic combinations) is never scored twice, and
2. **parallelise** -- an :class:`EvaluationPool` fans the cache misses out over
   ``multiprocessing`` workers, with a deterministic in-process fallback when
   ``n_workers=1``.

Because both paths run the *same* module-level worker function on the *same* payload,
``n_workers=1`` and ``n_workers=N`` produce bit-identical scores, so the winning
candidate of a search does not depend on the degree of parallelism (enforced by
``tests/test_runtime.py``).

Worker functions must be module-level (picklable by reference) and take
``(shared, payload)``: per-candidate ``payload`` objects travel through the task queue
and should stay small (structure entry matrices, seeds), while ``shared`` is
*installed* into each worker of the process-wide warm pool
(:mod:`repro.runtime.pool`) at most once per ``payload_key``.  The payload builders
here keep the expensive parts -- embedding state, validation split, the whole graph
with its CSR filter index -- out of the shared dict entirely, publishing them into
shared-memory segments (:mod:`repro.runtime.shm`) so the installed dict is a few
hundred bytes of handle and the arrays cross process boundaries zero-copy.  The
in-process fallback reads the very same shared dict: the publisher's
:func:`~repro.runtime.shm.attach_arrays` short-circuits to its own views, so both
paths literally score the same bytes.
"""

from __future__ import annotations

import dataclasses
import hashlib
import multiprocessing
import os
import secrets
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.kg.graph import KnowledgeGraph
from repro.models.kge import KGEModel
from repro.models.trainer import Trainer, TrainerConfig
from repro.scoring.structure import BlockStructure
from repro.search.result import Candidate
from repro.search.supernet import SharedEmbeddingSupernet, one_shot_mrr

from repro.runtime import shm
from repro.runtime.pool import get_warm_pool

_MISS = object()


class EvalCache:
    """Structure-keyed memo of candidate scores with hit/miss accounting.

    Keys are arbitrary hashable tuples; by convention the first element is a tag naming
    the evaluation kind (``"one-shot"``, ``"stand-alone"``) and the last is the
    candidate's :meth:`~repro.search.result.Candidate.signature`, so scores obtained
    under different model states, datasets or budgets never collide.
    """

    def __init__(self, max_size: Optional[int] = None) -> None:
        if max_size is not None and max_size < 1:
            raise ValueError("max_size must be positive (or None for unbounded)")
        self.max_size = max_size
        self._store: Dict[Hashable, float] = {}
        self.hits = 0
        self.misses = 0

    def get(self, key: Hashable) -> Optional[float]:
        """Cached score for ``key`` or ``None``; updates the hit/miss counters."""
        value = self._store.get(key, _MISS)
        if value is _MISS:
            self.misses += 1
            return None
        self.hits += 1
        return value

    def put(self, key: Hashable, value: float) -> None:
        """Store a score, evicting the oldest entry when ``max_size`` is exceeded."""
        if self.max_size is not None and key not in self._store and len(self._store) >= self.max_size:
            self._store.pop(next(iter(self._store)))
        self._store[key] = value

    def __contains__(self, key: Hashable) -> bool:
        return key in self._store

    def __len__(self) -> int:
        return len(self._store)

    @property
    def hit_rate(self) -> float:
        """Fraction of :meth:`get` calls that were hits (0.0 when never queried)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        self._store.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> Dict[str, object]:
        """Counters as a row for logs and benchmark tables."""
        return {
            "entries": len(self._store),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
        }

    def __repr__(self) -> str:
        return f"EvalCache(entries={len(self._store)}, hits={self.hits}, misses={self.misses})"


# ---------------------------------------------------------------------------- pool
def default_workers() -> int:
    """Worker count used when a caller asks for "all cores" (``workers=0``)."""
    return max(1, os.cpu_count() or 1)


def _payload_key(fn: Callable, shared: object) -> str:
    """Install key of a ``(fn, shared)`` pair in the warm pool.

    Payload dicts built by :func:`one_shot_shared_payload` /
    :func:`standalone_shared_payload` carry an explicit ``payload_key``, which is what
    makes install-once-per-graph-digest work: every map call (and every searcher in a
    warm process) with the same key reuses the copy already sitting in the workers.
    Anonymous shared objects get a fresh key per call -- they are installed each time,
    exactly the old per-map cost, so ad-hoc callers lose nothing.
    """
    name = f"{fn.__module__}.{fn.__qualname__}"
    if isinstance(shared, dict) and "payload_key" in shared:
        return f"{name}|{shared['payload_key']}"
    if shared is None:
        return f"{name}|none"
    return f"{name}|anon-{secrets.token_hex(8)}"


class EvaluationPool:
    """Fans candidate evaluations out over processes, deduplicated through a cache.

    ``n_workers=1`` (the default) evaluates in-process in submission order;
    ``n_workers>1`` routes through the process-wide persistent
    :class:`~repro.runtime.pool.WarmPool` for this worker count.  Results always come
    back in submission order, and both paths execute the identical worker function,
    so parallelism never changes a search outcome.

    The warm pool spawns its workers on the first parallel map and keeps them across
    map calls, searches and sweep shards; the shared payload reaches each worker at
    most once per ``payload_key`` (for the shm-backed payloads built in this module,
    that message is a handful of segment names).  Per map call the parallel path
    therefore pays queue traffic only -- no fork, no payload pickling -- which is what
    turned the committed ``parallel_speedup`` baselines from < 1 into a win.
    """

    def __init__(
        self,
        n_workers: int = 1,
        cache: Optional[EvalCache] = None,
        start_method: Optional[str] = None,
    ) -> None:
        if n_workers == 0:
            n_workers = default_workers()
        if n_workers < 1:
            raise ValueError(f"n_workers must be positive (or 0 for all cores), got {n_workers}")
        self.n_workers = n_workers
        self.cache = cache
        # ``fork`` makes worker spawns (and any non-shm payload parts) free to
        # transfer on POSIX; fall back to the platform default where unavailable.
        if start_method is None:
            start_method = "fork" if "fork" in multiprocessing.get_all_start_methods() else None
        self._start_method = start_method

    # ------------------------------------------------------------------ public API
    def map(
        self,
        fn: Callable[[object, object], float],
        payloads: Sequence[object],
        shared: object = None,
        keys: Optional[Sequence[Hashable]] = None,
        cache: Optional[EvalCache] = None,
    ) -> List[float]:
        """Evaluate ``fn(shared, payload)`` for every payload; results in input order.

        ``keys`` (parallel to ``payloads``) enables caching: hits are served from
        ``cache`` (defaulting to the pool's own cache), duplicate keys within one call
        are evaluated once, and fresh scores are written back.  Without keys every
        payload is evaluated.
        """
        if keys is not None and len(keys) != len(payloads):
            raise ValueError(f"got {len(keys)} keys for {len(payloads)} payloads")
        cache = cache if cache is not None else self.cache

        results: List[Optional[float]] = [None] * len(payloads)
        job_for_key: Dict[Hashable, int] = {}
        jobs: List[Tuple[int, object]] = []  # (payload index, payload) of unique misses
        followers: List[Tuple[int, int]] = []  # (result index, job index) of duplicates
        for index, payload in enumerate(payloads):
            key = keys[index] if keys is not None else None
            if key is not None:
                # Duplicates within one call ride along with the first occurrence's
                # job *before* the cache lookup, so each unique key counts exactly
                # one miss -- callers report cache.misses as their evaluation count.
                if key in job_for_key:
                    followers.append((index, job_for_key[key]))
                    continue
                if cache is not None:
                    hit = cache.get(key)
                    if hit is not None:
                        results[index] = hit
                        continue
                job_for_key[key] = len(jobs)
            jobs.append((index, payload))

        values = self._evaluate([payload for _, payload in jobs], fn, shared)
        for (index, _), value in zip(jobs, values):
            results[index] = value
        for index, job_index in followers:
            results[index] = values[job_index]
        if cache is not None and keys is not None:
            for key, job_index in job_for_key.items():
                cache.put(key, values[job_index])
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------ internals
    def _evaluate(self, payloads: List[object], fn: Callable, shared: object) -> List[float]:
        if not payloads:
            return []
        if self.n_workers == 1 or len(payloads) == 1:
            return [fn(shared, payload) for payload in payloads]
        warm = get_warm_pool(self.n_workers, start_method=self._start_method)
        return warm.run(_payload_key(fn, shared), fn, shared, payloads)

    def __repr__(self) -> str:
        return f"EvaluationPool(n_workers={self.n_workers}, cache={self.cache!r})"


# ---------------------------------------------------------------------------- workers
def graph_fingerprint(graph: KnowledgeGraph) -> Tuple:
    """Process-local identity of a graph's contents, for stand-alone cache keys.

    ``graph.name`` alone is ambiguous -- the same benchmark loaded at two scales or
    data seeds keeps its name -- so keys carry the shape plus a content hash of the
    training split.  ``hash`` over bytes is salted per process, which is fine: an
    :class:`EvalCache` lives and dies inside one process.
    """
    train = np.ascontiguousarray(graph.train.array)
    return (graph.name, graph.num_entities, graph.num_relations, len(train), hash(train.tobytes()))


def candidate_payload(candidate: Candidate) -> Dict[str, object]:
    """Per-candidate job payload: just the signed entry matrices (small to pickle)."""
    return {"structures": [structure.entries for structure in candidate.structures]}


def _structures_from_payload(payload: Dict[str, object]) -> List[BlockStructure]:
    return [BlockStructure(np.asarray(entries, dtype=np.int64)) for entries in payload["structures"]]


#: Tokens of the one-shot bundles this process has published and not yet released;
#: :func:`release_one_shot_model` unlinks them.
_ONE_SHOT_TOKENS: Set[str] = set()


def one_shot_shared_payload(supernet: SharedEmbeddingSupernet) -> Dict[str, object]:
    """Everything a worker needs to rebuild the supernet's model, installed once.

    The heavy parts -- the full embedding state and the validation split -- go into a
    shared-memory bundle; the returned dict carries the picklable handle plus scalars,
    so installing it into a warm worker costs a few hundred bytes no matter the
    embedding dimension.  Each call publishes a fresh bundle (the supernet moves every
    epoch); :func:`release_one_shot_model` unlinks the published segments.
    """
    state = supernet.model.state_dict()
    arrays: Dict[str, np.ndarray] = {f"state::{key}": value for key, value in state.items()}
    arrays["valid"] = np.asarray(supernet.graph.valid.array)
    handle = shm.publish_arrays(arrays)
    _ONE_SHOT_TOKENS.add(handle.token)
    return {
        "num_entities": supernet.graph.num_entities,
        "num_relations": supernet.graph.num_relations,
        "dim": supernet.config.dim,
        "assignment": supernet.assignment.copy(),
        "state_keys": sorted(state),
        "handle": handle,
        "payload_key": handle.token,
    }


def _one_shot_arrays(shared: Dict[str, object]) -> Tuple[Dict[str, np.ndarray], np.ndarray]:
    """The ``(state_dict, valid_triples)`` arrays behind a one-shot shared payload.

    Resolves the shm handle of the payload builder above (zero-copy views; the
    publisher short-circuits to its own views), and still accepts the pre-shm dict
    shape (inline ``state`` / ``valid``) so hand-built payloads keep working.
    """
    if "handle" in shared:
        views = shm.attach_arrays(shared["handle"])
        return {key: views[f"state::{key}"] for key in shared["state_keys"]}, views["valid"]
    return shared["state"], np.asarray(shared["valid"], dtype=np.int64)


# Reconstructed model of the most recent one-shot shared payload.  The payload object
# is identical for every job of one ``map`` call (and, in workers, for a worker's whole
# lifetime), so rebuilding the embedding tables once and swapping scorers per candidate
# mirrors the supernet's own cheap ``set_scorers`` path.  Keyed by identity; holding the
# payload itself keeps the key alive, so an ``is`` match can never be a recycled object.
_ONE_SHOT_MODEL: Tuple[Optional[Dict[str, object]], Optional[KGEModel], Optional[np.ndarray]] = (
    None,
    None,
    None,
)


def _one_shot_model(shared: Dict[str, object]) -> Tuple[KGEModel, np.ndarray]:
    global _ONE_SHOT_MODEL
    if _ONE_SHOT_MODEL[0] is shared:
        return _ONE_SHOT_MODEL[1], _ONE_SHOT_MODEL[2]
    previous = _ONE_SHOT_MODEL[0]
    if previous is not None and "handle" in previous:
        shm.release_arrays(previous["handle"])  # drop this process's attachment refcount
    state, valid = _one_shot_arrays(shared)
    model = KGEModel(
        num_entities=int(shared["num_entities"]),
        num_relations=int(shared["num_relations"]),
        dim=int(shared["dim"]),
        scorers=[BlockStructure.diagonal(4)],
        assignment=np.zeros(int(shared["num_relations"]), dtype=np.int64),
        seed=0,
    )
    model.load_state_dict(state)
    valid = np.asarray(valid, dtype=np.int64)
    _ONE_SHOT_MODEL = (shared, model, valid)
    return model, valid


def release_one_shot_model() -> None:
    """Drop the memoised one-shot model and unlink the published payload segments.

    Call when a derive phase is done: with ``n_workers=1`` the memo lives in the
    calling process and would otherwise pin a full embedding table plus the validation
    split until the next search overwrites it; the publisher additionally unlinks the
    shared-memory bundles it created for the phase.
    """
    global _ONE_SHOT_MODEL
    previous = _ONE_SHOT_MODEL[0]
    if previous is not None and "handle" in previous:
        shm.release_arrays(previous["handle"])
    _ONE_SHOT_MODEL = (None, None, None)
    for token in sorted(_ONE_SHOT_TOKENS):
        shm.unpublish(token)
    _ONE_SHOT_TOKENS.clear()


def score_candidate_one_shot(shared: Dict[str, object], payload: Dict[str, object]) -> float:
    """One-shot validation MRR of a candidate under the shared supernet embeddings.

    Reconstructs the supernet's :class:`~repro.models.kge.KGEModel` from the shared
    payload (once per payload, see :func:`_one_shot_model`), installs the candidate's
    structures and scores the full validation split -- the exact computation of
    :meth:`~repro.search.supernet.SharedEmbeddingSupernet.one_shot_validation_mrr`.
    """
    model, valid = _one_shot_model(shared)
    model.set_scorers(
        _structures_from_payload(payload), assignment=np.asarray(shared["assignment"], dtype=np.int64)
    )
    return one_shot_mrr(model, valid)


def standalone_shared_payload(
    graph: KnowledgeGraph, trainer: TrainerConfig, dim: int
) -> Dict[str, object]:
    """Shared payload of the stand-alone trainers (AutoSF / random / Bayes search).

    The graph travels as a :class:`~repro.runtime.shm.SharedGraphPayload` published
    once per content digest -- every searcher, map call and in-process sweep shard on
    the same dataset reuses the same segments, and the ``payload_key`` (digest plus a
    hash of the training budget) lets warm workers keep their resolved graph across
    all of them.
    """
    payload: Dict[str, object] = {"trainer": trainer, "dim": int(dim)}
    if shm.HAVE_SHARED_MEMORY:
        graph_payload = shm.publish_graph(graph)
        budget = hashlib.sha256(
            repr((dataclasses.astuple(trainer), int(dim))).encode()
        ).hexdigest()[:8]
        payload["graph_payload"] = graph_payload
        payload["payload_key"] = f"standalone-{graph_payload.token}-{budget}"
    else:  # pragma: no cover - platforms without shared memory
        payload["graph"] = graph
    return payload


def standalone_cache_key(
    fingerprint: Tuple, trainer: TrainerConfig, dim: int, seed: int, structure: BlockStructure
) -> Tuple:
    """Cache key of one stand-alone training evaluation.

    Defined once so every searcher shares the same scheme: graph content
    (:func:`graph_fingerprint`), the full training budget (a different
    :class:`~repro.models.trainer.TrainerConfig` must never be served a cached MRR),
    embedding dimension, the model-initialisation seed and the structure itself.
    """
    return ("stand-alone", fingerprint, int(dim), int(seed), dataclasses.astuple(trainer), structure.signature())


def train_candidate_standalone(shared: Dict[str, object], payload: Dict[str, object]) -> float:
    """Best validation MRR of one candidate trained from scratch (Algorithm 1, step 5).

    The payload's ``seed`` controls the model initialisation, so a searcher that seeds
    each candidate differently (random search) stays bit-identical across worker counts.
    """
    graph = shared["graph"] if "graph" in shared else shared["graph_payload"].resolve()
    structures = _structures_from_payload(payload)
    assignment = payload.get("assignment")
    model = KGEModel(
        num_entities=graph.num_entities,
        num_relations=graph.num_relations,
        dim=int(shared["dim"]),
        scorers=structures,
        assignment=None if assignment is None else np.asarray(assignment, dtype=np.int64),
        seed=int(payload["seed"]),
    )
    result = Trainer(shared["trainer"]).fit(model, graph)
    return float(result.best_valid_mrr)
