"""Runtime layer: parallel candidate evaluation, run orchestration and the CLI.

This package is the chassis around the reproduction's library code:

- :mod:`repro.runtime.evaluation` -- the :class:`EvaluationPool` that fans candidate
  evaluations out over ``multiprocessing`` workers (deterministic in-process fallback
  for ``n_workers=1``) behind a structure-keyed :class:`EvalCache`, used by every
  searcher in :mod:`repro.search`.
- :mod:`repro.runtime.shm` -- zero-copy payload transport: big read-only arrays
  (triples, embedding state, CSR filter-index buffers) published once per content
  digest into named shared-memory segments with refcounted attach/release.
- :mod:`repro.runtime.pool` -- the persistent :class:`~repro.runtime.pool.WarmPool`
  behind parallel maps: workers that survive across map calls and searches, payloads
  installed once per key, batched dispatch, crash detection with respawn.
- :mod:`repro.runtime.checkpoint` -- protocol-level JSON checkpoint/resume of any
  registered searcher's state between steps, plus search-result round-tripping.
- :mod:`repro.runtime.runner` -- :class:`RunConfig` / :class:`SearchRunner`, the
  facade owning dataset loading, the budgeted stepwise search driver, final
  re-training, evaluation and publishing into the serving registry.
- :mod:`repro.runtime.orchestrator` -- :class:`SweepConfig` / :class:`SweepOrchestrator`,
  the sharded multi-run layer: a (searcher x seed x dataset x budget) grid executed on
  a fault-tolerant work-stealing worker pool with per-shard checkpoint/resume and an
  aggregated fair-comparison report.
- :mod:`repro.runtime.profiling` -- timing workloads shared by the benchmark harness
  and ``python -m repro bench``.
- :mod:`repro.runtime.cli` -- the argparse layer behind ``python -m repro``.

It sits *above* every other package (search, models, datasets, serve, bench); nothing
below imports it at module level.
"""

from repro.runtime.evaluation import (
    EvalCache,
    EvaluationPool,
    score_candidate_one_shot,
    train_candidate_standalone,
)
from repro.runtime.pool import WarmPool, WarmPoolError, get_warm_pool, shutdown_warm_pools
from repro.runtime.checkpoint import (
    CheckpointError,
    load_search_checkpoint,
    load_search_result,
    save_search_checkpoint,
    save_search_result,
)
from repro.runtime.runner import RunConfig, RunReport, SearchRunner
from repro.runtime.orchestrator import (
    ShardSpec,
    SweepConfig,
    SweepError,
    SweepOrchestrator,
    SweepReport,
    strip_timing,
)

__all__ = [
    "EvalCache",
    "EvaluationPool",
    "score_candidate_one_shot",
    "train_candidate_standalone",
    "WarmPool",
    "WarmPoolError",
    "get_warm_pool",
    "shutdown_warm_pools",
    "CheckpointError",
    "save_search_checkpoint",
    "load_search_checkpoint",
    "save_search_result",
    "load_search_result",
    "RunConfig",
    "RunReport",
    "SearchRunner",
    "ShardSpec",
    "SweepConfig",
    "SweepError",
    "SweepOrchestrator",
    "SweepReport",
    "strip_timing",
]
