"""Compact binary cache for TSV dataset directories.

Parsing the three TSV split files is the slow part of loading a real dataset: every
line is split, interned into the vocabulary and encoded one triple at a time.  The
cache does that work once and persists the result *next to the data* in
``<dataset>/.repro-cache/``:

- ``train.npy`` / ``valid.npy`` / ``test.npy`` -- the encoded splits as compact
  ``int32`` ``(n, 3)`` arrays (half the footprint of the in-memory ``int64`` triples);
- ``vocab.json`` -- entity and relation symbols in id order, so vocabularies
  round-trip exactly;
- ``meta.json`` -- a :class:`DatasetCacheMeta` record whose ``digest`` is a sha256
  over the raw split files.  Any edit to any split file changes the digest and the
  cache is rebuilt transparently; a stale or corrupt cache is never served.

Cached loads memory-map the ``.npy`` arrays (``np.load(mmap_mode="r")``): pages
stream from the OS page cache on first touch instead of being parsed, and the only
resident copy made is the widening to the ``int64`` triples the in-memory containers
require.  Cache writes are atomic (scratch directory + rename) and degrade to a
warning on read-only dataset directories -- the TSV parse still succeeds, it is just
not accelerated.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import shutil
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Optional

import numpy as np

from repro.kg.graph import KnowledgeGraph
from repro.kg.io import PathLike, is_dataset_directory, load_tsv_dataset, split_files
from repro.kg.triples import TripleSet
from repro.kg.vocab import Vocabulary

logger = logging.getLogger(__name__)

CACHE_DIRNAME = ".repro-cache"
CACHE_FORMAT_VERSION = 1

_SPLITS = ("train", "valid", "test")


@dataclass(frozen=True)
class DatasetCacheMeta:
    """The ``meta.json`` record validating one binary dataset cache.

    ``format_version`` is the on-disk layout revision (caches written by other
    revisions are rebuilt); ``digest`` is the sha256 content digest of the three TSV
    split files the cache was built from (any edit invalidates it); ``name`` is the
    dataset name stored on the graph; ``num_entities`` / ``num_relations`` are the
    vocabulary sizes; ``num_train`` / ``num_valid`` / ``num_test`` are the split
    triple counts used to sanity-check the cached arrays.
    """

    format_version: int
    digest: str
    name: str
    num_entities: int
    num_relations: int
    num_train: int
    num_valid: int
    num_test: int


def dataset_digest(directory: PathLike) -> str:
    """A sha256 digest over the raw bytes of the three split files (order-sensitive)."""
    outer = hashlib.sha256()
    for path in split_files(directory):
        outer.update(path.name.encode("utf-8"))
        inner = hashlib.sha256()
        with path.open("rb") as fh:
            for block in iter(lambda: fh.read(1 << 20), b""):
                inner.update(block)
        outer.update(inner.digest())
    return outer.hexdigest()


def cache_path(directory: PathLike) -> Path:
    """Where the binary cache of a dataset directory lives."""
    return Path(directory) / CACHE_DIRNAME


def write_dataset_cache(directory: PathLike, graph: KnowledgeGraph, digest: Optional[str] = None) -> Optional[Path]:
    """Persist ``graph`` as the binary cache of ``directory`` (atomic; best-effort).

    Returns the cache directory, or ``None`` when the filesystem refuses (read-only
    dataset mounts are common; the TSV slow path keeps working).
    """
    directory = Path(directory)
    if digest is None:
        digest = dataset_digest(directory)
    meta = DatasetCacheMeta(
        format_version=CACHE_FORMAT_VERSION,
        digest=digest,
        name=graph.name,
        num_entities=graph.num_entities,
        num_relations=graph.num_relations,
        num_train=len(graph.train),
        num_valid=len(graph.valid),
        num_test=len(graph.test),
    )
    target = cache_path(directory)
    scratch = directory / f"{CACHE_DIRNAME}.tmp-{os.getpid()}"
    try:
        if scratch.exists():
            shutil.rmtree(scratch)
        scratch.mkdir(parents=True)
        for split in _SPLITS:
            array = getattr(graph, split).array
            if array.size and array.max() > np.iinfo(np.int32).max:
                raise ValueError("triple ids exceed the int32 cache format")
            np.save(scratch / f"{split}.npy", array.astype(np.int32))
        vocab = {
            "entities": list((graph.entity_vocab or Vocabulary.from_ids(graph.num_entities, "e")).symbols()),
            "relations": list((graph.relation_vocab or Vocabulary.from_ids(graph.num_relations, "r")).symbols()),
        }
        (scratch / "vocab.json").write_text(json.dumps(vocab), encoding="utf-8")
        (scratch / "meta.json").write_text(json.dumps(asdict(meta), indent=2), encoding="utf-8")
        if target.exists():
            shutil.rmtree(target)
        os.replace(scratch, target)
        return target
    except OSError as error:
        logger.warning("could not write dataset cache under %s: %s", directory, error)
        shutil.rmtree(scratch, ignore_errors=True)
        return None


def load_cached_dataset(
    directory: PathLike, digest: Optional[str] = None, mmap: bool = True
) -> Optional[KnowledgeGraph]:
    """Load the binary cache of ``directory`` if present and current, else ``None``.

    ``digest`` (computed from the TSV files when not supplied) must match the cached
    meta record; any mismatch -- edited splits, foreign format version, missing or
    corrupt members -- makes this a cache miss, never an error.
    """
    directory = Path(directory)
    cache = cache_path(directory)
    meta_path = cache / "meta.json"
    if not meta_path.is_file():
        return None
    try:
        meta = DatasetCacheMeta(**json.loads(meta_path.read_text(encoding="utf-8")))
        if meta.format_version != CACHE_FORMAT_VERSION:
            return None
        if digest is None:
            digest = dataset_digest(directory)
        if meta.digest != digest:
            return None
        vocab = json.loads((cache / "vocab.json").read_text(encoding="utf-8"))
        entity_vocab = Vocabulary(vocab["entities"])
        relation_vocab = Vocabulary(vocab["relations"])
        if len(entity_vocab) != meta.num_entities or len(relation_vocab) != meta.num_relations:
            return None
        splits = {}
        for split in _SPLITS:
            array = np.load(cache / f"{split}.npy", mmap_mode="r" if mmap else None)
            if array.ndim != 2 or array.shape[1] != 3 or array.shape[0] != getattr(meta, f"num_{split}"):
                return None
            # The in-memory containers are int64; this widening copy is the only
            # resident allocation a cached (mmap) load makes.
            splits[split] = TripleSet(np.asarray(array, dtype=np.int64))
        return KnowledgeGraph(
            name=meta.name,
            num_entities=meta.num_entities,
            num_relations=meta.num_relations,
            train=splits["train"],
            valid=splits["valid"],
            test=splits["test"],
            entity_vocab=entity_vocab,
            relation_vocab=relation_vocab,
        )
    except (OSError, ValueError, KeyError, TypeError, json.JSONDecodeError) as error:
        logger.warning("ignoring unreadable dataset cache %s: %s", cache, error)
        return None


def load_dataset_directory(directory: PathLike, use_cache: bool = True, mmap: bool = True) -> KnowledgeGraph:
    """Load a TSV dataset directory through the binary cache.

    Cache hit: mmap-backed binary load, no TSV parsing.  Cache miss (first load, or
    the split files changed): parse the TSVs, then write the cache for next time.
    ``use_cache=False`` forces the plain parse and touches nothing on disk.
    """
    directory = Path(directory)
    if not is_dataset_directory(directory):
        missing = [path.name for path in split_files(directory) if not path.is_file()]
        raise FileNotFoundError(
            f"{directory} is not a dataset directory: missing {', '.join(missing)}"
        )
    if not use_cache:
        return load_tsv_dataset(directory)
    digest = dataset_digest(directory)
    cached = load_cached_dataset(directory, digest=digest, mmap=mmap)
    if cached is not None:
        return cached
    graph = load_tsv_dataset(directory)
    write_dataset_cache(directory, graph, digest=digest)
    return graph
