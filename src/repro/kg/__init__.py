"""Knowledge-graph data layer.

Provides the triple containers, vocabularies, dataset splits, TSV loaders, negative
sampling, the filtered-candidate index used by ranking evaluation, and the relation
pattern analysis that motivates the relation-aware search (Section III-A of the paper).
"""

from repro.kg.vocab import Vocabulary
from repro.kg.triples import TripleSet
from repro.kg.graph import KnowledgeGraph, DatasetStatistics
from repro.kg.io import load_tsv_dataset, save_tsv_dataset
from repro.kg.sampling import NegativeSampler, BatchIterator
from repro.kg.filter_index import FilterIndex
from repro.kg.patterns import (
    RelationPattern,
    RelationPatternAnalyzer,
    RelationPatternReport,
)

__all__ = [
    "Vocabulary",
    "TripleSet",
    "KnowledgeGraph",
    "DatasetStatistics",
    "load_tsv_dataset",
    "save_tsv_dataset",
    "NegativeSampler",
    "BatchIterator",
    "FilterIndex",
    "RelationPattern",
    "RelationPatternAnalyzer",
    "RelationPatternReport",
]
