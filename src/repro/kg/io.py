"""Loading and saving datasets in the standard benchmark TSV layout.

The public benchmarks (WN18, WN18RR, FB15k, FB15k-237, YAGO3-10) ship as a directory with
``train.txt``, ``valid.txt`` and ``test.txt``, each line being ``head<TAB>relation<TAB>tail``.
The loader here accepts exactly that layout, so the real datasets can be dropped in when
network access is available; the synthetic generators produce the same structure.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Tuple, Union

import numpy as np

from repro.kg.graph import KnowledgeGraph
from repro.kg.triples import TripleSet
from repro.kg.vocab import Vocabulary

PathLike = Union[str, Path]

_SPLIT_FILES = {"train": "train.txt", "valid": "valid.txt", "test": "test.txt"}


def _read_split(path: Path) -> List[Tuple[str, str, str]]:
    rows: List[Tuple[str, str, str]] = []
    with path.open("r", encoding="utf-8") as fh:
        for line_number, line in enumerate(fh, start=1):
            line = line.rstrip("\n")
            if not line:
                continue
            parts = line.split("\t")
            if len(parts) != 3:
                raise ValueError(f"{path}:{line_number}: expected 3 tab-separated fields, got {len(parts)}")
            rows.append((parts[0], parts[1], parts[2]))
    return rows


def load_tsv_dataset(directory: PathLike, name: str | None = None) -> KnowledgeGraph:
    """Load a dataset directory containing ``train.txt``, ``valid.txt`` and ``test.txt``."""
    directory = Path(directory)
    if not directory.is_dir():
        raise FileNotFoundError(f"dataset directory {directory} does not exist")
    raw: Dict[str, List[Tuple[str, str, str]]] = {}
    for split, filename in _SPLIT_FILES.items():
        path = directory / filename
        if not path.exists():
            raise FileNotFoundError(f"missing split file {path}")
        raw[split] = _read_split(path)

    entity_vocab = Vocabulary()
    relation_vocab = Vocabulary()
    # Vocabulary is built from the training split first so ids are stable w.r.t. training data,
    # then extended with any symbols that only appear in valid/test.
    for split in ("train", "valid", "test"):
        for head, relation, tail in raw[split]:
            entity_vocab.add(head)
            entity_vocab.add(tail)
            relation_vocab.add(relation)

    def encode(rows: List[Tuple[str, str, str]]) -> TripleSet:
        ids = np.asarray(
            [
                (entity_vocab.id_of(h), relation_vocab.id_of(r), entity_vocab.id_of(t))
                for h, r, t in rows
            ],
            dtype=np.int64,
        ).reshape(-1, 3)
        return TripleSet(ids)

    return KnowledgeGraph(
        name=name or directory.name,
        num_entities=len(entity_vocab),
        num_relations=len(relation_vocab),
        train=encode(raw["train"]),
        valid=encode(raw["valid"]),
        test=encode(raw["test"]),
        entity_vocab=entity_vocab,
        relation_vocab=relation_vocab,
    )


def save_tsv_dataset(graph: KnowledgeGraph, directory: PathLike) -> Path:
    """Write ``graph`` to ``directory`` in the standard three-file TSV layout.

    When the graph has no vocabularies, synthetic symbols (``e_<id>`` / ``r_<id>``) are used.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    entity_vocab = graph.entity_vocab or Vocabulary.from_ids(graph.num_entities, "e")
    relation_vocab = graph.relation_vocab or Vocabulary.from_ids(graph.num_relations, "r")
    for split, filename in _SPLIT_FILES.items():
        triples: TripleSet = getattr(graph, split)
        with (directory / filename).open("w", encoding="utf-8") as fh:
            for head, relation, tail in triples:
                fh.write(
                    f"{entity_vocab.symbol_of(head)}\t{relation_vocab.symbol_of(relation)}\t"
                    f"{entity_vocab.symbol_of(tail)}\n"
                )
    return directory
