"""Loading and saving datasets in the standard benchmark TSV layout.

The public benchmarks (WN18, WN18RR, FB15k, FB15k-237, YAGO3-10) ship as a directory with
``train.txt``, ``valid.txt`` and ``test.txt``, each line being ``head<TAB>relation<TAB>tail``.
The loader here accepts exactly that layout, so the real datasets can be dropped in when
network access is available; the synthetic generators produce the same structure.

Real-world files are messier than the spec, so :func:`_read_split` is hardened against
the common defects: CRLF line endings are normalised (a stray ``\\r`` would otherwise
silently become part of the tail symbol, forking the entity vocabulary), duplicate
triples within a split are dropped with a warning (first occurrence wins, keeping file
order), and entities or relations appearing only in valid/test are accepted -- their
ids extend the train-first vocabulary -- but reported via a warning because a model
trained on this graph can only ever score them with untrained embeddings.

Directory datasets normally enter through :func:`repro.datasets.resolve_dataset`,
which fronts this parser with the binary cache of :mod:`repro.kg.cache`.
"""

from __future__ import annotations

import logging
from pathlib import Path
from typing import Dict, List, Set, Tuple, Union

import numpy as np

from repro.kg.graph import KnowledgeGraph
from repro.kg.triples import TripleSet
from repro.kg.vocab import Vocabulary

PathLike = Union[str, Path]

logger = logging.getLogger(__name__)

_SPLIT_FILES = {"train": "train.txt", "valid": "valid.txt", "test": "test.txt"}


def split_files(directory: PathLike) -> List[Path]:
    """The three split files of a dataset directory, in canonical train/valid/test order."""
    directory = Path(directory)
    return [directory / filename for filename in _SPLIT_FILES.values()]


def is_dataset_directory(directory: PathLike) -> bool:
    """True when ``directory`` holds all three TSV split files."""
    return all(path.is_file() for path in split_files(directory))


def _read_split(path: Path) -> List[Tuple[str, str, str]]:
    rows: List[Tuple[str, str, str]] = []
    seen: Set[Tuple[str, str, str]] = set()
    duplicates = 0
    with path.open("r", encoding="utf-8") as fh:
        for line_number, line in enumerate(fh, start=1):
            # Strip both LF and CRLF endings: files exported on Windows carry \r\n,
            # and a surviving \r would silently fork the tail symbol's vocabulary id.
            line = line.rstrip("\r\n")
            if not line:
                continue
            parts = line.split("\t")
            if len(parts) != 3:
                raise ValueError(
                    f"{path}:{line_number}: expected 3 tab-separated fields "
                    f"(head<TAB>relation<TAB>tail), got {len(parts)}"
                )
            row = (parts[0], parts[1], parts[2])
            if row in seen:
                duplicates += 1
                continue
            seen.add(row)
            rows.append(row)
    if duplicates:
        logger.warning(
            "%s: dropped %d duplicate triple(s); first occurrence kept", path, duplicates
        )
    return rows


def load_tsv_dataset(directory: PathLike, name: str | None = None) -> KnowledgeGraph:
    """Load a dataset directory containing ``train.txt``, ``valid.txt`` and ``test.txt``.

    The vocabulary is built from the training split first so ids are stable w.r.t.
    training data, then extended with any symbols that only appear in valid/test; such
    eval-only symbols are legal (the graph validates) but are logged because their
    embeddings can never be trained on this graph.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise FileNotFoundError(f"dataset directory {directory} does not exist")
    raw: Dict[str, List[Tuple[str, str, str]]] = {}
    for split, filename in _SPLIT_FILES.items():
        path = directory / filename
        if not path.exists():
            raise FileNotFoundError(f"missing split file {path}")
        raw[split] = _read_split(path)

    entity_vocab = Vocabulary()
    relation_vocab = Vocabulary()
    for split in ("train", "valid", "test"):
        for head, relation, tail in raw[split]:
            entity_vocab.add(head)
            entity_vocab.add(tail)
            relation_vocab.add(relation)
    train_entities = len(
        {symbol for head, _, tail in raw["train"] for symbol in (head, tail)}
    )
    train_relations = len({relation for _, relation, _ in raw["train"]})
    eval_only_entities = len(entity_vocab) - train_entities
    eval_only_relations = len(relation_vocab) - train_relations
    if eval_only_entities or eval_only_relations:
        logger.warning(
            "%s: %d entities and %d relations appear only in valid/test; "
            "their embeddings cannot be trained on this graph",
            directory,
            eval_only_entities,
            eval_only_relations,
        )

    def encode(rows: List[Tuple[str, str, str]]) -> TripleSet:
        ids = np.asarray(
            [
                (entity_vocab.id_of(h), relation_vocab.id_of(r), entity_vocab.id_of(t))
                for h, r, t in rows
            ],
            dtype=np.int64,
        ).reshape(-1, 3)
        return TripleSet(ids)

    return KnowledgeGraph(
        name=name or directory.name,
        num_entities=len(entity_vocab),
        num_relations=len(relation_vocab),
        train=encode(raw["train"]),
        valid=encode(raw["valid"]),
        test=encode(raw["test"]),
        entity_vocab=entity_vocab,
        relation_vocab=relation_vocab,
    )


def save_tsv_dataset(graph: KnowledgeGraph, directory: PathLike) -> Path:
    """Write ``graph`` to ``directory`` in the standard three-file TSV layout.

    When the graph has no vocabularies, synthetic symbols (``e_<id>`` / ``r_<id>``) are used.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    entity_vocab = graph.entity_vocab or Vocabulary.from_ids(graph.num_entities, "e")
    relation_vocab = graph.relation_vocab or Vocabulary.from_ids(graph.num_relations, "r")
    for split, filename in _SPLIT_FILES.items():
        triples: TripleSet = getattr(graph, split)
        with (directory / filename).open("w", encoding="utf-8") as fh:
            for head, relation, tail in triples:
                fh.write(
                    f"{entity_vocab.symbol_of(head)}\t{relation_vocab.symbol_of(relation)}\t"
                    f"{entity_vocab.symbol_of(tail)}\n"
                )
    return directory
