"""Relation-pattern analysis.

Section III-A of the paper motivates relation-aware scoring functions by categorising
relations into semantic patterns: symmetry, anti-symmetry, inversion and general
asymmetry.  This module detects those patterns from data, which is used for

* the pattern-level evaluation of Tables III and VIII,
* the ``ERAS_smt`` ablation variant that groups relations by detected semantics, and
* verifying that the synthetic dataset generators plant the patterns they claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional

from repro.kg.graph import KnowledgeGraph
from repro.kg.triples import TripleSet


class RelationPattern(str, Enum):
    """The four relation patterns discussed in the paper (plus inverse-pair membership)."""

    SYMMETRIC = "symmetric"
    ANTI_SYMMETRIC = "anti_symmetric"
    INVERSE = "inverse"
    GENERAL_ASYMMETRIC = "general_asymmetric"


@dataclass(frozen=True)
class RelationPatternReport:
    """Per-relation pattern decision together with the supporting scores."""

    relation: int
    pattern: RelationPattern
    symmetry_score: float
    inverse_partner: Optional[int]
    inverse_score: float
    support: int

    def __str__(self) -> str:
        partner = f", inverse_of={self.inverse_partner}" if self.inverse_partner is not None else ""
        return (
            f"relation {self.relation}: {self.pattern.value} "
            f"(symmetry={self.symmetry_score:.2f}, inverse={self.inverse_score:.2f}{partner}, "
            f"support={self.support})"
        )


class RelationPatternAnalyzer:
    """Detect relation patterns from observed triples.

    Decision rule (applied to the union of all splits unless a specific
    :class:`~repro.kg.triples.TripleSet` is given):

    * ``symmetry_score(r)`` is the fraction of triples (h, r, t) with h != t whose reverse
      (t, r, h) is also observed.  Scores above ``symmetric_threshold`` mark the relation
      SYMMETRIC; scores below ``antisymmetric_threshold`` mark it ANTI_SYMMETRIC.
    * ``inverse_score(r, r')`` is the fraction of triples (h, r, t) with (t, r', h)
      observed for a *different* relation r'.  If the best partner exceeds
      ``inverse_threshold`` (and the relation is not symmetric) the relation is INVERSE.
    * Everything else is GENERAL_ASYMMETRIC.
    """

    def __init__(
        self,
        symmetric_threshold: float = 0.8,
        antisymmetric_threshold: float = 0.05,
        inverse_threshold: float = 0.8,
        min_support: int = 2,
    ) -> None:
        if not 0.0 <= antisymmetric_threshold < symmetric_threshold <= 1.0:
            raise ValueError("thresholds must satisfy 0 <= antisymmetric < symmetric <= 1")
        if not 0.0 < inverse_threshold <= 1.0:
            raise ValueError("inverse_threshold must be in (0, 1]")
        self.symmetric_threshold = symmetric_threshold
        self.antisymmetric_threshold = antisymmetric_threshold
        self.inverse_threshold = inverse_threshold
        self.min_support = min_support

    # ------------------------------------------------------------------ scores
    @staticmethod
    def symmetry_score(triples: TripleSet, relation: int) -> float:
        """Fraction of (h, r, t) with h != t whose reverse (t, r, h) is also present."""
        relation_triples = triples.for_relation(relation)
        pairs = {(h, t) for h, _, t in relation_triples if h != t}
        if not pairs:
            return 0.0
        reversed_hits = sum(1 for (h, t) in pairs if (t, h) in pairs)
        return reversed_hits / len(pairs)

    @staticmethod
    def inverse_score(triples: TripleSet, relation: int, candidate: int) -> float:
        """Fraction of (h, r, t) whose reverse (t, candidate, h) is present."""
        relation_pairs = {(h, t) for h, _, t in triples.for_relation(relation)}
        if not relation_pairs:
            return 0.0
        candidate_pairs = {(h, t) for h, _, t in triples.for_relation(candidate)}
        hits = sum(1 for (h, t) in relation_pairs if (t, h) in candidate_pairs)
        return hits / len(relation_pairs)

    # ------------------------------------------------------------------ analysis
    def analyze_triples(self, triples: TripleSet, num_relations: int) -> List[RelationPatternReport]:
        """Classify every relation id in ``range(num_relations)``."""
        pair_sets: Dict[int, set] = {
            r: {(h, t) for h, _, t in triples.for_relation(r)} for r in range(num_relations)
        }
        reports: List[RelationPatternReport] = []
        for relation in range(num_relations):
            pairs = pair_sets[relation]
            support = len(pairs)
            non_loop_pairs = {(h, t) for (h, t) in pairs if h != t}
            if non_loop_pairs:
                symmetry = sum(1 for (h, t) in non_loop_pairs if (t, h) in non_loop_pairs) / len(non_loop_pairs)
            else:
                symmetry = 0.0

            best_partner, best_inverse = None, 0.0
            if pairs:
                for candidate in range(num_relations):
                    if candidate == relation or not pair_sets[candidate]:
                        continue
                    hits = sum(1 for (h, t) in pairs if (t, h) in pair_sets[candidate])
                    score = hits / len(pairs)
                    if score > best_inverse:
                        best_partner, best_inverse = candidate, score

            pattern = self._decide(symmetry, best_inverse, support)
            reports.append(
                RelationPatternReport(
                    relation=relation,
                    pattern=pattern,
                    symmetry_score=symmetry,
                    inverse_partner=best_partner if pattern is RelationPattern.INVERSE else None,
                    inverse_score=best_inverse,
                    support=support,
                )
            )
        return reports

    def analyze(self, graph: KnowledgeGraph, split: str = "all") -> List[RelationPatternReport]:
        """Classify every relation of ``graph`` using the chosen split ("train", "valid", "test" or "all")."""
        if split == "all":
            triples = graph.all_triples()
        elif split in ("train", "valid", "test"):
            triples = getattr(graph, split)
        else:
            raise ValueError(f"unknown split {split!r}")
        return self.analyze_triples(triples, graph.num_relations)

    def _decide(self, symmetry: float, inverse: float, support: int) -> RelationPattern:
        if support < self.min_support:
            return RelationPattern.GENERAL_ASYMMETRIC
        if symmetry >= self.symmetric_threshold:
            return RelationPattern.SYMMETRIC
        if inverse >= self.inverse_threshold:
            return RelationPattern.INVERSE
        if symmetry <= self.antisymmetric_threshold:
            return RelationPattern.ANTI_SYMMETRIC
        return RelationPattern.GENERAL_ASYMMETRIC

    # ------------------------------------------------------------------ convenience
    def relations_with_pattern(
        self, graph: KnowledgeGraph, pattern: RelationPattern, split: str = "all"
    ) -> List[int]:
        """Relation ids classified as ``pattern``."""
        return [report.relation for report in self.analyze(graph, split=split) if report.pattern is pattern]

    def pattern_groups(self, graph: KnowledgeGraph, split: str = "all") -> Dict[RelationPattern, List[int]]:
        """Group relation ids by detected pattern (used by the ERAS_smt ablation)."""
        groups: Dict[RelationPattern, List[int]] = {pattern: [] for pattern in RelationPattern}
        for report in self.analyze(graph, split=split):
            groups[report.pattern].append(report.relation)
        return groups

    def summary(self, graph: KnowledgeGraph, split: str = "all") -> Dict[str, int]:
        """Number of relations per detected pattern."""
        groups = self.pattern_groups(graph, split=split)
        return {pattern.value: len(ids) for pattern, ids in groups.items()}
