"""The :class:`TripleSet` container: an integer (n, 3) array of (head, relation, tail)."""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence, Set, Tuple, Union

import numpy as np

Triple = Tuple[int, int, int]


class TripleSet:
    """An immutable set of knowledge-graph triples stored as an ``(n, 3)`` int64 array.

    Column order is (head, relation, tail).  The class offers the slicing, filtering and
    set operations needed by splitting, negative sampling and pattern analysis.
    """

    def __init__(self, triples: Union[np.ndarray, Sequence[Triple]]) -> None:
        array = np.asarray(triples, dtype=np.int64)
        if array.size == 0:
            array = array.reshape(0, 3)
        if array.ndim != 2 or array.shape[1] != 3:
            raise ValueError(f"triples must have shape (n, 3), got {array.shape}")
        if array.size and array.min() < 0:
            raise ValueError("triple ids must be non-negative")
        self._array = array
        self._array.setflags(write=False)

    # ------------------------------------------------------------------ accessors
    @property
    def array(self) -> np.ndarray:
        """The underlying read-only array of shape (n, 3)."""
        return self._array

    @property
    def heads(self) -> np.ndarray:
        return self._array[:, 0]

    @property
    def relations(self) -> np.ndarray:
        return self._array[:, 1]

    @property
    def tails(self) -> np.ndarray:
        return self._array[:, 2]

    def __len__(self) -> int:
        return self._array.shape[0]

    def __iter__(self) -> Iterator[Triple]:
        for row in self._array:
            yield (int(row[0]), int(row[1]), int(row[2]))

    def __getitem__(self, index) -> "TripleSet":
        selected = self._array[index]
        if selected.ndim == 1:
            selected = selected.reshape(1, 3)
        return TripleSet(selected.copy())

    def __contains__(self, triple: Triple) -> bool:
        return tuple(triple) in self.as_set()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TripleSet):
            return NotImplemented
        return self.as_set() == other.as_set()

    def __hash__(self) -> int:  # pragma: no cover - defensive; TripleSets rarely hashed
        return hash(frozenset(self.as_set()))

    def __repr__(self) -> str:
        return f"TripleSet(n={len(self)})"

    # ------------------------------------------------------------------ derived views
    def entities(self) -> np.ndarray:
        """Sorted unique entity ids appearing as head or tail."""
        return np.unique(np.concatenate([self.heads, self.tails])) if len(self) else np.array([], dtype=np.int64)

    def relation_ids(self) -> np.ndarray:
        """Sorted unique relation ids."""
        return np.unique(self.relations) if len(self) else np.array([], dtype=np.int64)

    def as_set(self) -> Set[Triple]:
        """The triples as a Python set of tuples (cached per call site by the caller)."""
        return {(int(h), int(r), int(t)) for h, r, t in self._array}

    def for_relation(self, relation: int) -> "TripleSet":
        """Triples whose relation id equals ``relation``."""
        return TripleSet(self._array[self.relations == relation].copy())

    def for_relations(self, relations: Iterable[int]) -> "TripleSet":
        """Triples whose relation id is in ``relations``."""
        wanted = np.asarray(sorted(set(int(r) for r in relations)), dtype=np.int64)
        mask = np.isin(self.relations, wanted)
        return TripleSet(self._array[mask].copy())

    def relation_counts(self, num_relations: int) -> np.ndarray:
        """Number of triples per relation id, as an array of length ``num_relations``."""
        counts = np.bincount(self.relations, minlength=num_relations)
        return counts[:num_relations]

    # ------------------------------------------------------------------ set algebra
    def concat(self, other: "TripleSet") -> "TripleSet":
        """Concatenation (duplicates preserved)."""
        return TripleSet(np.concatenate([self._array, other._array], axis=0))

    def unique(self) -> "TripleSet":
        """Duplicate-free copy (row order not preserved)."""
        return TripleSet(np.unique(self._array, axis=0))

    def difference(self, other: "TripleSet") -> "TripleSet":
        """Triples present in ``self`` but not in ``other``."""
        other_set = other.as_set()
        keep = [row for row in self if row not in other_set]
        return TripleSet(np.asarray(keep, dtype=np.int64).reshape(-1, 3))

    def inverted(self) -> "TripleSet":
        """Triples with head and tail swapped (relation untouched)."""
        swapped = self._array[:, [2, 1, 0]].copy()
        return TripleSet(swapped)

    def shuffled(self, rng: np.random.Generator) -> "TripleSet":
        """A row-shuffled copy."""
        order = rng.permutation(len(self))
        return TripleSet(self._array[order].copy())

    def split(self, fractions: Sequence[float], rng: np.random.Generator) -> Tuple["TripleSet", ...]:
        """Randomly split into parts with the given fractions (must sum to 1)."""
        if abs(sum(fractions) - 1.0) > 1e-9:
            raise ValueError(f"fractions must sum to 1, got {fractions}")
        shuffled = self.shuffled(rng)
        counts = [int(round(f * len(self))) for f in fractions]
        counts[-1] = len(self) - sum(counts[:-1])
        if min(counts) < 0:
            raise ValueError(f"fractions {fractions} produce a negative split for {len(self)} triples")
        pieces = []
        start = 0
        for count in counts:
            pieces.append(TripleSet(shuffled.array[start : start + count].copy()))
            start += count
        return tuple(pieces)

    @classmethod
    def empty(cls) -> "TripleSet":
        """An empty triple set."""
        return cls(np.zeros((0, 3), dtype=np.int64))
