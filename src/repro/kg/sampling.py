"""Negative sampling and mini-batch iteration over triple sets."""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from repro.kg.filter_index import FilterIndex
from repro.kg.triples import TripleSet
from repro.utils.rng import SeedLike, new_rng


class BatchIterator:
    """Yield shuffled mini-batches of triples as ``(n, 3)`` integer arrays."""

    def __init__(self, triples: TripleSet, batch_size: int, seed: SeedLike = None, drop_last: bool = False) -> None:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.triples = triples
        self.batch_size = batch_size
        self.drop_last = drop_last
        self._rng = new_rng(seed)

    def __len__(self) -> int:
        full, remainder = divmod(len(self.triples), self.batch_size)
        if remainder and not self.drop_last:
            return full + 1
        return full

    def __iter__(self) -> Iterator[np.ndarray]:
        order = self._rng.permutation(len(self.triples))
        array = self.triples.array
        for start in range(0, len(order), self.batch_size):
            batch_idx = order[start : start + self.batch_size]
            if self.drop_last and len(batch_idx) < self.batch_size:
                break
            yield array[batch_idx]


class NegativeSampler:
    """Corrupt heads or tails of positive triples with uniformly sampled entities.

    With ``filtered=True`` corrupted triples that happen to be known true facts are
    resampled (bounded retries), which removes false negatives at a small cost.
    """

    def __init__(
        self,
        num_entities: int,
        negatives_per_positive: int = 1,
        filtered: bool = False,
        filter_index: Optional[FilterIndex] = None,
        seed: SeedLike = None,
        max_retries: int = 10,
    ) -> None:
        if num_entities <= 0:
            raise ValueError("num_entities must be positive")
        if negatives_per_positive <= 0:
            raise ValueError("negatives_per_positive must be positive")
        if filtered and filter_index is None:
            raise ValueError("filtered sampling requires a filter_index")
        self.num_entities = num_entities
        self.negatives_per_positive = negatives_per_positive
        self.filtered = filtered
        self.filter_index = filter_index
        self.max_retries = max_retries
        self._rng = new_rng(seed)

    def corrupt(self, positives: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(negatives, corrupted_tail_mask)`` for a batch of positive triples.

        ``negatives`` has shape ``(n * negatives_per_positive, 3)``; each row corrupts
        either the head or the tail (chosen uniformly) of the corresponding positive.
        ``corrupted_tail_mask`` marks rows whose *tail* was replaced.
        """
        positives = np.asarray(positives, dtype=np.int64)
        if positives.ndim != 2 or positives.shape[1] != 3:
            raise ValueError(f"positives must have shape (n, 3), got {positives.shape}")
        repeated = np.repeat(positives, self.negatives_per_positive, axis=0)
        corrupt_tail = self._rng.random(len(repeated)) < 0.5
        random_entities = self._rng.integers(0, self.num_entities, size=len(repeated))
        negatives = repeated.copy()
        negatives[corrupt_tail, 2] = random_entities[corrupt_tail]
        negatives[~corrupt_tail, 0] = random_entities[~corrupt_tail]
        if self.filtered:
            negatives = self._resample_known_true(negatives, corrupt_tail)
        return negatives, corrupt_tail

    def _resample_known_true(self, negatives: np.ndarray, corrupt_tail: np.ndarray) -> np.ndarray:
        assert self.filter_index is not None
        result = negatives.copy()
        for row_index in range(len(result)):
            head, relation, tail = result[row_index]
            retries = 0
            while self.filter_index.contains(int(head), int(relation), int(tail)) and retries < self.max_retries:
                replacement = int(self._rng.integers(0, self.num_entities))
                if corrupt_tail[row_index]:
                    tail = replacement
                else:
                    head = replacement
                retries += 1
            result[row_index] = (head, relation, tail)
        return result

    def corrupt_tails(self, positives: np.ndarray) -> np.ndarray:
        """Corrupt only the tail entity of each positive triple."""
        positives = np.asarray(positives, dtype=np.int64)
        repeated = np.repeat(positives, self.negatives_per_positive, axis=0)
        negatives = repeated.copy()
        negatives[:, 2] = self._rng.integers(0, self.num_entities, size=len(repeated))
        return negatives

    def corrupt_heads(self, positives: np.ndarray) -> np.ndarray:
        """Corrupt only the head entity of each positive triple."""
        positives = np.asarray(positives, dtype=np.int64)
        repeated = np.repeat(positives, self.negatives_per_positive, axis=0)
        negatives = repeated.copy()
        negatives[:, 0] = self._rng.integers(0, self.num_entities, size=len(repeated))
        return negatives


def generate_classification_negatives(
    triples: TripleSet,
    num_entities: int,
    filter_index: FilterIndex,
    seed: SeedLike = None,
) -> TripleSet:
    """One negative per positive for the triplet-classification task (Table X protocol).

    Negatives are obtained by corrupting the tail (or the head, with probability 0.5) and
    rejecting corruptions that collide with known true triples.
    """
    rng = new_rng(seed)
    sampler = NegativeSampler(
        num_entities=num_entities,
        negatives_per_positive=1,
        filtered=True,
        filter_index=filter_index,
        seed=rng,
    )
    negatives, _ = sampler.corrupt(triples.array)
    return TripleSet(negatives)
