"""Bidirectional string/id vocabularies for entities and relations."""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List


class Vocabulary:
    """Maps symbols (entity or relation names) to contiguous integer ids and back.

    Ids are assigned in insertion order, which keeps dataset loading deterministic.
    """

    def __init__(self, symbols: Iterable[str] = ()) -> None:
        self._symbol_to_id: Dict[str, int] = {}
        self._id_to_symbol: List[str] = []
        for symbol in symbols:
            self.add(symbol)

    def add(self, symbol: str) -> int:
        """Add ``symbol`` if new and return its id."""
        existing = self._symbol_to_id.get(symbol)
        if existing is not None:
            return existing
        new_id = len(self._id_to_symbol)
        self._symbol_to_id[symbol] = new_id
        self._id_to_symbol.append(symbol)
        return new_id

    def id_of(self, symbol: str) -> int:
        """Return the id of ``symbol``; raises ``KeyError`` for unknown symbols."""
        try:
            return self._symbol_to_id[symbol]
        except KeyError:
            raise KeyError(f"unknown symbol {symbol!r}") from None

    def symbol_of(self, index: int) -> str:
        """Return the symbol with id ``index``; raises ``IndexError`` when out of range."""
        if not 0 <= index < len(self._id_to_symbol):
            raise IndexError(f"id {index} out of range for vocabulary of size {len(self)}")
        return self._id_to_symbol[index]

    def __contains__(self, symbol: str) -> bool:
        return symbol in self._symbol_to_id

    def __len__(self) -> int:
        return len(self._id_to_symbol)

    def __iter__(self) -> Iterator[str]:
        return iter(self._id_to_symbol)

    def symbols(self) -> List[str]:
        """All symbols in id order."""
        return list(self._id_to_symbol)

    def to_dict(self) -> Dict[str, int]:
        """A copy of the symbol-to-id mapping."""
        return dict(self._symbol_to_id)

    @classmethod
    def from_ids(cls, count: int, prefix: str) -> "Vocabulary":
        """Create a vocabulary of ``count`` synthetic symbols like ``prefix_0 .. prefix_{count-1}``."""
        return cls(f"{prefix}_{i}" for i in range(count))

    def __repr__(self) -> str:
        return f"Vocabulary(size={len(self)})"
