"""The :class:`KnowledgeGraph` dataset object: splits, vocabularies and statistics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.kg.triples import TripleSet
from repro.kg.vocab import Vocabulary


@dataclass(frozen=True)
class DatasetStatistics:
    """Summary statistics matching Table VII of the paper."""

    name: str
    num_entities: int
    num_relations: int
    num_training: int
    num_validation: int
    num_testing: int

    def as_row(self) -> Dict[str, object]:
        """A dictionary row suitable for tabular reporting."""
        return {
            "dataset": self.name,
            "#relation": self.num_relations,
            "#entity": self.num_entities,
            "#training": self.num_training,
            "#validation": self.num_validation,
            "#testing": self.num_testing,
        }


class KnowledgeGraph:
    """A knowledge-graph dataset with train/validation/test splits.

    All triples are id-encoded; the optional vocabularies allow mapping back to symbols
    when loading real benchmark files.
    """

    def __init__(
        self,
        name: str,
        num_entities: int,
        num_relations: int,
        train: TripleSet,
        valid: TripleSet,
        test: TripleSet,
        entity_vocab: Optional[Vocabulary] = None,
        relation_vocab: Optional[Vocabulary] = None,
        graph_version: int = 0,
    ) -> None:
        if num_entities <= 0 or num_relations <= 0:
            raise ValueError("num_entities and num_relations must be positive")
        self.name = name
        self.num_entities = int(num_entities)
        self.num_relations = int(num_relations)
        self.train = train
        self.valid = valid
        self.test = test
        self.entity_vocab = entity_vocab
        self.relation_vocab = relation_vocab
        #: Monotonic snapshot counter: 0 for a freshly built graph, bumped by
        #: :class:`repro.stream.MutableGraphView` for every applied delta.  Engines and
        #: HTTP responses stamp results with it so staleness is observable end to end.
        self.graph_version = int(graph_version)
        self._filter_index = None
        self._freeze_splits()
        self._validate_ids()

    def _freeze_splits(self) -> None:
        """Mark the split arrays read-only so in-place mutation fails loudly.

        :meth:`filter_index` memoises a CSR index derived from these arrays; a silent
        in-place write would desync the cached index from the splits.  ``TripleSet``
        freezes its buffer at construction already, but the writeable flag does not
        survive pickling -- this re-freeze keeps the guard alive for graphs restored in
        pool workers too.
        """
        for split in (self.train, self.valid, self.test):
            array = split.array
            if array.flags.writeable:  # pragma: no cover - only pickled splits
                array.setflags(write=False)

    def _validate_ids(self) -> None:
        for split_name, split in (("train", self.train), ("valid", self.valid), ("test", self.test)):
            if len(split) == 0:
                continue
            max_entity = int(max(split.heads.max(), split.tails.max()))
            max_relation = int(split.relations.max())
            if max_entity >= self.num_entities:
                raise ValueError(
                    f"{split_name} split references entity id {max_entity} "
                    f">= num_entities={self.num_entities}"
                )
            if max_relation >= self.num_relations:
                raise ValueError(
                    f"{split_name} split references relation id {max_relation} "
                    f">= num_relations={self.num_relations}"
                )

    # ------------------------------------------------------------------ views
    def filter_index(self):
        """The known-true :class:`~repro.kg.filter_index.FilterIndex` over all splits.

        Built lazily and memoised: every consumer of the filtered protocol (ranking
        evaluation, filtered serving, negative sampling) shares one index per graph
        instead of rebuilding it -- the splits are immutable, so the shared instance is
        always current.
        """
        if self._filter_index is None:
            from repro.kg.filter_index import FilterIndex  # local import: filter_index sits above graph

            self._filter_index = FilterIndex(
                (self.train, self.valid, self.test),
                num_entities=self.num_entities,
                num_relations=self.num_relations,
            )
        return self._filter_index

    def all_triples(self) -> TripleSet:
        """Union of train, validation and test triples (duplicates removed)."""
        return self.train.concat(self.valid).concat(self.test).unique()

    def statistics(self) -> DatasetStatistics:
        """Split sizes (the numbers Table VII reports)."""
        return DatasetStatistics(
            name=self.name,
            num_entities=self.num_entities,
            num_relations=self.num_relations,
            num_training=len(self.train),
            num_validation=len(self.valid),
            num_testing=len(self.test),
        )

    def relation_frequencies(self) -> np.ndarray:
        """Training-triple count per relation id."""
        return self.train.relation_counts(self.num_relations)

    def subsample(self, fraction: float, rng: np.random.Generator) -> "KnowledgeGraph":
        """Return a copy whose training split is a random subset (validation/test kept).

        Useful for quick experiments and for the search-efficiency benchmarks where a
        smaller training set shortens the supernet epochs.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        count = max(1, int(round(fraction * len(self.train))))
        order = rng.permutation(len(self.train))[:count]
        return KnowledgeGraph(
            name=f"{self.name}-sub{fraction:g}",
            num_entities=self.num_entities,
            num_relations=self.num_relations,
            train=TripleSet(self.train.array[order].copy()),
            valid=self.valid,
            test=self.test,
            entity_vocab=self.entity_vocab,
            relation_vocab=self.relation_vocab,
        )

    def __getstate__(self):
        """Drop the memoised filter index when pickling (e.g. into pool workers).

        The CSR index plus its flat-filter cache can rival the triples in size;
        receivers rebuild it lazily on first :meth:`filter_index` call.
        """
        state = self.__dict__.copy()
        state["_filter_index"] = None
        return state

    def __setstate__(self, state):
        """Restore and re-freeze the splits (pickle drops the writeable=False flag)."""
        self.__dict__.update(state)
        self.__dict__.setdefault("graph_version", 0)
        self._freeze_splits()

    def __repr__(self) -> str:
        return (
            f"KnowledgeGraph(name={self.name!r}, entities={self.num_entities}, "
            f"relations={self.num_relations}, train={len(self.train)}, "
            f"valid={len(self.valid)}, test={len(self.test)})"
        )
