"""The filtered-candidate index used by the standard filtered ranking protocol.

When ranking a test triple (h, r, t) against all candidate tails, every *other* known true
triple (h, r, t') must be removed from the candidate list (Bordes et al., 2013).  The
index below answers "which tails are known for (h, r)" and "which heads for (r, t)" in
O(1) per query.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Set, Tuple

import numpy as np

from repro.kg.graph import KnowledgeGraph
from repro.kg.triples import TripleSet


class FilterIndex:
    """Known-true lookup structure over one or more triple sets."""

    def __init__(self, triple_sets: Iterable[TripleSet]) -> None:
        self._tails_of: Dict[Tuple[int, int], Set[int]] = defaultdict(set)
        self._heads_of: Dict[Tuple[int, int], Set[int]] = defaultdict(set)
        self._all: Set[Tuple[int, int, int]] = set()
        for triples in triple_sets:
            for head, relation, tail in triples:
                self._tails_of[(head, relation)].add(tail)
                self._heads_of[(relation, tail)].add(head)
                self._all.add((head, relation, tail))

    @classmethod
    def from_graph(cls, graph: KnowledgeGraph) -> "FilterIndex":
        """Index over all splits of ``graph`` (the standard filtered protocol)."""
        return cls([graph.train, graph.valid, graph.test])

    def known_tails(self, head: int, relation: int) -> Set[int]:
        """All tails t such that (head, relation, t) is a known true triple."""
        return self._tails_of.get((head, relation), set())

    def known_heads(self, relation: int, tail: int) -> Set[int]:
        """All heads h such that (h, relation, tail) is a known true triple."""
        return self._heads_of.get((relation, tail), set())

    def contains(self, head: int, relation: int, tail: int) -> bool:
        """Whether the exact triple is known true."""
        return (head, relation, tail) in self._all

    def __len__(self) -> int:
        return len(self._all)

    def tail_filter_mask(self, head: int, relation: int, true_tail: int, num_entities: int) -> np.ndarray:
        """Boolean mask of candidates to *exclude* when ranking the tail of (head, relation, true_tail).

        The true tail itself is never excluded.
        """
        mask = np.zeros(num_entities, dtype=bool)
        known = self.known_tails(head, relation)
        if known:
            mask[list(known)] = True
        mask[true_tail] = False
        return mask

    def head_filter_mask(self, relation: int, tail: int, true_head: int, num_entities: int) -> np.ndarray:
        """Boolean mask of candidates to *exclude* when ranking the head of (true_head, relation, tail)."""
        mask = np.zeros(num_entities, dtype=bool)
        known = self.known_heads(relation, tail)
        if known:
            mask[list(known)] = True
        mask[true_head] = False
        return mask
