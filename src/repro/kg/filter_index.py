"""The filtered-candidate index used by the standard filtered ranking protocol.

When ranking a test triple (h, r, t) against all candidate tails, every *other* known true
triple (h, r, t') must be removed from the candidate list (Bordes et al., 2013).  The
index answers "which tails are known for (h, r)" and "which heads for (r, t)".

Layout
------
The index is CSR-style over sorted NumPy arrays instead of Python dict-of-sets:

* all known triples are deduplicated and lexsorted once (``np.unique`` / ``np.lexsort``);
* for each direction the sorted unique group keys (``(h, r)`` for tails, ``(r, t)`` for
  heads, encoded as single int64 values) sit next to an offset-pointer array into one
  flat value array, exactly like the ``indptr`` / ``indices`` pair of a CSR matrix;
* a batched lookup is two ``np.searchsorted`` calls plus fancy indexing -- no per-triple
  Python work -- and :meth:`flat_filter_indices` returns the whole batch's exclusions as
  ``(row, column)`` coordinate arrays so they apply in one assignment.

The per-split ``(row, column)`` arrays are additionally memoised (keyed by triple-array
content), because evaluation re-ranks the same validation split dozens of times per
training run and hundreds of times per search.  The pre-vectorization dict-of-sets
implementation is retained verbatim in :mod:`repro.eval.reference` as the ground truth
for the property tests and the throughput gate in
``benchmarks/test_ranking_throughput.py``.

Incremental merge
-----------------
:meth:`FilterIndex.apply_delta` produces the index of a *changed* triple union without
rebuilding from scratch: the sorted delta keys are located with ``np.searchsorted`` and
spliced into the existing encoded-key/value arrays in one pass per direction, then the
CSR group pointers are recomputed in O(n) from the already-sorted keys.  The full
``np.unique(axis=0)`` dedup and the ``np.lexsort`` over all triples -- the dominant
rebuild costs -- are never paid, yet the result is bit-identical to constructing a
fresh index over the updated triple sets (property-gated in
``tests/test_stream_delta.py``).  This is the kernel behind the streaming delta
subsystem in :mod:`repro.stream`.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Optional, Set, Tuple

import numpy as np

from repro.kg.graph import KnowledgeGraph
from repro.kg.triples import TripleSet

_EMPTY = np.array([], dtype=np.int64)


@dataclass(frozen=True)
class FlatFilter:
    """All exclusions of one triple array as a flat CSR pair.

    ``cols[offsets[i]:offsets[i + 1]]`` are the known entities to exclude when ranking
    triple ``i``; :meth:`batch_indices` re-expands any contiguous row range into the
    ``(row, column)`` coordinate arrays consumed by a fancy-indexed assignment.

    Fields
    ------
    cols:
        Concatenated known-entity ids, grouped by triple (int64, length = total
        exclusions).
    offsets:
        Prefix offsets into ``cols``; length ``n + 1`` for ``n`` triples, so row ``i``
        owns the half-open slice ``[offsets[i], offsets[i + 1])``.
    """

    cols: np.ndarray
    offsets: np.ndarray

    def batch_indices(self, start: int, stop: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(row, column)`` exclusion coordinates of rows ``[start, stop)``.

        Rows are re-based to the batch (row ``start`` becomes 0), matching the score
        matrix of one evaluation batch.
        """
        lo, hi = int(self.offsets[start]), int(self.offsets[stop])
        counts = np.diff(self.offsets[start : stop + 1])
        rows = np.repeat(np.arange(stop - start, dtype=np.int64), counts)
        return rows, self.cols[lo:hi]


class FilterIndex:
    """Known-true lookup structure over one or more triple sets.

    ``num_entities`` / ``num_relations`` bound the id domain of the int64 key encoding;
    they default to the maximum ids observed in the triples, and ids beyond the bounds
    are handled by an explicit out-of-domain guard (they can never alias onto another
    group's key), so lookups with any non-negative ids are safe.
    """

    def __init__(
        self,
        triple_sets: Iterable[TripleSet],
        num_entities: Optional[int] = None,
        num_relations: Optional[int] = None,
    ) -> None:
        arrays = [np.asarray(t.array if isinstance(t, TripleSet) else t, dtype=np.int64) for t in triple_sets]
        arrays = [a.reshape(-1, 3) for a in arrays]
        combined = np.concatenate(arrays, axis=0) if arrays else np.zeros((0, 3), dtype=np.int64)
        if combined.size:
            combined = np.unique(combined, axis=0)
        # Frozen at construction: every lookup array below is either a view of this
        # buffer or derived from it, so an accidental in-place write would silently
        # desync the CSR pointers.  Read-only flags turn that into a loud ValueError.
        combined.setflags(write=False)
        self._triples = combined
        heads, relations, tails = combined[:, 0], combined[:, 1], combined[:, 2]
        observed_relations = int(relations.max()) + 1 if combined.size else 1
        observed_entities = int(max(heads.max(), tails.max())) + 1 if combined.size else 1
        self._num_relations = max(observed_relations, int(num_relations or 0))
        self._num_entities = max(observed_entities, int(num_entities or 0))

        # np.unique(axis=0) leaves rows lexsorted by (h, r, t), so the tail-direction CSR
        # falls straight out of the sorted array ...
        self._tail_keys, self._tail_ptr = self._group(self._encode_hr(heads, relations))
        self._tail_vals = tails
        # ... while the head direction needs one more lexsort by (r, t, h).
        order = np.lexsort((heads, tails, relations))
        self._head_keys, self._head_ptr = self._group(self._encode_rt(relations[order], tails[order]))
        self._head_vals = heads[order]
        # Encoded full triples, sorted (monotone in the (h, r, t) lexsort), for contains().
        self._triple_keys = self._encode_hr(heads, relations) * self._num_entities + tails
        self._freeze_buffers()
        # LRU memo of per-array FlatFilter pairs, keyed by a content digest of the
        # triple array (32 bytes per entry instead of pinning the raw split bytes).
        self._flat_cache: "OrderedDict[Tuple[str, int, bytes], FlatFilter]" = OrderedDict()
        self._flat_cache_max = 32

    # ------------------------------------------------------------------ construction
    @classmethod
    def from_graph(cls, graph: KnowledgeGraph) -> "FilterIndex":
        """Index over all splits of ``graph`` (the standard filtered protocol).

        Memoised per graph: repeated calls return :meth:`KnowledgeGraph.filter_index`'s
        cached instance, so evaluators, engines and samplers share one index instead of
        each rebuilding their own.
        """
        return graph.filter_index()

    #: Keys of the serialised CSR buffers, prefixed so they can share a flat array
    #: namespace with the graph splits inside one shared-memory bundle.
    CSR_KEYS = (
        "fi_triples",
        "fi_tail_keys",
        "fi_tail_ptr",
        "fi_tail_vals",
        "fi_head_keys",
        "fi_head_ptr",
        "fi_head_vals",
        "fi_triple_keys",
    )

    def csr_arrays(self) -> "dict[str, np.ndarray]":
        """The finished CSR buffers as a flat dict of contiguous int64 arrays.

        Together with the ``(num_entities, num_relations)`` bounds these capture the
        entire index, so :meth:`from_csr_arrays` can rebuild it in another process
        without redoing the dedup/lexsort work -- the buffers can live in shared
        memory and be consumed zero-copy.
        """
        buffers = (
            self._triples,
            self._tail_keys,
            self._tail_ptr,
            self._tail_vals,
            self._head_keys,
            self._head_ptr,
            self._head_vals,
            self._triple_keys,
        )
        return {key: np.ascontiguousarray(buf) for key, buf in zip(self.CSR_KEYS, buffers)}

    @classmethod
    def from_csr_arrays(
        cls, arrays: "dict[str, np.ndarray]", num_entities: int, num_relations: int
    ) -> "FilterIndex":
        """Rebuild an index directly from :meth:`csr_arrays` buffers (no sorting).

        The arrays are adopted as-is (typically read-only shared-memory views); the
        id-domain bounds must match the publishing index, since the key encoding
        depends on them.
        """
        index = cls.__new__(cls)
        index._num_entities = int(num_entities)
        index._num_relations = int(num_relations)
        (
            index._triples,
            index._tail_keys,
            index._tail_ptr,
            index._tail_vals,
            index._head_keys,
            index._head_ptr,
            index._head_vals,
            index._triple_keys,
        ) = (arrays[key] for key in cls.CSR_KEYS)
        index._flat_cache = OrderedDict()
        index._flat_cache_max = 32
        return index

    # ------------------------------------------------------------------ incremental merge
    def apply_delta(self, adds, removes) -> "FilterIndex":
        """A new index over the updated triple union, merged without a full rebuild.

        ``adds`` / ``removes`` are ``(k, 3)`` triple arrays (or :class:`TripleSet`\\ s)
        describing the *net* change of the deduplicated union this index covers:
        every add must be absent from the index, every remove present, ids must lie
        inside the ``(num_entities, num_relations)`` key-encoding domain, and the two
        sets must be disjoint -- violations raise ``ValueError`` and leave ``self``
        untouched.  The merge locates the sorted delta keys with ``np.searchsorted``
        and splices the value/key arrays in one pass per direction (O(n + k log k)),
        then regroups the CSR pointers in O(n); the expensive ``np.unique(axis=0)``
        dedup and full ``np.lexsort`` of a rebuild are never executed.  The returned
        index is bit-identical to ``FilterIndex(new_sets, num_entities, num_relations)``
        over the updated triple sets; ``self`` remains valid for the old union (old
        snapshots keep serving during a swap).
        """
        adds = self._delta_array(adds, "adds")
        removes = self._delta_array(removes, "removes")
        num_entities, num_relations = self._num_entities, self._num_relations

        # Tail-direction (and contains()) full keys: monotone in the (h, r, t) lexsort.
        add_keys = self._encode_hr(adds[:, 0], adds[:, 1]) * num_entities + adds[:, 2]
        remove_keys = self._encode_hr(removes[:, 0], removes[:, 1]) * num_entities + removes[:, 2]
        order = np.argsort(add_keys, kind="stable")
        adds, add_keys = adds[order], add_keys[order]
        remove_keys = np.sort(remove_keys)
        for name, keys in (("adds", add_keys), ("removes", remove_keys)):
            if keys.size and np.any(keys[1:] == keys[:-1]):
                raise ValueError(f"delta {name} contain duplicate triples")
        if add_keys.size and remove_keys.size and np.intersect1d(add_keys, remove_keys).size:
            raise ValueError("delta adds and removes overlap")

        remove_at = np.searchsorted(self._triple_keys, remove_keys)
        missing = (remove_at >= len(self._triple_keys)) | (
            self._triple_keys[np.minimum(remove_at, max(len(self._triple_keys) - 1, 0))] != remove_keys
        ) if remove_keys.size else np.zeros(0, dtype=bool)
        if np.any(missing):
            bad = remove_keys[missing][0]
            raise ValueError(
                f"cannot remove triple with encoded key {int(bad)}: not present in the index"
            )
        add_at = np.searchsorted(self._triple_keys, add_keys)
        if add_keys.size:
            clipped = np.minimum(add_at, max(len(self._triple_keys) - 1, 0))
            present = (add_at < len(self._triple_keys)) & (self._triple_keys[clipped] == add_keys)
            if np.any(present):
                bad = add_keys[present][0]
                raise ValueError(
                    f"cannot add triple with encoded key {int(bad)}: already present in the index"
                )

        # Single-pass splice of the (h, r, t)-sorted triple/key arrays.
        keep = np.ones(len(self._triples), dtype=bool)
        keep[remove_at] = False
        base_triples = self._triples[keep]
        base_keys = self._triple_keys[keep]
        insert_at = np.searchsorted(base_keys, add_keys)
        new_triples = np.insert(base_triples, insert_at, adds, axis=0)
        new_triple_keys = np.insert(base_keys, insert_at, add_keys)

        # Head direction: reconstruct the per-element (r, t, h) sort keys from the CSR
        # pair in O(n) -- no lexsort -- and splice the same way.
        head_group = np.repeat(self._head_keys, np.diff(self._head_ptr))
        head_full = head_group * num_entities + self._head_vals
        remove_head_keys = np.sort(
            self._encode_rt(removes[:, 1], removes[:, 2]) * num_entities + removes[:, 0]
        )
        add_head_keys = self._encode_rt(adds[:, 1], adds[:, 2]) * num_entities + adds[:, 0]
        head_order = np.argsort(add_head_keys, kind="stable")
        add_head_keys = add_head_keys[head_order]
        head_keep = np.ones(len(head_full), dtype=bool)
        head_keep[np.searchsorted(head_full, remove_head_keys)] = False
        base_head_group = head_group[head_keep]
        base_head_vals = self._head_vals[head_keep]
        head_insert_at = np.searchsorted(head_full[head_keep], add_head_keys)
        new_head_vals = np.insert(base_head_vals, head_insert_at, adds[head_order][:, 0])
        new_head_group = np.insert(base_head_group, head_insert_at, add_head_keys // num_entities)

        merged = self.__class__.__new__(self.__class__)
        merged._num_entities = num_entities
        merged._num_relations = num_relations
        merged._triples = new_triples
        merged._tail_keys, merged._tail_ptr = self._group(
            merged._encode_hr(new_triples[:, 0], new_triples[:, 1])
        )
        merged._tail_vals = new_triples[:, 2]
        merged._head_keys, merged._head_ptr = self._group(new_head_group)
        merged._head_vals = new_head_vals
        merged._triple_keys = new_triple_keys
        merged._flat_cache = OrderedDict()
        merged._flat_cache_max = self._flat_cache_max
        merged._freeze_buffers()
        return merged

    def _delta_array(self, triples, name: str) -> np.ndarray:
        """Normalise one delta side to a ``(k, 3)`` int64 array inside the key domain."""
        array = np.asarray(triples.array if isinstance(triples, TripleSet) else triples, dtype=np.int64)
        array = np.ascontiguousarray(array.reshape(-1, 3))
        if array.size == 0:
            return array
        if array.min() < 0:
            raise ValueError(f"delta {name} contain negative ids")
        if int(max(array[:, 0].max(), array[:, 2].max())) >= self._num_entities:
            raise ValueError(
                f"delta {name} reference entity id >= num_entities={self._num_entities}"
            )
        if int(array[:, 1].max()) >= self._num_relations:
            raise ValueError(
                f"delta {name} reference relation id >= num_relations={self._num_relations}"
            )
        return array

    @staticmethod
    def _group(sorted_keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Unique keys of a sorted key array plus CSR offset pointers.

        The input is sorted by contract, so duplicates are adjacent and one O(n)
        change-flag pass replaces ``np.unique``'s internal re-sort -- this is what
        keeps :meth:`apply_delta` linear in the index size.
        """
        if sorted_keys.size == 0:
            return _EMPTY, np.zeros(1, dtype=np.int64)
        change = np.empty(len(sorted_keys), dtype=bool)
        change[0] = True
        np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=change[1:])
        starts = np.flatnonzero(change)
        keys = np.ascontiguousarray(sorted_keys[starts])
        ptr = np.append(starts, len(sorted_keys)).astype(np.int64)
        return keys, ptr

    def _freeze_buffers(self) -> None:
        """Mark every CSR buffer read-only so accidental mutation fails loudly."""
        for buffer in (
            self._triples,
            self._tail_keys,
            self._tail_ptr,
            self._tail_vals,
            self._head_keys,
            self._head_ptr,
            self._head_vals,
            self._triple_keys,
        ):
            if isinstance(buffer, np.ndarray) and buffer.flags.writeable:
                buffer.setflags(write=False)

    def _encode_hr(self, heads, relations) -> np.ndarray:
        """Injective ``(h, r)`` key; out-of-domain ids yield -1, matching no stored key."""
        heads = np.asarray(heads, dtype=np.int64)
        relations = np.asarray(relations, dtype=np.int64)
        in_domain = (heads >= 0) & (relations >= 0) & (relations < self._num_relations)
        return np.where(in_domain, heads * self._num_relations + relations, -1)

    def _encode_rt(self, relations, tails) -> np.ndarray:
        """Injective ``(r, t)`` key; out-of-domain ids yield -1, matching no stored key."""
        relations = np.asarray(relations, dtype=np.int64)
        tails = np.asarray(tails, dtype=np.int64)
        in_domain = (relations >= 0) & (tails >= 0) & (tails < self._num_entities)
        return np.where(in_domain, relations * self._num_entities + tails, -1)

    # ------------------------------------------------------------------ range lookups
    def _ranges(self, keys: np.ndarray, sorted_keys: np.ndarray, ptr: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """CSR ``(start, end)`` ranges of a batch of encoded keys (0-length when absent)."""
        keys = np.atleast_1d(np.asarray(keys, dtype=np.int64))
        if sorted_keys.size == 0:
            zeros = np.zeros(len(keys), dtype=np.int64)
            return zeros, zeros
        pos = np.searchsorted(sorted_keys, keys)
        clipped = np.minimum(pos, len(sorted_keys) - 1)
        found = sorted_keys[clipped] == keys
        starts = np.where(found, ptr[clipped], 0)
        ends = np.where(found, ptr[clipped + 1], 0)
        return starts, ends

    def _tail_range(self, head: int, relation: int) -> Tuple[int, int]:
        starts, ends = self._ranges(self._encode_hr(head, relation), self._tail_keys, self._tail_ptr)
        return int(starts[0]), int(ends[0])

    def _head_range(self, relation: int, tail: int) -> Tuple[int, int]:
        starts, ends = self._ranges(self._encode_rt(relation, tail), self._head_keys, self._head_ptr)
        return int(starts[0]), int(ends[0])

    # ------------------------------------------------------------------ point lookups
    def known_tails(self, head: int, relation: int) -> Set[int]:
        """All tails t such that (head, relation, t) is a known true triple."""
        return set(self.known_tails_array(head, relation).tolist())

    def known_heads(self, relation: int, tail: int) -> Set[int]:
        """All heads h such that (h, relation, tail) is a known true triple."""
        return set(self.known_heads_array(relation, tail).tolist())

    def known_tails_array(self, head: int, relation: int) -> np.ndarray:
        """Sorted known tails of ``(head, relation)`` as an int64 array (a view)."""
        start, end = self._tail_range(head, relation)
        return self._tail_vals[start:end]

    def known_heads_array(self, relation: int, tail: int) -> np.ndarray:
        """Sorted known heads of ``(relation, tail)`` as an int64 array (a view)."""
        start, end = self._head_range(relation, tail)
        return self._head_vals[start:end]

    def contains(self, head: int, relation: int, tail: int) -> bool:
        """Whether the exact triple is known true (one binary search)."""
        head, relation, tail = int(head), int(relation), int(tail)
        if self._triple_keys.size == 0:
            return False
        if min(head, relation, tail) < 0 or relation >= self._num_relations or tail >= self._num_entities:
            return False  # outside the key-encoding domain: cannot be stored
        key = (head * self._num_relations + relation) * self._num_entities + tail
        pos = int(np.searchsorted(self._triple_keys, key))
        return pos < len(self._triple_keys) and int(self._triple_keys[pos]) == key

    def contains_batch(self, triples: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`contains` over a ``(n, 3)`` triple array (bool array)."""
        triples = np.atleast_2d(np.asarray(triples, dtype=np.int64))
        if triples.shape[0] == 0 or self._triple_keys.size == 0:
            return np.zeros(triples.shape[0], dtype=bool)
        heads, relations, tails = triples[:, 0], triples[:, 1], triples[:, 2]
        in_domain = (
            (heads >= 0) & (relations >= 0) & (tails >= 0)
            & (relations < self._num_relations) & (tails < self._num_entities)
        )
        keys = np.where(
            in_domain, (heads * self._num_relations + relations) * self._num_entities + tails, -1
        )
        pos = np.minimum(np.searchsorted(self._triple_keys, keys), len(self._triple_keys) - 1)
        return in_domain & (self._triple_keys[pos] == keys)

    def __len__(self) -> int:
        return len(self._triples)

    # ------------------------------------------------------------------ batched filters
    def flat_filter_indices(self, batch: np.ndarray, direction: str) -> Tuple[np.ndarray, np.ndarray]:
        """All exclusions of a ``(n, 3)`` triple batch as ``(row, column)`` arrays.

        ``direction='tail'`` excludes the known tails of each row's ``(h, r)``,
        ``direction='head'`` the known heads of each row's ``(r, t)``.  The true target
        entity of each triple is *included* (the caller restores its score after the
        masked assignment), so one fancy-indexed store replaces a per-row mask loop.
        """
        flat = self.flat_filter(batch, direction)
        return flat.batch_indices(0, len(flat.offsets) - 1)

    def flat_filter(self, batch: np.ndarray, direction: str, memoize: bool = True) -> FlatFilter:
        """The :class:`FlatFilter` of a triple array, LRU-memoised by content digest.

        The memo makes re-ranking an unchanged split (the dominant evaluation pattern:
        early stopping re-ranks the same validation split every few epochs, a search
        does so for every candidate) cost two searchsorted passes exactly once.  Pass
        ``memoize=False`` for one-off arrays (e.g. the per-relation subsets of
        ``RankingEvaluator.per_relation``) so they cannot churn the hot split entries
        out of the cache.
        """
        batch = np.ascontiguousarray(np.atleast_2d(np.asarray(batch, dtype=np.int64)))
        if not memoize:
            return self._build_flat_filter(batch, direction)
        key = (direction, batch.shape[0], hashlib.sha256(batch.tobytes()).digest())
        cached = self._flat_cache.get(key)
        if cached is not None:
            self._flat_cache.move_to_end(key)
            return cached
        flat = self._build_flat_filter(batch, direction)
        while len(self._flat_cache) >= self._flat_cache_max:
            self._flat_cache.popitem(last=False)
        self._flat_cache[key] = flat
        return flat

    def _build_flat_filter(self, batch: np.ndarray, direction: str) -> FlatFilter:
        if direction == "tail":
            keys = self._encode_hr(batch[:, 0], batch[:, 1])
            sorted_keys, ptr, vals = self._tail_keys, self._tail_ptr, self._tail_vals
        elif direction == "head":
            keys = self._encode_rt(batch[:, 1], batch[:, 2])
            sorted_keys, ptr, vals = self._head_keys, self._head_ptr, self._head_vals
        else:
            raise ValueError(f"direction must be 'tail' or 'head', got {direction!r}")
        starts, ends = self._ranges(keys, sorted_keys, ptr)
        counts = ends - starts
        total = int(counts.sum())
        offsets = np.zeros(len(batch) + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        if total == 0:
            return FlatFilter(cols=_EMPTY, offsets=offsets)
        # Expand the (start, end) ranges into one flat gather index:
        # positions [offsets[i], offsets[i+1]) map to vals[starts[i] + 0..counts[i]).
        gather = np.arange(total, dtype=np.int64) + np.repeat(starts - offsets[:-1], counts)
        return FlatFilter(cols=vals[gather], offsets=offsets)

    # ------------------------------------------------------------------ dense masks
    def tail_filter_mask(self, head: int, relation: int, true_tail: int, num_entities: int) -> np.ndarray:
        """Boolean mask of candidates to *exclude* when ranking the tail of (head, relation, true_tail).

        The true tail itself is never excluded.
        """
        mask = np.zeros(num_entities, dtype=bool)
        mask[self.known_tails_array(head, relation)] = True
        mask[true_tail] = False
        return mask

    def head_filter_mask(self, relation: int, tail: int, true_head: int, num_entities: int) -> np.ndarray:
        """Boolean mask of candidates to *exclude* when ranking the head of (true_head, relation, tail)."""
        mask = np.zeros(num_entities, dtype=bool)
        mask[self.known_heads_array(relation, tail)] = True
        mask[true_head] = False
        return mask
