"""Serving subsystem: persist trained models and answer link-prediction queries.

The reproduction pipeline ends at a trained :class:`~repro.models.kge.KGEModel`; this
package turns that artifact into a queryable service:

- :mod:`repro.serve.artifacts` -- a versioned on-disk registry that saves/loads model
  weights, scoring structures, relation-group assignments and vocabularies as an
  ``.npz`` archive plus a JSON manifest.
- :mod:`repro.serve.engine` -- :class:`LinkPredictionEngine`, batched head/tail
  completion with fully vectorised all-entity scoring, filtered top-k against known
  triples, an LRU result cache and optional precomputed per-relation score caches.
- :mod:`repro.serve.service` -- :class:`PredictionService`, a request/response facade
  with micro-batching and latency/throughput statistics reported through
  :mod:`repro.bench.reporting`.
- :mod:`repro.serve.frontend` -- :class:`ServingFrontend`, the robustness layer:
  bounded admission queue with load shedding, per-request deadlines, time-based
  micro-batch flushing, graceful drain, and validated hot-reload with rollback via
  :class:`EngineReloader`.
- :mod:`repro.serve.http` -- :class:`HttpFrontendServer`, a stdlib-only asyncio
  HTTP/1.1 transport (``/v1/predict``, ``/healthz``, ``/readyz``, ``/metrics``,
  ``/v1/reload``, ``/v1/graph/delta``) behind ``python -m repro serve --http``.

Live graphs: with a :class:`~repro.stream.MutableGraphView` attached, the frontend
accepts streaming :class:`~repro.stream.GraphDelta` updates -- the filter index is
merged incrementally, caches are invalidated per touched relation, and every result
is stamped with the serving ``graph_version`` (see ``docs/STREAMING.md``).
"""

from repro.serve.artifacts import (
    ArtifactError,
    ArtifactRef,
    ModelArtifactRegistry,
    load_model_artifact,
    save_model_artifact,
)
from repro.serve.engine import LinkPredictionEngine, LinkQuery, TopKResult
from repro.serve.frontend import (
    DeadlineExceededError,
    DrainingError,
    EngineReloader,
    FrontendConfig,
    FrontendError,
    OverloadedError,
    ReloadConfig,
    ServingFrontend,
)
from repro.serve.http import BackgroundHttpServer, HttpFrontendServer
from repro.serve.service import (
    PredictionService,
    ServiceConfig,
    ServiceStats,
)

__all__ = [
    "ArtifactError",
    "ArtifactRef",
    "ModelArtifactRegistry",
    "save_model_artifact",
    "load_model_artifact",
    "LinkPredictionEngine",
    "LinkQuery",
    "TopKResult",
    "PredictionService",
    "ServiceConfig",
    "ServiceStats",
    "ServingFrontend",
    "FrontendConfig",
    "FrontendError",
    "OverloadedError",
    "DrainingError",
    "DeadlineExceededError",
    "EngineReloader",
    "ReloadConfig",
    "HttpFrontendServer",
    "BackgroundHttpServer",
]
