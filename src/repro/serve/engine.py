"""Batched link-prediction inference over a trained :class:`~repro.models.kge.KGEModel`.

The engine answers *completion queries*: given ``(head, relation, ?)`` return the top-k
candidate tails (and symmetrically ``(?, relation, tail)`` for heads).  Scoring is fully
vectorised -- a batch of queries becomes one all-entity scoring matrix op per direction,
the same kernel the 1-vs-all training loss uses -- and results are optionally *filtered*
against a :class:`~repro.kg.filter_index.FilterIndex` so that already-known true triples
do not crowd out novel predictions.

Two caches sit in front of the scorer:

- an LRU cache of finished top-k results keyed by ``(direction, entity, relation, k)``,
  which absorbs repeated queries, and
- optional per-relation score caches (:meth:`LinkPredictionEngine.precompute_relation`)
  holding the full ``num_entities x num_entities`` score matrix of a hot relation, which
  turns every query against that relation into a row lookup.

Graph deltas version the engine: :meth:`LinkPredictionEngine.apply_delta` derives a new
engine for an updated graph snapshot, carrying over every cache entry whose relation is
untouched by the delta and dropping the rest (the invalidation set is exactly the
relations appearing in the delta -- filtered results of other relations cannot change).
Results are stamped with the serving ``graph_version`` so staleness is observable.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.kg.filter_index import FilterIndex
from repro.kg.graph import KnowledgeGraph
from repro.kg.vocab import Vocabulary
from repro.models.kge import KGEModel
from repro.scoring.kernels import normalize_chunk_size
from repro.utils.serialization import PathLike


@dataclass(frozen=True)
class LinkQuery:
    """One completion query: exactly one of ``head`` / ``tail`` must be given.

    ``head`` set means "complete the tail of (head, relation, ?)"; ``tail`` set means
    "complete the head of (?, relation, tail)".
    """

    relation: int
    head: Optional[int] = None
    tail: Optional[int] = None
    k: int = 10

    def __post_init__(self) -> None:
        if (self.head is None) == (self.tail is None):
            raise ValueError("exactly one of head / tail must be provided")
        if self.k <= 0:
            raise ValueError("k must be positive")

    @property
    def direction(self) -> str:
        """``'tail'`` when predicting tails, ``'head'`` when predicting heads."""
        return "tail" if self.head is not None else "head"

    @property
    def anchor(self) -> int:
        """The known entity of the query."""
        return self.head if self.head is not None else self.tail


@dataclass(frozen=True, eq=False)
class TopKResult:
    """Ranked completion candidates for one query (best first).

    Field-wise equality is disabled: the array payloads make the generated ``__eq__``
    ambiguous, so results compare by identity.
    """

    query: LinkQuery
    entities: np.ndarray
    scores: np.ndarray
    labels: Optional[Tuple[str, ...]] = None
    #: ``graph_version`` of the snapshot this result is valid for.  Cached results that
    #: survive a delta (their relation untouched) are re-stamped to the new version on
    #: their next hit, because selective invalidation proves them still current.
    graph_version: int = 0

    def pairs(self) -> List[Tuple[int, float]]:
        """``(entity_id, score)`` tuples, best first."""
        return [(int(e), float(s)) for e, s in zip(self.entities, self.scores)]

    def __len__(self) -> int:
        return len(self.entities)


@dataclass
class EngineStats:
    """Counters describing how queries were answered.

    ``deltas_applied`` / ``cache_entries_invalidated`` / ``graph_version`` track the
    streaming-update lifecycle; the stats object is shared across the engine lineage
    produced by :meth:`LinkPredictionEngine.apply_delta`, so the counters are
    cumulative over all snapshots of one served model.
    """

    queries: int = 0
    scored: int = 0
    lru_hits: int = 0
    precomputed_hits: int = 0
    batches: int = 0
    deltas_applied: int = 0
    cache_entries_invalidated: int = 0
    graph_version: int = 0

    def as_row(self) -> Dict[str, object]:
        return {
            "queries": self.queries,
            "scored": self.scored,
            "lru_hits": self.lru_hits,
            "precomputed_hits": self.precomputed_hits,
            "batches": self.batches,
            "deltas_applied": self.deltas_applied,
            "cache_entries_invalidated": self.cache_entries_invalidated,
            "graph_version": self.graph_version,
        }


class LinkPredictionEngine:
    """Answers batched head/tail completion queries against a trained model.

    Parameters
    ----------
    model:
        The trained KGE model (any mix of scoring functions / relation groups).
    filter_index:
        Known-true triples to exclude from candidates when ``filtered`` is on.  Without
        an index the engine silently serves unfiltered results.
    entity_vocab, relation_vocab:
        Optional symbol tables; when present, results can be labelled and queries can be
        issued by symbol.
    filtered:
        Whether known true completions are removed from the candidate list (default on:
        a serving system should surface *novel* links).
    cache_size:
        Capacity of the LRU result cache (0 disables it).
    score_batch_size:
        Maximum number of queries scored in one all-entity matrix op (bounds memory).
    entity_chunk_size:
        When set, all-entity scoring streams the candidate axis in chunks of (at
        most) this many entities and keeps a running top-k per query, bounding peak
        memory at ``O(score_batch_size * entity_chunk_size)`` instead of
        ``O(score_batch_size * num_entities)``.  The chunk grid sits on the absolute
        kernel tile grid, so streamed answers are bit-identical to unchunked ones.
    """

    def __init__(
        self,
        model: KGEModel,
        filter_index: Optional[FilterIndex] = None,
        entity_vocab: Optional[Vocabulary] = None,
        relation_vocab: Optional[Vocabulary] = None,
        filtered: bool = True,
        cache_size: int = 2048,
        score_batch_size: int = 256,
        max_precompute_entities: int = 4096,
        graph_version: int = 0,
        entity_chunk_size: Optional[int] = None,
    ) -> None:
        if cache_size < 0:
            raise ValueError("cache_size must be non-negative")
        if score_batch_size <= 0:
            raise ValueError("score_batch_size must be positive")
        self.model = model
        self.filter_index = filter_index
        self.entity_vocab = entity_vocab
        self.relation_vocab = relation_vocab
        self.filtered = filtered and filter_index is not None
        self.cache_size = cache_size
        self.score_batch_size = score_batch_size
        self.max_precompute_entities = max_precompute_entities
        self.entity_chunk_size = (
            None if entity_chunk_size is None else normalize_chunk_size(entity_chunk_size)
        )
        self.graph_version = int(graph_version)
        self.stats = EngineStats(graph_version=self.graph_version)
        self._lru: "OrderedDict[Tuple[str, int, int, int], TopKResult]" = OrderedDict()
        self._relation_scores: Dict[Tuple[int, str], np.ndarray] = {}

    # ------------------------------------------------------------------ constructors
    @classmethod
    def from_graph(cls, model: KGEModel, graph: KnowledgeGraph, **kwargs) -> "LinkPredictionEngine":
        """Engine with the graph's filter index and vocabularies attached."""
        kwargs.setdefault("filter_index", graph.filter_index())
        kwargs.setdefault("entity_vocab", graph.entity_vocab)
        kwargs.setdefault("relation_vocab", graph.relation_vocab)
        kwargs.setdefault("graph_version", graph.graph_version)
        return cls(model, **kwargs)

    @classmethod
    def from_artifact(
        cls,
        source: Union["ModelArtifactRegistry", PathLike],
        name: Optional[str] = None,
        version: Optional[int] = None,
        graph: Optional[KnowledgeGraph] = None,
        mmap: bool = False,
        **kwargs,
    ) -> "LinkPredictionEngine":
        """Load a stored model and wrap it in an engine.

        ``source`` is either a :class:`~repro.serve.artifacts.ModelArtifactRegistry`
        (then ``name`` / ``version`` select the artifact) or a path to one artifact
        directory.  When ``graph`` is given its filter index backs filtered serving;
        vocabularies default to the ones stored in the manifest.  ``mmap=True`` serves
        the embedding tables straight off disk (see
        :func:`~repro.serve.artifacts.load_model_artifact`); scores are bit-identical
        to an in-memory load.
        """
        from repro.serve.artifacts import (
            ModelArtifactRegistry,
            load_model_artifact,
            manifest_vocabularies,
        )

        if isinstance(source, ModelArtifactRegistry):
            if name is None:
                raise ValueError("an artifact name is required when loading from a registry")
            model, manifest = source.load(name, version=version, mmap=mmap)
        else:
            model, manifest = load_model_artifact(source, mmap=mmap)
        entity_vocab, relation_vocab = manifest_vocabularies(manifest)
        if graph is not None:
            # The manifest wins; the graph fills in whatever it did not store.
            entity_vocab = entity_vocab or graph.entity_vocab
            relation_vocab = relation_vocab or graph.relation_vocab
            kwargs.setdefault("filter_index", graph.filter_index())
            kwargs.setdefault("graph_version", graph.graph_version)
        kwargs.setdefault("entity_vocab", entity_vocab)
        kwargs.setdefault("relation_vocab", relation_vocab)
        return cls(model, **kwargs)

    # ------------------------------------------------------------------ public API
    def top_k(
        self,
        relation: int,
        head: Optional[int] = None,
        tail: Optional[int] = None,
        k: int = 10,
    ) -> TopKResult:
        """Answer a single completion query (convenience wrapper over :meth:`predict`)."""
        return self.predict([LinkQuery(relation=relation, head=head, tail=tail, k=k)])[0]

    def predict(self, queries: Sequence[LinkQuery]) -> List[TopKResult]:
        """Answer a batch of queries; uncached ones share one matrix op per direction."""
        queries = list(queries)
        self._validate(queries)
        self.stats.queries += len(queries)
        results: List[Optional[TopKResult]] = [None] * len(queries)
        pending: List[Tuple[int, LinkQuery]] = []

        for index, query in enumerate(queries):
            cached = self._lru_get(query)
            if cached is not None:
                self.stats.lru_hits += 1
                results[index] = cached
                continue
            row = self._precomputed_row(query)
            if row is not None:
                self.stats.precomputed_hits += 1
                results[index] = self._finish(query, row)
                continue
            pending.append((index, query))

        streamed = (
            self.entity_chunk_size is not None
            and self.entity_chunk_size < self.model.num_entities
        )
        for direction in ("tail", "head"):
            group = [(i, q) for i, q in pending if q.direction == direction]
            for start in range(0, len(group), self.score_batch_size):
                chunk = group[start : start + self.score_batch_size]
                self.stats.batches += 1
                self.stats.scored += len(chunk)
                if streamed:
                    for result, (index, query) in zip(self._predict_streamed(chunk, direction), chunk):
                        results[index] = result
                    continue
                scores = self._score_chunk([q for _, q in chunk], direction)
                for row_scores, (index, query) in zip(scores, chunk):
                    results[index] = self._finish(query, row_scores)

        return results  # type: ignore[return-value]

    def predict_symbols(
        self,
        relation: str,
        head: Optional[str] = None,
        tail: Optional[str] = None,
        k: int = 10,
    ) -> TopKResult:
        """Query by symbol instead of id (requires the vocabularies)."""
        if self.relation_vocab is None or self.entity_vocab is None:
            raise ValueError("symbol queries require entity and relation vocabularies")
        if (head is None) == (tail is None):
            raise ValueError("exactly one of head / tail must be provided")
        return self.top_k(
            relation=self.relation_vocab.id_of(relation),
            head=self.entity_vocab.id_of(head) if head is not None else None,
            tail=self.entity_vocab.id_of(tail) if tail is not None else None,
            k=k,
        )

    # ------------------------------------------------------------------ streaming updates
    def apply_delta(self, graph: KnowledgeGraph, delta) -> "LinkPredictionEngine":
        """A successor engine serving an updated graph snapshot, with selective invalidation.

        ``graph`` is the *new* snapshot (typically produced by
        :meth:`repro.stream.MutableGraphView.apply`) and ``delta`` the
        :class:`~repro.stream.GraphDelta` that produced it.  The successor shares the
        model, vocabularies, configuration and the cumulative :class:`EngineStats`
        object; its filter index is the snapshot's (incrementally merged) index.  Cache
        entries keyed by a relation in ``delta.touched_relations()`` are dropped --
        their filtered results may have changed -- while every other LRU result and
        precomputed relation matrix carries over untouched.  ``self`` keeps serving the
        old snapshot unmodified, so an atomic swap has no blackout window.
        """
        touched = set(int(r) for r in delta.touched_relations())
        successor = self.__class__(
            model=self.model,
            filter_index=graph.filter_index(),
            entity_vocab=self.entity_vocab,
            relation_vocab=self.relation_vocab,
            filtered=self.filtered,
            cache_size=self.cache_size,
            score_batch_size=self.score_batch_size,
            max_precompute_entities=self.max_precompute_entities,
            graph_version=graph.graph_version,
            entity_chunk_size=self.entity_chunk_size,
        )
        invalidated = 0
        for key, result in self._lru.items():
            if key[2] in touched:
                invalidated += 1
            else:
                successor._lru[key] = result
        for key, matrix in self._relation_scores.items():
            if key[0] in touched:
                invalidated += 1
            else:
                successor._relation_scores[key] = matrix
        successor.stats = self.stats
        successor.stats.deltas_applied += 1
        successor.stats.cache_entries_invalidated += invalidated
        successor.stats.graph_version = graph.graph_version
        return successor

    # ------------------------------------------------------------------ caches
    def precompute_relation(self, relation: int, direction: str = "tail") -> np.ndarray:
        """Materialise the full score matrix of one relation for ``direction``.

        Row ``e`` of the returned ``(num_entities, num_entities)`` matrix holds the raw
        (unfiltered) scores of every candidate for the query anchored at entity ``e``.
        Subsequent queries against this relation become row lookups.
        """
        self._validate_relation(relation)
        if direction not in ("tail", "head"):
            raise ValueError(f"direction must be 'tail' or 'head', got {direction!r}")
        if self.model.num_entities > self.max_precompute_entities:
            raise ValueError(
                f"refusing to precompute {self.model.num_entities}^2 scores "
                f"(max_precompute_entities={self.max_precompute_entities})"
            )
        key = (int(relation), direction)
        if key not in self._relation_scores:
            anchors = np.arange(self.model.num_entities, dtype=np.int64)
            matrix = np.empty((self.model.num_entities, self.model.num_entities), dtype=np.float64)
            for start in range(0, len(anchors), self.score_batch_size):
                chunk = anchors[start : start + self.score_batch_size]
                triples = np.zeros((len(chunk), 3), dtype=np.int64)
                triples[:, 1] = relation
                triples[:, 0 if direction == "tail" else 2] = chunk
                matrix[start : start + len(chunk)] = self.model.score_all_arrays(triples, direction)
            self._relation_scores[key] = matrix
        return self._relation_scores[key]

    def clear_caches(self) -> None:
        """Drop the LRU result cache and all precomputed relation matrices."""
        self._lru.clear()
        self._relation_scores.clear()

    def cache_info(self) -> Dict[str, object]:
        """Sizes and hit counters of both cache layers."""
        return {
            "lru_entries": len(self._lru),
            "lru_capacity": self.cache_size,
            "lru_hits": self.stats.lru_hits,
            "precomputed_relations": len(self._relation_scores),
            "precomputed_hits": self.stats.precomputed_hits,
        }

    def label(self, entity_id: int) -> str:
        """Symbol of an entity id (falls back to the numeric id without a vocabulary)."""
        if self.entity_vocab is not None:
            return self.entity_vocab.symbol_of(int(entity_id))
        return str(int(entity_id))

    def validate_query(self, query: LinkQuery) -> None:
        """Raise ``ValueError`` when the query's ids are out of range for the model.

        The service facade calls this at submit time so a malformed query is rejected
        before it can join (and poison) a micro-batch.
        """
        self._validate_relation(query.relation)
        if not 0 <= query.anchor < self.model.num_entities:
            raise ValueError(
                f"entity id {query.anchor} out of range [0, {self.model.num_entities})"
            )

    # ------------------------------------------------------------------ internals
    def _validate(self, queries: Sequence[LinkQuery]) -> None:
        for query in queries:
            self.validate_query(query)

    def _validate_relation(self, relation: int) -> None:
        if not 0 <= relation < self.model.num_relations:
            raise ValueError(
                f"relation id {relation} out of range [0, {self.model.num_relations})"
            )

    def _score_chunk(self, queries: Sequence[LinkQuery], direction: str) -> np.ndarray:
        triples = np.zeros((len(queries), 3), dtype=np.int64)
        triples[:, 1] = [q.relation for q in queries]
        triples[:, 0 if direction == "tail" else 2] = [q.anchor for q in queries]
        # Compiled no-grad kernels: one matmul batch, no autodiff Tensor construction.
        return self.model.score_all_arrays(triples, direction)

    def _predict_streamed(
        self, chunk: Sequence[Tuple[int, LinkQuery]], direction: str
    ) -> List[TopKResult]:
        """Answer one score batch while streaming the candidate axis in chunks.

        Each chunk's scores are bit-identical to the corresponding columns of the full
        matrix (absolute tile grid), per-chunk top-k candidates are a superset of the
        global winners within the chunk, and the final merge uses the same
        (score desc, entity asc) ordering as :func:`_top_k` -- so the emitted results
        match the unchunked path exactly, at ``O(batch * entity_chunk_size)`` peak
        memory.
        """
        queries = [query for _, query in chunk]
        triples = np.zeros((len(queries), 3), dtype=np.int64)
        triples[:, 1] = [q.relation for q in queries]
        triples[:, 0 if direction == "tail" else 2] = [q.anchor for q in queries]
        known: List[Optional[np.ndarray]] = [None] * len(queries)
        if self.filtered:
            for i, query in enumerate(queries):
                if direction == "tail":
                    known[i] = self.filter_index.known_tails_array(query.head, query.relation)
                else:
                    known[i] = self.filter_index.known_heads_array(query.relation, query.tail)
        candidate_ids: List[List[np.ndarray]] = [[] for _ in queries]
        candidate_scores: List[List[np.ndarray]] = [[] for _ in queries]
        num_entities = self.model.num_entities
        step = self.entity_chunk_size
        for a in range(0, num_entities, step):
            b = min(a + step, num_entities)
            scores = self.model.score_chunk_entities(triples, direction, a, b)
            for i, query in enumerate(queries):
                row = scores[i]
                if known[i] is not None and known[i].size:
                    local = known[i][(known[i] >= a) & (known[i] < b)] - a
                    if local.size:
                        row[local] = -np.inf
                entities, values = _top_k(row, query.k)
                if entities.size:
                    candidate_ids[i].append(entities + a)
                    candidate_scores[i].append(values)
        results = []
        for i, query in enumerate(queries):
            if candidate_ids[i]:
                entities = np.concatenate(candidate_ids[i])
                values = np.concatenate(candidate_scores[i])
                order = np.lexsort((entities, -values))[: min(query.k, len(entities))]
                entities, values = entities[order], values[order]
            else:
                entities = np.empty(0, dtype=np.int64)
                values = np.empty(0, dtype=np.float64)
            results.append(self._emit(query, entities, values))
        return results

    def _precomputed_row(self, query: LinkQuery) -> Optional[np.ndarray]:
        # A view into the cached matrix; _finish copies before its only mutation.
        matrix = self._relation_scores.get((query.relation, query.direction))
        if matrix is None:
            return None
        return matrix[query.anchor]

    def _finish(self, query: LinkQuery, scores: np.ndarray) -> TopKResult:
        if self.filtered:
            scores = scores.copy()
            if query.direction == "tail":
                known = self.filter_index.known_tails_array(query.head, query.relation)
            else:
                known = self.filter_index.known_heads_array(query.relation, query.tail)
            if known.size:
                scores[known] = -np.inf
        entities, top_scores = _top_k(scores, query.k)
        return self._emit(query, entities, top_scores)

    def _emit(self, query: LinkQuery, entities: np.ndarray, scores: np.ndarray) -> TopKResult:
        labels = None
        if self.entity_vocab is not None:
            labels = tuple(self.entity_vocab.symbol_of(int(e)) for e in entities)
        result = TopKResult(
            query=query,
            entities=entities,
            scores=scores,
            labels=labels,
            graph_version=self.graph_version,
        )
        self._lru_put(query, result)
        return result

    # ------------------------------------------------------------------ LRU plumbing
    @staticmethod
    def _lru_key(query: LinkQuery) -> Tuple[str, int, int, int]:
        return (query.direction, query.anchor, query.relation, query.k)

    def _lru_get(self, query: LinkQuery) -> Optional[TopKResult]:
        if self.cache_size == 0:
            return None
        key = self._lru_key(query)
        result = self._lru.get(key)
        if result is not None:
            if result.graph_version != self.graph_version:
                # The entry survived a delta swap, which proves its relation was
                # untouched -- the result is still current, so re-stamp it.
                result = dataclasses.replace(result, graph_version=self.graph_version)
                self._lru[key] = result
            self._lru.move_to_end(key)
        return result

    def _lru_put(self, query: LinkQuery, result: TopKResult) -> None:
        if self.cache_size == 0:
            return
        key = self._lru_key(query)
        self._lru[key] = result
        self._lru.move_to_end(key)
        while len(self._lru) > self.cache_size:
            self._lru.popitem(last=False)

    def __repr__(self) -> str:
        return (
            f"LinkPredictionEngine(entities={self.model.num_entities}, "
            f"relations={self.model.num_relations}, filtered={self.filtered}, "
            f"cache_size={self.cache_size})"
        )


def _top_k(scores: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
    """Indices and values of the ``k`` best scores, sorted best-first.

    Ties are broken by entity id (ascending) so results are deterministic — including
    ties that straddle the selection boundary, where a bare ``argpartition`` would pick
    an arbitrary subset.  Fully filtered candidates (``-inf``) are dropped even if
    fewer than ``k`` remain.
    """
    k = min(int(k), len(scores))
    if k < len(scores):
        # argpartition chooses *which* tied candidates survive arbitrarily, so widen
        # the candidate set to everything scoring at least the k-th value and let the
        # deterministic sort below settle the boundary.
        kth = scores[np.argpartition(-scores, k - 1)[k - 1]]
        candidates = np.where(scores >= kth)[0]
    else:
        candidates = np.arange(len(scores))
    order = candidates[np.lexsort((candidates, -scores[candidates]))][:k]
    keep = np.isfinite(scores[order])
    order = order[keep]
    return order.astype(np.int64), scores[order]
