"""Transport-agnostic serving front-end: admission control, deadlines, drain, hot-reload.

:class:`ServingFrontend` is the robustness layer between a network transport (the HTTP
server in :mod:`repro.serve.http`, or anything else that can await a coroutine) and the
micro-batching :class:`~repro.serve.service.PredictionService`:

- **Admission control.**  Requests enter a bounded queue; once the queue is full every
  new request is *shed* immediately with :class:`OverloadedError` (the HTTP layer turns
  this into ``503`` + ``Retry-After``) instead of growing memory without bound.
- **Deadlines.**  Every request carries a deadline.  A request that expires while
  queued is cancelled *before* scoring — it never occupies a batch slot — and the
  caller gets :class:`DeadlineExceededError` (HTTP ``504``).
- **Time-based batching.**  A background loop collects queued requests into
  micro-batches of at most ``max_batch_size``, waiting at most ``flush_interval_s`` for
  stragglers, so trickle traffic is answered promptly and bursts are scored together.
- **Graceful drain.**  :meth:`ServingFrontend.drain` stops admitting, answers every
  already-accepted request, then tears the loops down — the SIGTERM path.
- **Hot-reload with rollback.**  An :class:`EngineReloader` polls the artifact registry
  for new model versions, loads and smoke-tests them *off* the serving path, and
  atomically swaps the engine only after validation passes.  A version that fails
  checksum or smoke queries is rolled back (the previous engine keeps serving, zero
  in-flight requests fail), retried with exponential backoff, and circuit-broken after
  ``max_attempts`` failures so a persistently bad artifact cannot flap the server.
- **Streaming graph deltas.**  With a :class:`~repro.stream.MutableGraphView` attached,
  :meth:`ServingFrontend.apply_graph_delta` validates a delta off the event loop,
  produces the next graph snapshot (incremental filter-index merge, bumped
  ``graph_version``) and swaps in a successor engine through the same
  validate-first single-assignment path as hot reload -- in-flight batches finish on
  the snapshot they started with, and a rejected delta provably changes nothing.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.bench.reporting import summarize_latencies
from repro.serve.artifacts import ModelArtifactRegistry, manifest_vocabularies
from repro.serve.engine import LinkPredictionEngine, LinkQuery, TopKResult
from repro.serve.service import LATENCY_WINDOW, PredictionService, ServiceConfig
from repro.stream.delta import GraphDelta, MutableGraphView


# ---------------------------------------------------------------------------- errors
class FrontendError(RuntimeError):
    """Base class of the serving front-end's request-rejection errors."""


class OverloadedError(FrontendError):
    """The admission queue is full; retry after ``retry_after_s`` seconds (HTTP 503)."""

    def __init__(self, message: str, retry_after_s: float) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class DrainingError(FrontendError):
    """The server is draining for shutdown and admits no new requests (HTTP 503)."""


class DeadlineExceededError(FrontendError):
    """The request's deadline expired before a result was produced (HTTP 504)."""


# ---------------------------------------------------------------------------- configs
@dataclass
class FrontendConfig:
    """Admission, deadline and batching tunables of :class:`ServingFrontend`.

    ``max_queue_depth`` (default 256, positive) bounds how many accepted requests may
    wait for scoring; arrivals beyond it are shed with :class:`OverloadedError`.
    ``high_water`` (default ``None`` = three quarters of ``max_queue_depth``, at most
    ``max_queue_depth``) is the queue depth at which readiness degrades — ``/readyz``
    reports not-ready so a load balancer steers traffic away *before* shedding starts.
    ``default_deadline_s`` (default 5.0, positive) applies to requests that name no
    deadline, and ``max_deadline_s`` (default 30.0, at least ``default_deadline_s``)
    caps client-supplied deadlines so one caller cannot park work forever.
    ``max_batch_size`` (default 64, positive) bounds one scoring micro-batch, while
    ``flush_interval_s`` (default 0.005, non-negative) is how long the batch loop waits
    for stragglers before scoring a partial batch.  ``retry_after_s`` (default 1.0,
    positive) is the back-off hint attached to shed responses.
    """

    max_queue_depth: int = 256
    high_water: Optional[int] = None
    default_deadline_s: float = 5.0
    max_deadline_s: float = 30.0
    max_batch_size: int = 64
    flush_interval_s: float = 0.005
    retry_after_s: float = 1.0

    def __post_init__(self) -> None:
        if self.max_queue_depth <= 0:
            raise ValueError("max_queue_depth must be positive")
        if self.high_water is None:
            self.high_water = max(1, (self.max_queue_depth * 3) // 4)
        if not 0 < self.high_water <= self.max_queue_depth:
            raise ValueError("high_water must be in (0, max_queue_depth]")
        if self.default_deadline_s <= 0:
            raise ValueError("default_deadline_s must be positive")
        if self.max_deadline_s < self.default_deadline_s:
            raise ValueError("max_deadline_s must be at least default_deadline_s")
        if self.max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if self.flush_interval_s < 0:
            raise ValueError("flush_interval_s must be non-negative")
        if self.retry_after_s <= 0:
            raise ValueError("retry_after_s must be positive")

    def service_config(self) -> ServiceConfig:
        """The matching :class:`~repro.serve.service.ServiceConfig` for the batcher."""
        return ServiceConfig(
            max_batch_size=self.max_batch_size,
            flush_interval_s=self.flush_interval_s or None,
        )


@dataclass
class ReloadConfig:
    """Polling, validation, backoff and circuit-breaker tunables of :class:`EngineReloader`.

    ``poll_interval_s`` (default 2.0, non-negative; 0 disables the background poll so
    reloads only happen on explicit request) is how often the registry is checked for a
    newer version.  ``smoke_queries`` (default 4, non-negative) and ``smoke_k`` (default
    5, positive) shape the validation traffic run against a candidate engine before it
    may serve.  A version that fails validation is retried after an exponential backoff
    starting at ``backoff_initial_s`` (default 0.5, non-negative), multiplied by
    ``backoff_multiplier`` (default 2.0, at least 1) per failure and capped at
    ``backoff_max_s`` (default 30.0, at least the initial backoff); after
    ``max_attempts`` (default 3, positive) failures the version's circuit breaker opens
    and it is never tried again (a newer version resets the process).
    """

    poll_interval_s: float = 2.0
    smoke_queries: int = 4
    smoke_k: int = 5
    max_attempts: int = 3
    backoff_initial_s: float = 0.5
    backoff_multiplier: float = 2.0
    backoff_max_s: float = 30.0

    def __post_init__(self) -> None:
        if self.poll_interval_s < 0:
            raise ValueError("poll_interval_s must be non-negative")
        if self.smoke_queries < 0:
            raise ValueError("smoke_queries must be non-negative")
        if self.smoke_k <= 0:
            raise ValueError("smoke_k must be positive")
        if self.max_attempts <= 0:
            raise ValueError("max_attempts must be positive")
        if self.backoff_initial_s < 0:
            raise ValueError("backoff_initial_s must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be at least 1")
        if self.backoff_max_s < self.backoff_initial_s:
            raise ValueError("backoff_max_s must be at least backoff_initial_s")


# ---------------------------------------------------------------------------- reloader
class EngineReloader:
    """Validated hot-reload of a registry model with rollback, backoff and circuit breaking.

    The reloader never touches the live engine until a candidate version has been fully
    loaded (checksum-verified by the registry), wrapped in a fresh engine, and answered
    ``smoke_queries`` finite-scored smoke queries.  Only then is ``on_swap`` invoked —
    so "rollback" is simply *not swapping*: the previous engine was never unplugged and
    no in-flight request can fail because of a bad artifact.

    :meth:`check_once` is synchronous and thread-safe; callers decide where it runs
    (the front-end uses a dedicated background executor).  Outcomes:

    - ``"up-to-date"``  — no version newer than the active one.
    - ``"swapped"``     — a newer version validated and is now serving.
    - ``"rolled-back"`` — a newer version failed validation; the previous version
      keeps serving and a retry is scheduled with exponential backoff.
    - ``"backing-off"`` — a retry is scheduled but its backoff has not elapsed yet.
    - ``"circuit-open"``— the newest version exhausted ``max_attempts``; it is
      blacklisted until an even newer version appears.
    """

    def __init__(
        self,
        registry: ModelArtifactRegistry,
        name: str,
        build_engine: Callable[..., LinkPredictionEngine],
        on_swap: Callable[[LinkPredictionEngine, int], None],
        active_version: int,
        config: Optional[ReloadConfig] = None,
        clock: Callable[[], float] = time.monotonic,
        mmap: bool = False,
    ) -> None:
        self.registry = registry
        self.name = name
        self.mmap = mmap
        self.build_engine = build_engine
        self.on_swap = on_swap
        self.config = config or ReloadConfig()
        self.clock = clock
        self.active_version = active_version
        self.previous_version: Optional[int] = None
        self.swaps = 0
        self.rollbacks = 0
        self.last_outcome = "up-to-date"
        self.last_error: Optional[str] = None
        self._attempts: Dict[int, int] = {}
        self._next_retry_at = 0.0
        self._broken: set = set()
        self._lock = threading.Lock()

    def check_once(self) -> str:
        """Poll the registry once; swap, roll back, back off, or do nothing."""
        with self._lock:
            outcome = self._check_locked()
            self.last_outcome = outcome
            return outcome

    def _check_locked(self) -> str:
        latest = self.registry.latest_version(self.name)
        if latest <= self.active_version:
            return "up-to-date"
        if latest in self._broken:
            return "circuit-open"
        if self._attempts.get(latest, 0) > 0 and self.clock() < self._next_retry_at:
            return "backing-off"
        try:
            engine = self._load_and_validate(latest)
        except Exception as error:  # noqa: BLE001 - any load/validation failure rolls back
            self.last_error = f"v{latest}: {error}"
            self.rollbacks += 1
            attempts = self._attempts.get(latest, 0) + 1
            self._attempts[latest] = attempts
            if attempts >= self.config.max_attempts:
                self._broken.add(latest)
            else:
                backoff = min(
                    self.config.backoff_initial_s * self.config.backoff_multiplier ** (attempts - 1),
                    self.config.backoff_max_s,
                )
                self._next_retry_at = self.clock() + backoff
            return "rolled-back"
        self.on_swap(engine, latest)
        self.previous_version = self.active_version
        self.active_version = latest
        self.swaps += 1
        self.last_error = None
        self._attempts.pop(latest, None)
        self._next_retry_at = 0.0
        return "swapped"

    def _load_and_validate(self, version: int) -> LinkPredictionEngine:
        # registry.load verifies the weights checksum against the manifest.
        model, manifest = self.registry.load(self.name, version, mmap=self.mmap)
        engine = self.build_engine(model=model, manifest=manifest, version=version)
        self._smoke_test(engine)
        return engine

    def _smoke_test(self, engine: LinkPredictionEngine) -> None:
        """Deterministic canary queries; any exception or non-finite score fails the swap.

        Non-finite scores are dropped by the engine's top-k, so a model whose weights
        degenerated to NaN answers every query with *zero* candidates — an all-empty
        smoke run therefore also fails the swap.
        """
        num_entities = engine.model.num_entities
        num_relations = engine.model.num_relations
        total_results = 0
        for index in range(self.config.smoke_queries):
            relation = index % num_relations
            entity = index % num_entities
            query = (
                LinkQuery(relation=relation, head=entity, k=self.config.smoke_k)
                if index % 2 == 0
                else LinkQuery(relation=relation, tail=entity, k=self.config.smoke_k)
            )
            result = engine.predict([query])[0]
            if not np.all(np.isfinite(result.scores)):
                raise RuntimeError(f"smoke query {query} produced non-finite scores")
            total_results += len(result)
        if self.config.smoke_queries > 0 and total_results == 0:
            raise RuntimeError(
                f"all {self.config.smoke_queries} smoke queries returned zero candidates"
            )

    def stats(self) -> Dict[str, object]:
        """Counters and state for the metrics endpoint."""
        with self._lock:
            return {
                "active_version": self.active_version,
                "previous_version": self.previous_version,
                "swaps": self.swaps,
                "rollbacks": self.rollbacks,
                "broken_versions": sorted(self._broken),
                "last_outcome": self.last_outcome,
                "last_error": self.last_error,
            }


# ---------------------------------------------------------------------------- frontend
@dataclass
class _PendingRequest:
    """One admitted query waiting for (or undergoing) scoring."""

    query: LinkQuery
    future: "asyncio.Future[TopKResult]"
    enqueued_at: float
    deadline_at: float


class ServingFrontend:
    """Admission-controlled, deadline-aware async façade over the prediction service.

    Lifecycle::

        frontend = ServingFrontend(engine, model_name="wn", version=1)
        await frontend.start()          # inside a running event loop
        result = await frontend.handle(LinkQuery(relation=0, head=1, k=5))
        await frontend.drain()          # answer everything accepted, then stop

    The scoring executor is a single thread, so micro-batches are serialized and the
    event loop stays free to accept, shed and time out requests while a batch scores.
    """

    def __init__(
        self,
        engine: LinkPredictionEngine,
        model_name: str = "model",
        version: int = 0,
        config: Optional[FrontendConfig] = None,
        service_config: Optional[ServiceConfig] = None,
        reloader: Optional[EngineReloader] = None,
        graph_view: Optional[MutableGraphView] = None,
    ) -> None:
        self.config = config or FrontendConfig()
        self.model_name = model_name
        self.version = version
        self.reloader = reloader
        #: The live-graph mutation point; ``None`` means delta requests are refused.
        self.graph_view = graph_view
        self.deltas_accepted = 0
        self.deltas_rejected = 0
        self._service = PredictionService(engine, service_config or self.config.service_config())
        self._queue: Optional["asyncio.Queue[_PendingRequest]"] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._batch_task: Optional["asyncio.Task[None]"] = None
        self._reload_task: Optional["asyncio.Task[None]"] = None
        self._stop_batching: Optional[asyncio.Event] = None
        self._score_executor: Optional[ThreadPoolExecutor] = None
        self._reload_executor: Optional[ThreadPoolExecutor] = None
        self._started = False
        self._draining = False
        self._in_flight = 0
        # Counters for /metrics; mutated only on the event loop thread.
        self.accepted = 0
        self.completed = 0
        self.shed = 0
        self.deadline_timeouts = 0
        self.cancelled_before_scoring = 0
        self.errors = 0
        self._latencies_ms: Deque[float] = deque(maxlen=LATENCY_WINDOW)

    # ------------------------------------------------------------------ lifecycle
    async def start(self) -> None:
        """Create the queue and background loops inside the running event loop."""
        if self._started:
            return
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue()
        self._stop_batching = asyncio.Event()
        self._score_executor = ThreadPoolExecutor(max_workers=1, thread_name_prefix="score")
        self._reload_executor = ThreadPoolExecutor(max_workers=1, thread_name_prefix="reload")
        self._batch_task = self._loop.create_task(self._batch_loop())
        if self.reloader is not None and self.reloader.config.poll_interval_s > 0:
            self._reload_task = self._loop.create_task(self._reload_loop())
        self._started = True
        self._draining = False

    async def drain(self) -> None:
        """Stop admitting, answer every accepted request, then stop the loops."""
        if not self._started:
            return
        self._draining = True
        await self._queue.join()
        self._stop_batching.set()
        if self._batch_task is not None:
            await self._batch_task
        if self._reload_task is not None:
            self._reload_task.cancel()
            try:
                await self._reload_task
            except asyncio.CancelledError:
                pass
        self._score_executor.shutdown(wait=True)
        self._reload_executor.shutdown(wait=True)
        self._started = False

    @property
    def draining(self) -> bool:
        """Whether the front-end is refusing new work while finishing accepted work."""
        return self._draining

    # ------------------------------------------------------------------ request path
    async def handle(self, query: LinkQuery, deadline_s: Optional[float] = None) -> TopKResult:
        """Admit, batch and score one query; raises the typed rejection errors.

        Raises :class:`DrainingError` during shutdown, :class:`OverloadedError` when
        the admission queue is full, :class:`DeadlineExceededError` when the deadline
        expires first, and whatever scoring raised (e.g. ``ValueError`` for ids out of
        range) otherwise.
        """
        if not self._started:
            raise FrontendError("frontend is not started")
        if self._draining:
            raise DrainingError("server is draining; no new requests are admitted")
        if self._queue.qsize() >= self.config.max_queue_depth:
            self.shed += 1
            raise OverloadedError(
                f"admission queue is full ({self.config.max_queue_depth} pending)",
                retry_after_s=self.config.retry_after_s,
            )
        deadline_s = min(
            deadline_s if deadline_s is not None else self.config.default_deadline_s,
            self.config.max_deadline_s,
        )
        if deadline_s <= 0:
            raise ValueError("deadline must be positive")
        now = time.monotonic()
        request = _PendingRequest(
            query=query,
            future=self._loop.create_future(),
            enqueued_at=now,
            deadline_at=now + deadline_s,
        )
        self.accepted += 1
        self._in_flight += 1
        self._queue.put_nowait(request)
        try:
            result = await asyncio.wait_for(request.future, timeout=deadline_s)
        except asyncio.TimeoutError:
            self.deadline_timeouts += 1
            raise DeadlineExceededError(
                f"deadline of {deadline_s * 1000:.0f} ms expired before scoring finished"
            ) from None
        finally:
            self._in_flight -= 1
        self.completed += 1
        self._latencies_ms.append((time.monotonic() - request.enqueued_at) * 1000.0)
        return result

    # ------------------------------------------------------------------ batching loop
    async def _batch_loop(self) -> None:
        while True:
            try:
                first = await asyncio.wait_for(self._queue.get(), timeout=0.05)
            except asyncio.TimeoutError:
                if self._stop_batching.is_set():
                    return
                continue
            batch = [first]
            flush_at = time.monotonic() + self.config.flush_interval_s
            while len(batch) < self.config.max_batch_size:
                remaining = flush_at - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    batch.append(await asyncio.wait_for(self._queue.get(), timeout=remaining))
                except asyncio.TimeoutError:
                    break
            await self._run_batch(batch)

    async def _run_batch(self, batch: List[_PendingRequest]) -> None:
        # A future already done here was cancelled by its deadline while queued: skip
        # it so expired work never occupies a batch slot.
        live = []
        for request in batch:
            if request.future.done():
                self.cancelled_before_scoring += 1
                self._queue.task_done()
            else:
                live.append(request)
        if not live:
            return
        service = self._service  # snapshot: a hot swap mid-batch must not mix engines
        try:
            outcomes = await self._loop.run_in_executor(
                self._score_executor, self._score_batch, service, [r.query for r in live]
            )
        except Exception as error:  # noqa: BLE001 - fail the batch, not the server
            outcomes = [error] * len(live)
        for request, outcome in zip(live, outcomes):
            if request.future.done():
                # Timed out while the batch was scoring; the result is discarded.
                self.cancelled_before_scoring += 1
            elif isinstance(outcome, Exception):
                self.errors += 1
                request.future.set_exception(outcome)
            else:
                request.future.set_result(outcome)
            self._queue.task_done()

    def _score_batch(self, service: PredictionService, queries: List[LinkQuery]) -> List[object]:
        """Score one micro-batch on the executor thread; one outcome per query.

        Per-query failures (validation) and whole-batch failures (engine errors) are
        returned as exception objects in-place, so one bad query cannot poison its
        batchmates and a failed flush cannot re-break later batches.
        """
        tickets: List[object] = []
        for query in queries:
            try:
                tickets.append(service.submit(query))
            except Exception as error:  # noqa: BLE001 - reported per request
                tickets.append(error)
        try:
            service.flush()
        except Exception as error:  # noqa: BLE001 - reported per request
            # flush() restored the batch into the buffer; take our queries back out.
            for ticket in tickets:
                if isinstance(ticket, int):
                    service.withdraw(ticket)
            return [ticket if isinstance(ticket, Exception) else error for ticket in tickets]
        outcomes: List[object] = []
        for ticket in tickets:
            if isinstance(ticket, Exception):
                outcomes.append(ticket)
            else:
                outcomes.append(service.result(ticket))
        return outcomes

    # ------------------------------------------------------------------ hot reload
    async def reload_now(self) -> str:
        """Run one reload check off the event loop; returns the reloader outcome."""
        if self.reloader is None:
            return "disabled"
        return await self._loop.run_in_executor(self._reload_executor, self.reloader.check_once)

    async def _reload_loop(self) -> None:
        interval = self.reloader.config.poll_interval_s
        while True:
            await asyncio.sleep(interval)
            try:
                await self.reload_now()
            except Exception:  # noqa: BLE001 - polling must survive transient registry errors
                pass

    def _on_swap(self, engine: LinkPredictionEngine, version: int) -> None:
        """Atomically put a validated engine into service (called by the reloader).

        The new :class:`PredictionService` is fully constructed before the single
        reference assignment, and the batch loop snapshots ``self._service`` per batch,
        so in-flight batches finish on the engine they started with.
        """
        self._service = PredictionService(engine, self._service.config)
        self.version = version

    # ------------------------------------------------------------------ graph deltas
    async def apply_graph_delta(self, delta: GraphDelta) -> Dict[str, object]:
        """Apply a validated graph delta and swap in the successor engine.

        Runs on the reload executor (serialised with hot reloads, off the event loop).
        Validation failures raise :class:`~repro.stream.DeltaValidationError` *before*
        any state changes: the graph view, the serving engine, its caches and
        ``graph_version`` all remain exactly as they were.  On success the successor
        engine (selectively invalidated caches, merged filter index) replaces the
        current one through the same single-assignment path as a hot reload, and the
        returned summary carries the new ``graph_version``.
        """
        if not self._started:
            raise FrontendError("frontend is not started")
        if self.graph_view is None:
            raise FrontendError("no graph attached; the server cannot accept deltas")
        try:
            return await self._loop.run_in_executor(
                self._reload_executor, self._apply_delta_sync, delta
            )
        except Exception:
            self.deltas_rejected += 1
            raise

    def _apply_delta_sync(self, delta: GraphDelta) -> Dict[str, object]:
        new_graph = self.graph_view.apply(delta)  # raises before any published change
        old_engine = self._service.engine
        successor = old_engine.apply_delta(new_graph, delta)
        # Same swap discipline as _on_swap: build fully, then one reference assignment.
        # ServiceStats carries over so latency/throughput history survives the swap.
        self._service = PredictionService(successor, self._service.config, stats=self._service.stats)
        self.deltas_accepted += 1
        summary = delta.describe()
        summary.update(
            {
                "graph_version": new_graph.graph_version,
                "deltas_applied": successor.stats.deltas_applied,
                "cache_entries_invalidated": successor.stats.cache_entries_invalidated,
            }
        )
        return summary

    # ------------------------------------------------------------------ introspection
    @property
    def engine(self) -> LinkPredictionEngine:
        """The currently-serving engine (changes after a hot swap)."""
        return self._service.engine

    def queue_depth(self) -> int:
        """Requests admitted but not yet handed to the scorer."""
        return self._queue.qsize() if self._queue is not None else 0

    def ready(self) -> Tuple[bool, str]:
        """Readiness with a reason: started, not draining, queue below high water."""
        if not self._started:
            return False, "not started"
        if self._draining:
            return False, "draining"
        depth = self.queue_depth()
        if depth >= self.config.high_water:
            return False, f"queue depth {depth} at or above high-water mark {self.config.high_water}"
        return True, "ok"

    def metrics(self) -> Dict[str, object]:
        """Queue, counter, latency, service and reload state for ``GET /metrics``."""
        ready, reason = self.ready()
        payload: Dict[str, object] = {
            "model": {"name": self.model_name, "version": self.version},
            "ready": ready,
            "ready_reason": reason,
            "draining": self._draining,
            "queue": {
                "depth": self.queue_depth(),
                "high_water": self.config.high_water,
                "max_depth": self.config.max_queue_depth,
                "in_flight": self._in_flight,
            },
            "counters": {
                "accepted": self.accepted,
                "completed": self.completed,
                "shed": self.shed,
                "deadline_timeouts": self.deadline_timeouts,
                "cancelled_before_scoring": self.cancelled_before_scoring,
                "errors": self.errors,
            },
            "latency": summarize_latencies(list(self._latencies_ms)),
            "service": self._service.stats.as_row(),
            "engine": self._service.engine.stats.as_row(),
            "graph": {
                "version": self.graph_view.version
                if self.graph_view is not None
                else self._service.engine.graph_version,
                "attached": self.graph_view is not None,
                "deltas_accepted": self.deltas_accepted,
                "deltas_rejected": self.deltas_rejected,
            },
        }
        if self.reloader is not None:
            payload["reload"] = self.reloader.stats()
        return payload

    # ------------------------------------------------------------------ constructors
    @classmethod
    def from_registry(
        cls,
        registry: ModelArtifactRegistry,
        name: str,
        version: Optional[int] = None,
        graph=None,
        config: Optional[FrontendConfig] = None,
        reload_config: Optional[ReloadConfig] = None,
        mmap: bool = False,
        **engine_kwargs,
    ) -> "ServingFrontend":
        """Load a registry model and wrap it with hot-reload wired up.

        With ``version=None`` the frontend serves the latest version and follows new
        ones via an :class:`EngineReloader`; a pinned explicit version never reloads.
        ``graph`` (optional) supplies the filter index and fallback vocabularies, the
        same way :meth:`LinkPredictionEngine.from_artifact` uses it, and is wrapped in
        a :class:`~repro.stream.MutableGraphView` so ``POST /v1/graph/delta`` works;
        hot reloads always build against the view's *current* snapshot, never the
        boot-time graph.  ``mmap=True`` memory-maps the artifact weights (boot load
        and every hot reload); remaining keyword arguments go to the
        :class:`LinkPredictionEngine` constructor (e.g. ``entity_chunk_size``).
        """
        resolved = registry.resolve(name, version)
        graph_view = MutableGraphView(graph) if graph is not None else None

        def build_engine(model, manifest, version) -> LinkPredictionEngine:
            entity_vocab, relation_vocab = manifest_vocabularies(manifest)
            kwargs = dict(engine_kwargs)
            if graph_view is not None:
                current = graph_view.graph
                entity_vocab = entity_vocab or current.entity_vocab
                relation_vocab = relation_vocab or current.relation_vocab
                kwargs.setdefault("filter_index", current.filter_index())
                kwargs.setdefault("graph_version", current.graph_version)
            kwargs.setdefault("entity_vocab", entity_vocab)
            kwargs.setdefault("relation_vocab", relation_vocab)
            return LinkPredictionEngine(model, **kwargs)

        model, manifest = registry.load(name, resolved.version, mmap=mmap)
        engine = build_engine(model, manifest, resolved.version)
        frontend = cls(
            engine,
            model_name=name,
            version=resolved.version,
            config=config,
            graph_view=graph_view,
        )
        if version is None:
            frontend.reloader = EngineReloader(
                registry,
                name,
                build_engine=lambda model, manifest, version: build_engine(model, manifest, version),
                on_swap=frontend._on_swap,
                active_version=resolved.version,
                config=reload_config,
                mmap=mmap,
            )
        return frontend
