"""Request/response facade over the inference engine with micro-batching and stats.

:class:`PredictionService` is the layer a network frontend would call into.  Queries are
*submitted* into a pending buffer and scored together once the buffer reaches the
configured micro-batch size (or on an explicit :meth:`PredictionService.flush`); one
micro-batch becomes one vectorised matrix op inside the engine.  Every flush records the
batch's wall-clock time, from which the service derives per-query latency and overall
throughput, exported as :mod:`repro.bench.reporting` tables so benchmarks and dashboards
share one formatting path.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence

from repro.bench.reporting import TableReport, summarize_latencies
from repro.serve.engine import LinkPredictionEngine, LinkQuery, TopKResult


@dataclass
class ServiceConfig:
    """Tunables of the serving facade.

    ``max_batch_size`` (default 64, positive) bounds how many buffered queries one
    micro-batch may hold; the buffer auto-flushes when it fills.  ``default_k``
    (default 10, positive) is the top-k used by :meth:`PredictionService.query` when
    the caller passes none.  ``max_unclaimed_results`` (default 65536, at least
    ``max_batch_size``) bounds the unredeemed-result map; older results are evicted
    oldest-first beyond it, so callers that submit but never call ``result()`` cannot
    grow the service's memory forever.  ``flush_interval_s`` (default ``None`` =
    size-only flushing, else a positive number of seconds) is the maximum age a
    partially-filled micro-batch may reach before :meth:`PredictionService.flush_if_due`
    flushes it — the knob a time-based serving loop uses so trickle traffic below
    ``max_batch_size`` never waits forever on a full batch.
    """

    max_batch_size: int = 64
    default_k: int = 10
    # Unredeemed results are evicted oldest-first beyond this bound, so callers that
    # submit but never call result() cannot grow the service's memory forever.
    max_unclaimed_results: int = 65536
    flush_interval_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if self.default_k <= 0:
            raise ValueError("default_k must be positive")
        if self.max_unclaimed_results < self.max_batch_size:
            raise ValueError(
                "max_unclaimed_results must be at least max_batch_size, otherwise a "
                "single flush could evict its own results"
            )
        if self.flush_interval_s is not None and self.flush_interval_s <= 0:
            raise ValueError("flush_interval_s must be positive (or None to disable)")


# How many of the most recent per-query latencies the stats keep for the percentile
# summary.  The aggregate counters (queries, batches, seconds) are exact over the
# service's whole lifetime; only the distribution is windowed so that a long-lived
# service does not grow its memory with traffic.
LATENCY_WINDOW = 16384


@dataclass
class ServiceStats:
    """Latency / throughput accounting across the service's lifetime."""

    total_queries: int = 0
    total_batches: int = 0
    total_seconds: float = 0.0
    latencies_ms: Deque[float] = field(default_factory=lambda: deque(maxlen=LATENCY_WINDOW))

    def record_batch(self, batch_size: int, seconds: float) -> None:
        self.total_queries += batch_size
        self.total_batches += 1
        self.total_seconds += seconds
        # Every query in a micro-batch waits for the whole batch, so each one's
        # observed latency is the batch wall time.
        self.latencies_ms.extend([seconds * 1000.0] * batch_size)

    @property
    def throughput_qps(self) -> float:
        """Queries per second over all recorded batches."""
        if self.total_seconds <= 0.0:
            return 0.0
        return self.total_queries / self.total_seconds

    @property
    def mean_batch_size(self) -> float:
        if self.total_batches == 0:
            return 0.0
        return self.total_queries / self.total_batches

    def as_row(self) -> Dict[str, object]:
        row: Dict[str, object] = {
            "queries": self.total_queries,
            "batches": self.total_batches,
            "mean_batch": round(self.mean_batch_size, 1),
            "qps": round(self.throughput_qps, 1),
        }
        row.update(summarize_latencies(self.latencies_ms))
        return row


class PredictionService:
    """Micro-batching request/response layer over :class:`LinkPredictionEngine`.

    Usage::

        service = PredictionService(engine)
        tickets = [service.submit(q) for q in queries]   # buffered
        service.flush()                                  # one matrix op
        results = [service.result(t) for t in tickets]

    or, for synchronous callers, :meth:`query` / :meth:`query_many`.
    """

    def __init__(
        self,
        engine: LinkPredictionEngine,
        config: Optional[ServiceConfig] = None,
        stats: Optional[ServiceStats] = None,
    ) -> None:
        self.engine = engine
        self.config = config or ServiceConfig()
        # An existing ServiceStats may be passed in so a delta-swap successor keeps the
        # cumulative latency/throughput history of the service it replaces.
        self.stats = stats or ServiceStats()
        self._pending: List[tuple[int, LinkQuery]] = []
        self._results: Dict[int, TopKResult] = {}
        self._next_ticket = 0
        # Monotonic timestamp of the oldest query waiting in the buffer (None when
        # empty); pending_age() / flush_if_due() derive batch age from it.
        self._oldest_pending_at: Optional[float] = None

    # ------------------------------------------------------------------ asynchronous-style API
    def submit(self, query: LinkQuery) -> int:
        """Buffer a query; returns a ticket redeemable after the next flush.

        Malformed queries (ids out of range) are rejected here, before they can join a
        micro-batch; the buffer flushes itself as soon as it holds ``max_batch_size``
        queries.
        """
        self.engine.validate_query(query)
        ticket = self._next_ticket
        self._next_ticket += 1
        if not self._pending:
            self._oldest_pending_at = time.monotonic()
        self._pending.append((ticket, query))
        if len(self._pending) >= self.config.max_batch_size:
            self.flush()
        return ticket

    def flush(self) -> int:
        """Score every pending query as one micro-batch; returns how many were scored."""
        if not self._pending:
            return 0
        pending, self._pending = self._pending, []
        oldest_at, self._oldest_pending_at = self._oldest_pending_at, None
        started = time.perf_counter()
        try:
            results = self.engine.predict([query for _, query in pending])
        except Exception:
            # Put the batch back so well-formed tickets are not silently lost (the
            # restored buffer keeps its original age, so flush_if_due retries on time).
            self._pending = pending + self._pending
            self._oldest_pending_at = oldest_at
            raise
        elapsed = time.perf_counter() - started
        self.stats.record_batch(len(pending), elapsed)
        for (ticket, _), result in zip(pending, results):
            self._results[ticket] = result
        while len(self._results) > self.config.max_unclaimed_results:
            self._results.pop(next(iter(self._results)))
        return len(pending)

    def withdraw(self, ticket: int) -> bool:
        """Remove a still-buffered query; returns whether the ticket was pending.

        A serving loop uses this after a failed :meth:`flush` (which restores the batch
        into the buffer) to take its own queries back out, so one poisoned batch cannot
        re-break every following flush.  Withdrawing the oldest query deliberately keeps
        the recorded buffer age — overestimating age only flushes earlier, never later.
        """
        for index, (pending_ticket, _) in enumerate(self._pending):
            if pending_ticket == ticket:
                del self._pending[index]
                if not self._pending:
                    self._oldest_pending_at = None
                return True
        return False

    def result(self, ticket: int) -> TopKResult:
        """Redeem a ticket (raises ``KeyError`` if the query has not been flushed yet)."""
        try:
            return self._results.pop(ticket)
        except KeyError:
            raise KeyError(
                f"ticket {ticket} has no result; call flush() first or check the ticket id"
            ) from None

    @property
    def pending_count(self) -> int:
        """How many submitted queries are waiting for the next flush."""
        return len(self._pending)

    def pending_age(self) -> float:
        """Seconds the *oldest* buffered query has been waiting (0.0 when empty).

        A serving loop polls this to decide when a partially-filled micro-batch has
        waited long enough — trickle traffic below ``max_batch_size`` would otherwise
        sit in the buffer forever without an explicit :meth:`flush`.
        """
        if self._oldest_pending_at is None:
            return 0.0
        return max(0.0, time.monotonic() - self._oldest_pending_at)

    def flush_if_due(self) -> int:
        """Flush iff the buffer's age reached ``config.flush_interval_s``.

        Returns how many queries were scored (0 when nothing was due).  With
        ``flush_interval_s=None`` this never flushes — size-based flushing only.
        """
        interval = self.config.flush_interval_s
        if interval is None or not self._pending:
            return 0
        if self.pending_age() < interval:
            return 0
        return self.flush()

    # ------------------------------------------------------------------ synchronous API
    def query(
        self,
        relation: int,
        head: Optional[int] = None,
        tail: Optional[int] = None,
        k: Optional[int] = None,
    ) -> TopKResult:
        """Answer one query immediately (flushes it together with any buffered ones)."""
        ticket = self.submit(
            LinkQuery(
                relation=relation,
                head=head,
                tail=tail,
                k=k if k is not None else self.config.default_k,
            )
        )
        self.flush()
        return self.result(ticket)

    def query_many(self, queries: Sequence[LinkQuery]) -> List[TopKResult]:
        """Answer a list of queries, scored in micro-batches of ``max_batch_size``.

        Results are redeemed chunk by chunk, so a call larger than
        ``max_unclaimed_results`` never has its own in-flight results evicted.
        """
        results: List[TopKResult] = []
        queries = list(queries)
        for start in range(0, len(queries), self.config.max_batch_size):
            chunk = queries[start : start + self.config.max_batch_size]
            tickets = [self.submit(query) for query in chunk]
            self.flush()
            results.extend(self.result(ticket) for ticket in tickets)
        return results

    # ------------------------------------------------------------------ reporting
    def stats_table(self, title: str = "serving statistics") -> TableReport:
        """Latency/throughput summary as a benchmark-style table."""
        report = TableReport(name=title)
        report.add_row(**self.stats.as_row())
        return report

    def cache_table(self, title: str = "engine caches") -> TableReport:
        """Cache occupancy and hit counters of the underlying engine."""
        report = TableReport(name=title)
        report.add_row(**self.engine.cache_info())
        return report

    def __repr__(self) -> str:
        return (
            f"PredictionService(pending={self.pending_count}, "
            f"served={self.stats.total_queries}, qps={self.stats.throughput_qps:.1f})"
        )
