"""Stdlib-only asyncio HTTP server over :class:`~repro.serve.frontend.ServingFrontend`.

The transport is deliberately small — HTTP/1.1 with keep-alive over
:func:`asyncio.start_server`, no third-party dependencies — because the robustness
story lives in the front-end.  This module maps it onto the wire:

==========================  =======================================================
Endpoint                    Behaviour
==========================  =======================================================
``POST /v1/predict``        JSON ``{"relation": R, "head"|"tail": E, "k"?,
                            "deadline_ms"?}`` → top-k completions, or ``503`` +
                            ``Retry-After`` when shedding, ``504`` on deadline
                            expiry, ``400`` for malformed queries.
``GET /healthz``            Liveness: ``200`` whenever the process can answer.
``GET /readyz``             Readiness: ``200`` only while the model is loaded and
                            the queue is below the high-water mark, else ``503``.
``GET /metrics``            JSON queue/counter/latency/engine/graph/reload state.
``POST /v1/reload``         Run one reload check now; returns the outcome.
``POST /v1/graph/delta``    JSON ``{"adds": {split: [[h, r, t], ...]}, "removes":
                            {...}}`` → apply a streaming graph delta and swap in the
                            updated engine; the response carries the new
                            ``graph_version``.  ``400`` for malformed/out-of-vocab
                            deltas (state provably unchanged), ``409`` when the
                            server has no graph attached.
==========================  =======================================================

``SIGTERM``/``SIGINT`` trigger graceful drain: the listener closes, accepted requests
are answered, then the process exits.  :class:`BackgroundHttpServer` runs the whole
stack on a daemon thread for tests and benchmarks that need a real localhost server.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
from typing import Dict, List, Optional, Tuple

from repro.serve.engine import LinkQuery
from repro.serve.frontend import (
    DeadlineExceededError,
    DrainingError,
    OverloadedError,
    ServingFrontend,
)
from repro.stream.delta import DeltaValidationError, GraphDelta

MAX_HEADER_BYTES = 16384
MAX_BODY_BYTES = 1_048_576
# How often an idle keep-alive connection re-checks whether the server is stopping.
_IDLE_POLL_S = 0.25
_HEADER_TIMEOUT_S = 5.0

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class _BadRequest(Exception):
    """A request that cannot be parsed (answered with 400/413, connection closed)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class HttpFrontendServer:
    """Asyncio HTTP/1.1 server translating requests into front-end calls."""

    def __init__(self, frontend: ServingFrontend, host: str = "127.0.0.1", port: int = 8080) -> None:
        self.frontend = frontend
        self.host = host
        self.port = port
        self.address: Optional[Tuple[str, int]] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._stopping = False
        self._connections: set = set()

    # ------------------------------------------------------------------ lifecycle
    async def start(self, install_signals: bool = True) -> None:
        """Bind the listener (port 0 picks an ephemeral port) and start serving."""
        loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._stopping = False
        await self.frontend.start()
        self._server = await asyncio.start_server(self._on_client, host=self.host, port=self.port)
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        if install_signals:
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, self.request_stop)
                except (NotImplementedError, RuntimeError):
                    break
        print(
            f"serving on http://{self.address[0]}:{self.address[1]} "
            f"(model {self.frontend.model_name}/v{self.frontend.version})",
            flush=True,
        )

    def request_stop(self) -> None:
        """Begin graceful shutdown (signal-handler safe)."""
        if self._stop_event is not None:
            self._stop_event.set()

    async def run(self, install_signals: bool = True) -> None:
        """Serve until SIGTERM/SIGINT (or :meth:`request_stop`), then drain and exit."""
        await self.start(install_signals=install_signals)
        await self._stop_event.wait()
        await self.shutdown()

    async def shutdown(self) -> None:
        """Graceful drain: close the listener, answer accepted requests, close conns."""
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.frontend.drain()
        if self._connections:
            await asyncio.wait(self._connections, timeout=5.0)
        for task in list(self._connections):
            task.cancel()
        print(
            f"drained: {self.frontend.completed} completed, {self.frontend.shed} shed, "
            f"{self.frontend.deadline_timeouts} deadline-expired",
            flush=True,
        )

    # ------------------------------------------------------------------ connections
    def _on_client(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        task = asyncio.get_running_loop().create_task(self._handle_connection(reader, writer))
        self._connections.add(task)
        task.add_done_callback(self._connections.discard)

    async def _handle_connection(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _BadRequest as error:
                    await self._respond(writer, error.status, {"error": str(error)}, close=True)
                    break
                if request is None:
                    break
                method, path, headers, body = request
                status, payload, extra_headers = await self._dispatch(method, path, body)
                close = (
                    self._stopping
                    or headers.get("connection", "").lower() == "close"
                    or "Connection" in extra_headers
                )
                await self._respond(writer, status, payload, extra_headers, close=close)
                if close:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        """One parsed request, or ``None`` when the connection should close.

        Between requests the read polls so an idle keep-alive connection notices
        shutdown within ``_IDLE_POLL_S``; a request whose bytes already arrived is
        still parsed and answered (it gets the draining 503 rather than a dead socket).
        """
        while True:
            try:
                line = await asyncio.wait_for(reader.readline(), timeout=_IDLE_POLL_S)
                break
            except asyncio.TimeoutError:
                if self._stopping:
                    return None
        if not line:
            return None
        try:
            method, path, _version = line.decode("ascii").split()
        except ValueError:
            raise _BadRequest(400, "malformed request line") from None
        headers: Dict[str, str] = {}
        total = len(line)
        while True:
            header_line = await asyncio.wait_for(reader.readline(), timeout=_HEADER_TIMEOUT_S)
            total += len(header_line)
            if total > MAX_HEADER_BYTES:
                raise _BadRequest(400, "headers too large")
            if header_line in (b"\r\n", b"\n", b""):
                break
            name, _, value = header_line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length = headers.get("content-length")
        if length is not None:
            try:
                length = int(length)
            except ValueError:
                raise _BadRequest(400, "malformed Content-Length") from None
            if length > MAX_BODY_BYTES:
                raise _BadRequest(413, f"body exceeds {MAX_BODY_BYTES} bytes")
            if length:
                body = await asyncio.wait_for(reader.readexactly(length), timeout=_HEADER_TIMEOUT_S)
        return method.upper(), path, headers, body

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict[str, object],
        extra_headers: Optional[Dict[str, str]] = None,
        close: bool = False,
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        headers = {
            "Content-Type": "application/json",
            "Content-Length": str(len(body)),
            "Connection": "close" if close else "keep-alive",
        }
        headers.update(extra_headers or {})
        lines = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}"]
        lines += [f"{name}: {value}" for name, value in headers.items()]
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + body)
        await writer.drain()

    # ------------------------------------------------------------------ routing
    async def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict[str, object], Dict[str, str]]:
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "method not allowed"}, {"Allow": "GET"}
            return 200, {"status": "ok"}, {}
        if path == "/readyz":
            if method != "GET":
                return 405, {"error": "method not allowed"}, {"Allow": "GET"}
            ready, reason = self.frontend.ready()
            return (200 if ready else 503), {"ready": ready, "reason": reason}, {}
        if path == "/metrics":
            if method != "GET":
                return 405, {"error": "method not allowed"}, {"Allow": "GET"}
            return 200, self.frontend.metrics(), {}
        if path == "/v1/predict":
            if method != "POST":
                return 405, {"error": "method not allowed"}, {"Allow": "POST"}
            return await self._predict(body)
        if path == "/v1/reload":
            if method != "POST":
                return 405, {"error": "method not allowed"}, {"Allow": "POST"}
            if self.frontend.reloader is None:
                return 409, {"error": "hot-reload is disabled (no registry reloader)"}, {}
            outcome = await self.frontend.reload_now()
            return 200, {"outcome": outcome, **self.frontend.reloader.stats()}, {}
        if path == "/v1/graph/delta":
            if method != "POST":
                return 405, {"error": "method not allowed"}, {"Allow": "POST"}
            return await self._graph_delta(body)
        return 404, {"error": f"no route for {path}"}, {}

    async def _graph_delta(self, body: bytes) -> Tuple[int, Dict[str, object], Dict[str, str]]:
        if self.frontend.graph_view is None:
            return 409, {"error": "no graph attached; the server cannot accept deltas"}, {}
        try:
            document = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            self.frontend.deltas_rejected += 1
            return 400, {"error": f"request body is not valid JSON: {error}"}, {}
        try:
            delta = GraphDelta.from_json(document)
        except DeltaValidationError as error:
            self.frontend.deltas_rejected += 1
            return 400, {"error": str(error)}, {}
        try:
            summary = await self.frontend.apply_graph_delta(delta)
        except DeltaValidationError as error:
            # Validation against the live snapshot failed; nothing changed server-side.
            return 400, {"error": str(error), "graph_version": self.frontend.graph_view.version}, {}
        except Exception as error:  # noqa: BLE001 - a delta failure must not kill the conn
            return 500, {"error": f"{type(error).__name__}: {error}"}, {}
        return 200, {"ok": True, **summary}, {}

    async def _predict(self, body: bytes) -> Tuple[int, Dict[str, object], Dict[str, str]]:
        try:
            document = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            return 400, {"error": f"request body is not valid JSON: {error}"}, {}
        if not isinstance(document, dict):
            return 400, {"error": "request body must be a JSON object"}, {}
        deadline_s: Optional[float] = None
        try:
            if "deadline_ms" in document:
                deadline_s = float(document["deadline_ms"]) / 1000.0
            query = LinkQuery(
                relation=int(document["relation"]),
                head=int(document["head"]) if document.get("head") is not None else None,
                tail=int(document["tail"]) if document.get("tail") is not None else None,
                k=int(document.get("k", 10)),
            )
        except KeyError as error:
            return 400, {"error": f"missing field {error.args[0]!r}"}, {}
        except (TypeError, ValueError) as error:
            return 400, {"error": str(error)}, {}
        try:
            result = await self.frontend.handle(query, deadline_s=deadline_s)
        except OverloadedError as error:
            return 503, {"error": str(error)}, {"Retry-After": f"{error.retry_after_s:g}"}
        except DrainingError as error:
            return 503, {"error": str(error)}, {"Connection": "close"}
        except DeadlineExceededError as error:
            return 504, {"error": str(error)}, {}
        except ValueError as error:
            return 400, {"error": str(error)}, {}
        except Exception as error:  # noqa: BLE001 - a scoring failure must not kill the conn
            return 500, {"error": f"{type(error).__name__}: {error}"}, {}
        payload = {
            "model": {"name": self.frontend.model_name, "version": self.frontend.version},
            "relation": query.relation,
            "direction": query.direction,
            "k": query.k,
            "graph_version": result.graph_version,
            "results": [
                {
                    "entity": int(entity),
                    "score": float(score),
                    "label": result.labels[index] if result.labels is not None else str(int(entity)),
                }
                for index, (entity, score) in enumerate(result.pairs())
            ],
        }
        return 200, payload, {}


class BackgroundHttpServer:
    """Run an :class:`HttpFrontendServer` on a daemon thread (tests / benchmarks).

    Usage::

        with BackgroundHttpServer(frontend) as server:
            host, port = server.address
            ... real HTTP clients against http://host:port ...
    """

    def __init__(self, frontend: ServingFrontend, host: str = "127.0.0.1", port: int = 0) -> None:
        self.frontend = frontend
        self.host = host
        self.port = port
        self.server: Optional[HttpFrontendServer] = None
        self.address: Optional[Tuple[str, int]] = None
        self.loop: Optional[asyncio.AbstractEventLoop] = None
        self.error: Optional[BaseException] = None
        self._ready = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def __enter__(self) -> "BackgroundHttpServer":
        self._thread = threading.Thread(target=self._run, name="http-server", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise RuntimeError("HTTP server did not start within 30 s")
        if self.error is not None:
            raise RuntimeError(f"HTTP server failed to start: {self.error!r}")
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        try:
            self.loop = asyncio.get_running_loop()
            self.server = HttpFrontendServer(self.frontend, host=self.host, port=self.port)
            await self.server.start(install_signals=False)
            self.address = self.server.address
        except BaseException as error:  # noqa: BLE001 - surfaced to the spawning thread
            self.error = error
            self._ready.set()
            return
        self._ready.set()
        await self.server._stop_event.wait()
        await self.server.shutdown()

    def stop(self) -> None:
        """Request graceful shutdown and wait for the server thread to finish."""
        if self.loop is not None and self.server is not None and self._thread.is_alive():
            self.loop.call_soon_threadsafe(self.server.request_stop)
        if self._thread is not None:
            self._thread.join(timeout=30.0)

    def call(self, coro) -> object:
        """Run a coroutine on the server's event loop and return its result."""
        return asyncio.run_coroutine_threadsafe(coro, self.loop).result(timeout=60.0)

    def metrics_snapshot(self) -> Dict[str, object]:
        """The frontend's metrics, fetched safely from the server's loop."""
        async def _get() -> Dict[str, object]:
            return self.frontend.metrics()

        return self.call(_get())


def parse_address(banner_lines: List[str]) -> Tuple[str, int]:
    """Extract ``(host, port)`` from the server's startup banner (subprocess tests)."""
    for line in banner_lines:
        if line.startswith("serving on http://"):
            hostport = line.split("http://", 1)[1].split()[0]
            host, _, port = hostport.rpartition(":")
            return host, int(port)
    raise ValueError("no 'serving on http://...' banner found")
