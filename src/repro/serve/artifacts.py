"""Versioned on-disk model artifact registry.

An *artifact* is one directory holding everything needed to reconstruct a trained
:class:`~repro.models.kge.KGEModel` and serve queries against it:

- ``weights.npz`` -- every parameter of the model's state dict plus the
  relation-to-group assignment, stored without pickling.
- ``manifest.json`` -- model shape, one entry per scoring function (block structures
  are stored as their signed entry matrices), optional entity/relation vocabularies,
  a checksum of the weights archive and free-form user metadata.

:class:`ModelArtifactRegistry` arranges artifacts as ``root/<name>/v<version>/`` with
monotonically increasing versions, so a serving process can always resolve "the latest
model called X" while older versions stay available for rollback.
"""

from __future__ import annotations

import os
import re
import shutil
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.kg.vocab import Vocabulary
from repro.models.kge import KGEModel
from repro.scoring.base import ScoringFunction
from repro.scoring.bilinear import BlockScoringFunction
from repro.scoring.structure import BlockStructure
from repro.scoring.translational import RotatEScorer, TransEScorer
from repro.utils.serialization import (
    PathLike,
    file_checksum,
    load_json,
    load_npz,
    save_json,
    save_npz,
)

ARTIFACT_FORMAT_VERSION = 1
MANIFEST_FILENAME = "manifest.json"
WEIGHTS_FILENAME = "weights.npz"
# ``np.load(mmap_mode=...)`` silently ignores the mode for .npz archives (members are
# zip entries, not flat files), so mmap loading extracts each member once into this
# sidecar directory -- keyed by the weights checksum -- and memory-maps the .npy files.
MMAP_DIRNAME = "weights.mmap"
_ASSIGNMENT_KEY = "__assignment__"

# Complete version directories are exactly ``v<N>``; writers stage into
# ``.tmp-v<N>-<pid>`` scratch directories and rename into place, so anything matching
# the scratch pattern is either an in-progress save or debris of a crashed writer.
_VERSION_DIR_PATTERN = re.compile(r"v(\d+)")
_SCRATCH_DIR_PATTERN = re.compile(r"\.tmp-v(\d+)-(\d+)")


def _pid_alive(pid: int) -> bool:
    """Whether a process with this pid currently exists (signal-0 probe)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        # The pid exists but belongs to another user; treat it as alive.
        return True
    return True


class ArtifactError(RuntimeError):
    """A model artifact is missing, malformed or fails integrity checks."""


# ---------------------------------------------------------------------------- scorers
def _scorer_to_manifest(scorer: ScoringFunction) -> Dict[str, object]:
    if isinstance(scorer, BlockScoringFunction):
        return {
            "type": "block",
            "name": scorer.name,
            "entries": scorer.structure.entries.tolist(),
        }
    if isinstance(scorer, TransEScorer):
        return {"type": "transe", "norm": scorer.norm}
    if isinstance(scorer, RotatEScorer):
        return {"type": "rotate"}
    raise ArtifactError(
        f"cannot serialise scoring function of type {type(scorer).__name__}; "
        "supported: BlockScoringFunction, TransEScorer, RotatEScorer"
    )


def _scorer_from_manifest(entry: Dict[str, object]) -> ScoringFunction:
    kind = entry.get("type")
    if kind == "block":
        structure = BlockStructure(np.asarray(entry["entries"], dtype=np.int64))
        return BlockScoringFunction(structure, name=entry.get("name"))
    if kind == "transe":
        return TransEScorer(norm=int(entry.get("norm", 1)))
    if kind == "rotate":
        return RotatEScorer()
    raise ArtifactError(f"unknown scoring function type {kind!r} in manifest")


# ---------------------------------------------------------------------------- save / load
def save_model_artifact(
    model: KGEModel,
    directory: PathLike,
    entity_vocab: Optional[Vocabulary] = None,
    relation_vocab: Optional[Vocabulary] = None,
    metadata: Optional[Dict[str, object]] = None,
) -> Path:
    """Write ``model`` (weights, scorers, assignment, vocabularies) into ``directory``.

    Returns the directory path.  Existing files in the directory are overwritten, which
    makes re-saving into a scratch directory idempotent; the registry always allocates a
    fresh version directory instead.
    """
    directory = Path(directory)
    if entity_vocab is not None and len(entity_vocab) != model.num_entities:
        raise ArtifactError(
            f"entity vocabulary has {len(entity_vocab)} symbols but the model has "
            f"{model.num_entities} entities"
        )
    if relation_vocab is not None and len(relation_vocab) != model.num_relations:
        raise ArtifactError(
            f"relation vocabulary has {len(relation_vocab)} symbols but the model has "
            f"{model.num_relations} relations"
        )
    arrays: Dict[str, np.ndarray] = dict(model.state_dict())
    if _ASSIGNMENT_KEY in arrays:
        raise ArtifactError(f"parameter name {_ASSIGNMENT_KEY!r} collides with the assignment key")
    arrays[_ASSIGNMENT_KEY] = model.assignment
    weights_path = save_npz(arrays, directory / WEIGHTS_FILENAME)
    manifest = {
        "format_version": ARTIFACT_FORMAT_VERSION,
        "model": {
            "num_entities": model.num_entities,
            "num_relations": model.num_relations,
            "dim": model.dim,
            "num_groups": model.num_groups,
        },
        "scorers": [_scorer_to_manifest(scorer) for scorer in model.scorers],
        "parameters": sorted(name for name in arrays if name != _ASSIGNMENT_KEY),
        "weights_checksum": file_checksum(weights_path),
        "entity_vocab": entity_vocab.symbols() if entity_vocab is not None else None,
        "relation_vocab": relation_vocab.symbols() if relation_vocab is not None else None,
        "metadata": dict(metadata or {}),
    }
    save_json(manifest, directory / MANIFEST_FILENAME)
    return directory


def _mmap_weight_arrays(
    directory: Path, weights_path: Path, manifest: Dict[str, object]
) -> Dict[str, np.ndarray]:
    """Read-only memory-mapped views of every weight array in the archive.

    The npz members are extracted once into ``weights.mmap/<checksum prefix>/`` next
    to the archive (atomic scratch-then-rename; concurrent extractors race benignly,
    the loser discards its scratch) and served via ``np.load(mmap_mode="r")`` from
    then on.  Artifact versions are immutable, so the sidecar never goes stale; a
    re-written weights archive gets a new checksum and therefore a new sidecar.
    """
    checksum = str(manifest["weights_checksum"])
    sidecar = directory / MMAP_DIRNAME / checksum[:16]
    if not sidecar.is_dir():
        scratch = directory / MMAP_DIRNAME / f".tmp-{checksum[:16]}-{os.getpid()}"
        shutil.rmtree(scratch, ignore_errors=True)
        try:
            scratch.mkdir(parents=True)
            with np.load(weights_path, allow_pickle=False) as archive:
                for key in archive.files:
                    np.save(scratch / f"{key}.npy", archive[key])
            try:
                os.replace(scratch, sidecar)
            except OSError:
                # Another loader extracted the same checksum first; use theirs.
                shutil.rmtree(scratch, ignore_errors=True)
                if not sidecar.is_dir():
                    raise
        except OSError as error:
            shutil.rmtree(scratch, ignore_errors=True)
            raise ArtifactError(
                f"cannot extract {weights_path} for memory-mapped loading: {error}"
            ) from error
    arrays: Dict[str, np.ndarray] = {}
    for path in sorted(sidecar.glob("*.npy")):
        arrays[path.name[: -len(".npy")]] = np.load(path, mmap_mode="r")
    return arrays


def _attach_parameters(model: KGEModel, arrays: Dict[str, np.ndarray]) -> None:
    """Point the model's parameters at ``arrays`` without copying.

    The copy-free twin of :meth:`~repro.nn.module.Module.load_state_dict`: the same
    name/shape validation, but the (read-only, memory-mapped) arrays become the
    parameter data directly, so nothing of the embedding tables is made resident.
    """
    parameters = dict(model.named_parameters())
    missing = sorted(set(parameters) - set(arrays))
    unexpected = sorted(set(arrays) - set(parameters))
    if missing or unexpected:
        raise KeyError(f"state dict mismatch: missing {missing}, unexpected {unexpected}")
    for name, parameter in parameters.items():
        value = arrays[name]
        if tuple(value.shape) != tuple(parameter.data.shape):
            raise ValueError(
                f"parameter {name!r} has shape {tuple(parameter.data.shape)}, "
                f"stored array has {tuple(value.shape)}"
            )
        if value.dtype != np.float64:
            value = np.asarray(value, dtype=np.float64)
        parameter.data = value


def load_model_artifact(
    directory: PathLike, verify_checksum: bool = True, mmap: bool = False
) -> Tuple[KGEModel, Dict[str, object]]:
    """Reconstruct a model from an artifact directory; returns ``(model, manifest)``.

    Raises :class:`ArtifactError` when the manifest is missing or malformed, when the
    weights archive does not match the manifest's checksum, or when the stored arrays
    are inconsistent with the declared model shape.

    ``mmap=True`` serves the weights straight off disk: the archive members are
    extracted once into a checksum-keyed sidecar directory and attached as read-only
    ``np.load(mmap_mode="r")`` views, so embedding tables page in on demand instead
    of being resident.  Scores are bit-identical to an in-memory load (same bytes,
    same kernels); the model must not be trained in place.
    """
    directory = Path(directory)
    manifest_path = directory / MANIFEST_FILENAME
    weights_path = directory / WEIGHTS_FILENAME
    if not manifest_path.is_file():
        raise ArtifactError(f"no manifest at {manifest_path}")
    if not weights_path.is_file():
        raise ArtifactError(f"no weights archive at {weights_path}")
    try:
        manifest = load_json(manifest_path)
    except ValueError as error:
        raise ArtifactError(f"manifest at {manifest_path} is not valid JSON: {error}") from error
    if not isinstance(manifest, dict):
        raise ArtifactError(f"manifest at {manifest_path} must be a JSON object")
    declared_version = manifest.get("format_version")
    if declared_version != ARTIFACT_FORMAT_VERSION:
        raise ArtifactError(
            f"unsupported artifact format version {declared_version!r} "
            f"(this library reads version {ARTIFACT_FORMAT_VERSION})"
        )
    for key in ("model", "scorers", "weights_checksum"):
        if key not in manifest:
            raise ArtifactError(f"manifest at {manifest_path} is missing the {key!r} field")
    if verify_checksum:
        actual = file_checksum(weights_path)
        if actual != manifest["weights_checksum"]:
            raise ArtifactError(
                f"weights archive {weights_path} fails its integrity check "
                f"(expected {manifest['weights_checksum'][:12]}..., got {actual[:12]}...)"
            )

    shape = manifest["model"]
    try:
        num_entities = int(shape["num_entities"])
        num_relations = int(shape["num_relations"])
        dim = int(shape["dim"])
    except (KeyError, TypeError, ValueError) as error:
        raise ArtifactError(f"manifest model shape is malformed: {error}") from error
    scorers = [_scorer_from_manifest(entry) for entry in manifest["scorers"]]

    if mmap:
        arrays = _mmap_weight_arrays(directory, weights_path, manifest)
    else:
        arrays = load_npz(weights_path)
    if _ASSIGNMENT_KEY not in arrays:
        raise ArtifactError(f"weights archive {weights_path} is missing the assignment array")
    assignment = np.asarray(arrays.pop(_ASSIGNMENT_KEY)).astype(np.int64)

    model = KGEModel(
        num_entities=num_entities,
        num_relations=num_relations,
        dim=dim,
        scorers=scorers,
        assignment=assignment,
        seed=0,
        # mmap loads skip the random init entirely (calloc zeros, nothing resident);
        # the real weights are attached below without a copy.
        init_scale=0.0 if mmap else 0.1,
    )
    try:
        if mmap:
            _attach_parameters(model, arrays)
        else:
            model.load_state_dict(arrays)
    except (KeyError, ValueError) as error:
        raise ArtifactError(f"weights archive is inconsistent with the manifest: {error}") from error
    return model, manifest


def manifest_vocabularies(
    manifest: Dict[str, object],
) -> Tuple[Optional[Vocabulary], Optional[Vocabulary]]:
    """Rebuild the ``(entity_vocab, relation_vocab)`` stored in a manifest, if any.

    Symbols are re-inserted in saved id order, so ``vocab.id_of(symbol)`` round-trips
    exactly even when the vocabulary was built incrementally before saving.
    """
    entity_symbols = manifest.get("entity_vocab")
    relation_symbols = manifest.get("relation_vocab")
    entity_vocab = Vocabulary(entity_symbols) if entity_symbols is not None else None
    relation_vocab = Vocabulary(relation_symbols) if relation_symbols is not None else None
    return entity_vocab, relation_vocab


# ---------------------------------------------------------------------------- registry
@dataclass(frozen=True)
class ArtifactRef:
    """Address of one stored model version inside a registry."""

    name: str
    version: int
    path: Path

    @property
    def manifest_path(self) -> Path:
        return self.path / MANIFEST_FILENAME

    @property
    def weights_path(self) -> Path:
        return self.path / WEIGHTS_FILENAME


class ModelArtifactRegistry:
    """Versioned store of model artifacts under one root directory.

    Layout::

        root/
          <model name>/
            v1/  manifest.json  weights.npz
            v2/  ...

    Saving never overwrites: each :meth:`save` allocates the next version number.
    """

    def __init__(self, root: PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------ write path
    def save(
        self,
        name: str,
        model: KGEModel,
        entity_vocab: Optional[Vocabulary] = None,
        relation_vocab: Optional[Vocabulary] = None,
        metadata: Optional[Dict[str, object]] = None,
    ) -> ArtifactRef:
        """Store ``model`` as the next version of ``name`` and return its reference.

        The artifact is written into a scratch directory and renamed into place, so a
        crash mid-save never leaves a half-written directory as the resolvable latest
        version (:meth:`versions` additionally ignores manifest-less directories).
        """
        self._validate_name(name)
        version = self._next_version(name)
        ref = ArtifactRef(name=name, version=version, path=self.root / name / f"v{version}")
        scratch = self.root / name / f".tmp-v{version}-{os.getpid()}"
        save_model_artifact(
            model,
            scratch,
            entity_vocab=entity_vocab,
            relation_vocab=relation_vocab,
            metadata=metadata,
        )
        scratch.rename(ref.path)
        return ref

    # ------------------------------------------------------------------ read path
    def load(
        self,
        name: str,
        version: Optional[int] = None,
        verify_checksum: bool = True,
        mmap: bool = False,
    ) -> Tuple[KGEModel, Dict[str, object]]:
        """Load ``(model, manifest)`` for ``name`` (latest version unless given).

        ``mmap=True`` memory-maps the weights instead of materialising them (see
        :func:`load_model_artifact`).
        """
        ref = self.resolve(name, version)
        return load_model_artifact(ref.path, verify_checksum=verify_checksum, mmap=mmap)

    def resolve(self, name: str, version: Optional[int] = None) -> ArtifactRef:
        """Resolve a (name, version) pair to an on-disk reference without loading it."""
        self._validate_name(name)
        versions = self.versions(name)
        if not versions:
            raise ArtifactError(f"no artifact named {name!r} in registry at {self.root}")
        if version is None:
            version = versions[-1]
        elif version not in versions:
            raise ArtifactError(
                f"artifact {name!r} has no version {version}; available: {versions}"
            )
        return ArtifactRef(name=name, version=version, path=self.root / name / f"v{version}")

    def manifest(self, name: str, version: Optional[int] = None) -> Dict[str, object]:
        """Load only the manifest of a stored model (cheap metadata inspection)."""
        ref = self.resolve(name, version)
        if not ref.manifest_path.is_file():
            raise ArtifactError(f"no manifest at {ref.manifest_path}")
        return load_json(ref.manifest_path)

    # ------------------------------------------------------------------ catalogue
    def models(self) -> List[str]:
        """Names of every stored model, sorted."""
        if not self.root.is_dir():
            return []
        return sorted(p.name for p in self.root.iterdir() if p.is_dir() and self.versions(p.name))

    def versions(self, name: str) -> List[int]:
        """Loadable version numbers of ``name``, ascending (empty when unknown).

        Directories without a manifest (debris of an interrupted save) are ignored, so
        the latest resolvable version is always a complete artifact.
        """
        return sorted(
            version
            for version, child in self._version_dirs(name)
            if (child / MANIFEST_FILENAME).is_file()
        )

    def _version_dirs(self, name: str) -> List[Tuple[int, Path]]:
        """All ``v<N>`` directories of ``name``, complete or not.

        ``.tmp-v<N>-<pid>`` scratch directories — in-progress saves, or stale debris
        of a writer that crashed before its rename — never match, so readers stay
        correct alongside crashed (or still-running) writers; :meth:`prune_scratch`
        reclaims the dead ones.
        """
        model_dir = self.root / name
        if not model_dir.is_dir():
            return []
        found = []
        for child in model_dir.iterdir():
            match = _VERSION_DIR_PATTERN.fullmatch(child.name)
            if child.is_dir() and match:
                found.append((int(match.group(1)), child))
        return found

    def _next_version(self, name: str) -> int:
        """First version number above every existing directory, broken or not."""
        taken = [version for version, _ in self._version_dirs(name)]
        return max(taken, default=0) + 1

    def latest_version(self, name: str) -> int:
        """Highest stored version of ``name`` (0 when none exist yet)."""
        versions = self.versions(name)
        return versions[-1] if versions else 0

    # ------------------------------------------------------------------ maintenance
    def delete(self, name: str, version: int) -> None:
        """Remove one stored version (for pruning rolled-back models)."""
        ref = self.resolve(name, version)
        self._remove_tree(ref.path)

    def prune_scratch(self, name: Optional[str] = None) -> List[Path]:
        """Remove orphaned ``.tmp-v<N>-<pid>`` scratch directories; returns what was removed.

        A writer that crashes between :func:`save_model_artifact` and its rename
        leaves a scratch directory behind.  Readers already ignore it (see
        :meth:`_version_dirs`), but the disk space is never reclaimed — this sweeps
        every scratch directory whose recorded pid is no longer alive.  Scratch
        directories of live writers (including this process) are left untouched, so
        pruning is safe to run concurrently with saves.
        """
        if name is not None:
            self._validate_name(name)
            model_dirs = [self.root / name]
        elif self.root.is_dir():
            model_dirs = [child for child in self.root.iterdir() if child.is_dir()]
        else:
            model_dirs = []
        removed: List[Path] = []
        for model_dir in model_dirs:
            if not model_dir.is_dir():
                continue
            for child in model_dir.iterdir():
                match = _SCRATCH_DIR_PATTERN.fullmatch(child.name)
                if not match or not child.is_dir():
                    continue
                pid = int(match.group(2))
                if pid == os.getpid() or _pid_alive(pid):
                    continue
                self._remove_tree(child)
                removed.append(child)
        return sorted(removed)

    @staticmethod
    def _remove_tree(path: Path) -> None:
        for child in sorted(path.rglob("*"), reverse=True):
            if child.is_file():
                child.unlink()
            else:
                child.rmdir()
        path.rmdir()

    @staticmethod
    def _validate_name(name: str) -> None:
        # Names become single path components under the root; anything resembling a
        # path traversal (separators, bare dots) or hidden/scratch prefix is rejected.
        if not re.fullmatch(r"[A-Za-z0-9][A-Za-z0-9._-]*", name):
            raise ArtifactError(f"invalid artifact name {name!r}")

    def __repr__(self) -> str:
        return f"ModelArtifactRegistry(root={str(self.root)!r}, models={self.models()})"
