"""Plain-text table / series reporting used by the benchmark harness.

The paper's tables are reproduced as printed rows (one per table cell group) and its
figures as printed series of (x, y) points; both are also returned as plain data so tests
can assert on them.
"""

from __future__ import annotations

import json
import os
import platform
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.utils.serialization import to_jsonable


def format_table(rows: Sequence[Dict[str, object]], title: str = "") -> str:
    """Render a list of dict rows as an aligned text table."""
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    widths = {column: len(str(column)) for column in columns}
    for row in rows:
        for column in columns:
            widths[column] = max(widths[column], len(str(row.get(column, ""))))
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(str(column).ljust(widths[column]) for column in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[column] for column in columns))
    for row in rows:
        lines.append(" | ".join(str(row.get(column, "")).ljust(widths[column]) for column in columns))
    return "\n".join(lines)


@dataclass
class TableReport:
    """A named collection of rows mirroring one of the paper's tables."""

    name: str
    rows: List[Dict[str, object]] = field(default_factory=list)

    def add_row(self, **values: object) -> None:
        self.rows.append(dict(values))

    def render(self) -> str:
        return format_table(self.rows, title=self.name)

    def show(self) -> None:
        """Print the table (benchmarks call this so ``pytest -s`` shows the reproduction)."""
        print()
        print(self.render())

    def column(self, key: str) -> List[object]:
        """All values of one column, in row order."""
        return [row.get(key) for row in self.rows]


@dataclass
class SeriesReport:
    """A named collection of (x, y) series mirroring one of the paper's figures."""

    name: str
    x_label: str = "x"
    y_label: str = "y"
    series: Dict[str, List[tuple]] = field(default_factory=dict)

    def add_point(self, series_name: str, x: float, y: float) -> None:
        self.series.setdefault(series_name, []).append((float(x), float(y)))

    def add_series(self, series_name: str, points: Sequence[tuple]) -> None:
        self.series[series_name] = [(float(x), float(y)) for x, y in points]

    def render(self) -> str:
        lines = [f"{self.name}  ({self.x_label} vs {self.y_label})"]
        for series_name, points in self.series.items():
            formatted = ", ".join(f"({x:.3g}, {y:.3g})" for x, y in points)
            lines.append(f"  {series_name}: {formatted}")
        return "\n".join(lines)

    def show(self) -> None:
        print()
        print(self.render())

    def final_value(self, series_name: str) -> float:
        """The y value of the last point of a series."""
        points = self.series[series_name]
        return points[-1][1]


def write_bench_json(name: str, results: Union[Dict[str, object], List[Dict[str, object]]],
                     directory: Optional[Union[str, Path]] = None) -> Path:
    """Persist one benchmark's result rows as ``BENCH_<name>.json``.

    This is the repo's perf trajectory: each benchmark run emits its timing rows into
    an output directory (``directory`` argument, else ``$BENCH_OUTPUT_DIR``, else
    ``./bench-out/``), CI uploads the files as build artifacts, and successive runs
    can be compared commit over commit.  Fresh results deliberately do **not** land
    in the repository root: the committed root-level ``BENCH_*.json`` files are the
    host-pinned regression baselines that ``scripts/check_bench_regression.py``
    compares fresh runs against, so they must never be overwritten by a run.  The
    file holds the result payload plus minimal host context (CPU count, platform,
    Python) so numbers from different machines are never compared blindly.
    """
    directory = Path(directory or os.environ.get("BENCH_OUTPUT_DIR", "bench-out"))
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{name}.json"
    record = {
        "benchmark": name,
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "results": to_jsonable(results),
    }
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path


def summarize_latencies(latencies_ms: Sequence[float]) -> Dict[str, float]:
    """Latency distribution summary (milliseconds) used by the serving reports.

    Returns count, mean and the p50/p95/p99/max percentiles, all rounded to three
    decimal places; an empty input yields all-zero values.
    """
    if not latencies_ms:
        return {"count": 0, "mean_ms": 0.0, "p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0, "max_ms": 0.0}
    values = np.asarray(latencies_ms, dtype=np.float64)
    return {
        "count": int(values.size),
        "mean_ms": round(float(values.mean()), 3),
        "p50_ms": round(float(np.percentile(values, 50)), 3),
        "p95_ms": round(float(np.percentile(values, 95)), 3),
        "p99_ms": round(float(np.percentile(values, 99)), 3),
        "max_ms": round(float(values.max()), 3),
    }
