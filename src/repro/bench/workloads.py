"""Benchmark workload presets.

The functions here pick training / search budgets small enough to regenerate every table
and figure of the paper on a laptop CPU while keeping the qualitative comparisons intact.
Benchmarks can pass ``scale`` / budget overrides to trade fidelity for speed.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.datasets import load_benchmark
from repro.kg.graph import KnowledgeGraph
from repro.models.kge import KGEModel
from repro.models.trainer import Trainer, TrainerConfig, TrainingResult
from repro.scoring.base import ScoringFunction
from repro.scoring.structure import BlockStructure
from repro.search.autosf import AutoSFConfig
from repro.search.bayes_search import BayesSearchConfig
from repro.search.controller import ControllerConfig
from repro.search.eras import ERASConfig
from repro.search.random_search import RandomSearchConfig
from repro.search.registry import SearcherOptions
from repro.search.result import Candidate
from repro.search.supernet import SupernetConfig

# The benchmarks of the paper's evaluation section, in presentation order.
BENCH_DATASETS: Tuple[str, ...] = (
    "wn18_like",
    "wn18rr_like",
    "fb15k_like",
    "fb15k237_like",
    "yago3_like",
)


def bench_graph(name: str, scale: float = 1.0, seed: int = 0) -> KnowledgeGraph:
    """Load (and cache) one of the synthetic benchmarks."""
    return load_benchmark(name, scale=scale, seed=seed)


# ---------------------------------------------------------------------------- budgets
def quick_trainer_config(epochs: int = 30, seed: int = 0) -> TrainerConfig:
    """Stand-alone training budget used for final models in the table benches."""
    return TrainerConfig(
        epochs=epochs,
        batch_size=256,
        learning_rate=0.5,
        optimizer="adagrad",
        regularization_weight=1e-4,
        valid_every=5,
        patience=3,
        seed=seed,
    )


def quick_search_trainer_config(epochs: int = 10, seed: int = 0) -> TrainerConfig:
    """Cheaper budget used *inside* the stand-alone searchers (AutoSF/random/Bayes)."""
    return TrainerConfig(
        epochs=epochs,
        batch_size=256,
        learning_rate=0.5,
        valid_every=5,
        patience=2,
        regularization_weight=1e-4,
        seed=seed,
    )


def quick_eras_config(
    num_groups: int = 3,
    num_blocks: int = 4,
    epochs: int = 30,
    dim: int = 48,
    seed: int = 0,
) -> ERASConfig:
    """ERAS search budget for the benchmarks."""
    return ERASConfig(
        num_blocks=num_blocks,
        num_groups=num_groups,
        num_samples=2,
        controller_steps=1,
        epochs=epochs,
        derive_samples=16,
        supernet=SupernetConfig(dim=dim, embedding_lr=0.5, batch_size=256, valid_batch_size=128, seed=seed),
        controller=ControllerConfig(zero_operation_bias=2.5, learning_rate=0.02, seed=seed),
        seed=seed,
    )


def quick_autosf_config(seed: int = 0) -> AutoSFConfig:
    """AutoSF budget: small enough to finish, large enough to show the cost asymmetry."""
    return AutoSFConfig(
        max_budget=6,
        num_parents=3,
        num_sampled_children=8,
        top_k=3,
        embedding_dim=32,
        trainer=quick_search_trainer_config(),
        seed=seed,
    )


def quick_random_config(num_candidates: int = 8, seed: int = 0) -> RandomSearchConfig:
    """Random-search budget for Figure 2."""
    return RandomSearchConfig(
        num_candidates=num_candidates,
        embedding_dim=32,
        trainer=quick_search_trainer_config(),
        seed=seed,
    )


def quick_bayes_config(num_candidates: int = 8, seed: int = 0) -> BayesSearchConfig:
    """Bayes-search budget for Figure 2."""
    return BayesSearchConfig(
        num_candidates=num_candidates,
        initial_random=3,
        embedding_dim=32,
        trainer=quick_search_trainer_config(),
        seed=seed,
    )


def search_step_options(dim: int = 32, seed: int = 0, proxy_epochs: int = 3) -> SearcherOptions:
    """Small uniform budgets for timing one protocol step of every registered searcher.

    Used by :func:`repro.runtime.profiling.time_search_steps` (the ``bench --workload
    search`` row behind ``BENCH_search.json``): one supernet epoch for the ERAS family,
    a handful of candidates with a short ``proxy_epochs`` stand-alone training for the
    baselines -- enough work to measure the per-step cost asymmetry without re-running
    a full search.
    """
    return SearcherOptions(
        num_groups=2,
        search_epochs=1,
        num_candidates=4,
        derive_samples=8,
        dim=dim,
        seed=seed,
        proxy_epochs=proxy_epochs,
    )


# ---------------------------------------------------------------------------- training helpers
def train_structure(
    graph: KnowledgeGraph,
    scorer: BlockStructure | ScoringFunction,
    dim: int = 48,
    epochs: int = 30,
    seed: int = 0,
) -> Tuple[KGEModel, TrainingResult]:
    """Train a single-group model with one scoring function and return it with its result."""
    model = KGEModel(graph.num_entities, graph.num_relations, dim=dim, scorers=scorer, seed=seed)
    result = Trainer(quick_trainer_config(epochs=epochs, seed=seed)).fit(model, graph)
    return model, result


def train_candidate(
    graph: KnowledgeGraph,
    candidate: Candidate,
    assignment: Optional[np.ndarray] = None,
    dim: int = 48,
    epochs: int = 30,
    seed: int = 0,
) -> Tuple[KGEModel, TrainingResult]:
    """Re-train a searched (possibly relation-aware) candidate from scratch."""
    model = KGEModel(
        graph.num_entities,
        graph.num_relations,
        dim=dim,
        scorers=list(candidate.structures),
        assignment=assignment,
        seed=seed,
    )
    result = Trainer(quick_trainer_config(epochs=epochs, seed=seed)).fit(model, graph)
    return model, result


def retrain_searched(
    graph: KnowledgeGraph,
    result,
    dim: int = 48,
    epochs: int = 40,
    rerank_epochs: int = 12,
    seed: int = 0,
) -> Tuple[KGEModel, TrainingResult]:
    """Final re-training of a :class:`~repro.search.result.SearchResult`.

    When the searcher exposes several top candidates (``extras['top_candidates']``), they
    are first re-ranked with a short stand-alone training run and the winner is trained
    with the full budget.  This re-ranking step reduces the variance of the one-shot proxy
    at the small CPU scale of this reproduction; with a single candidate it degenerates to
    the paper's protocol (train the derived structure from scratch).
    """
    candidates = list(result.extras.get("top_candidates", [])) or [result.best_candidate]
    assignment = result.best_assignment
    if len(candidates) == 1:
        return train_candidate(graph, candidates[0], assignment, dim=dim, epochs=epochs, seed=seed)
    best_candidate, best_mrr = None, -np.inf
    for index, candidate in enumerate(candidates):
        _, short_run = train_candidate(
            graph, candidate, assignment, dim=max(16, dim // 2), epochs=rerank_epochs, seed=seed + index
        )
        if short_run.best_valid_mrr > best_mrr:
            best_candidate, best_mrr = candidate, short_run.best_valid_mrr
    return train_candidate(graph, best_candidate, assignment, dim=dim, epochs=epochs, seed=seed)
