"""Helpers shared by the ``benchmarks/`` harness: table/series formatting and the
standard experiment workloads (dataset + budget presets) used to regenerate every table
and figure of the paper."""

from repro.bench.reporting import (
    TableReport,
    SeriesReport,
    format_table,
    summarize_latencies,
    write_bench_json,
)
from repro.bench.workloads import (
    BENCH_DATASETS,
    bench_graph,
    quick_trainer_config,
    quick_eras_config,
    quick_autosf_config,
    quick_random_config,
    quick_bayes_config,
    search_step_options,
    train_structure,
    train_candidate,
    retrain_searched,
)

__all__ = [
    "TableReport",
    "SeriesReport",
    "format_table",
    "summarize_latencies",
    "write_bench_json",
    "BENCH_DATASETS",
    "bench_graph",
    "quick_trainer_config",
    "quick_eras_config",
    "quick_autosf_config",
    "quick_random_config",
    "quick_bayes_config",
    "search_step_options",
    "train_structure",
    "train_candidate",
    "retrain_searched",
]
