"""Reproduction of ERAS: Efficient Relation-aware Scoring Function Search for KG Embedding.

The package is organised as a stack of subsystems:

- :mod:`repro.autodiff` -- reverse-mode automatic differentiation over NumPy arrays.
- :mod:`repro.nn` -- neural-network layers, losses and optimisers built on the autodiff engine.
- :mod:`repro.kg` -- knowledge-graph data structures, loaders, sampling and relation-pattern
  analysis.
- :mod:`repro.datasets` -- pattern-controlled synthetic generators standing in for the public
  benchmarks (WN18, WN18RR, FB15k, FB15k-237, YAGO3-10).
- :mod:`repro.scoring` -- bilinear block-structure scoring functions (the AutoSF/ERAS search
  space) plus classic hand-designed scoring functions.
- :mod:`repro.models` -- KG embedding models and trainers.
- :mod:`repro.eval` -- filtered link-prediction ranking, relation-pattern metrics, triplet
  classification and correlation analyses.
- :mod:`repro.search` -- the paper's contribution: the ERAS relation-aware one-shot search,
  together with AutoSF, random and Bayesian search baselines and the ablation variants.
- :mod:`repro.bench` -- helpers used by the ``benchmarks/`` harness to regenerate every table
  and figure of the paper.
- :mod:`repro.stream` -- live-graph streaming: validated :class:`~repro.stream.GraphDelta`
  mutations producing versioned immutable snapshots with an incremental filter-index merge.
- :mod:`repro.serve` -- the serving subsystem: a versioned model artifact registry and a
  batched link-prediction inference engine with micro-batching and result caches.
- :mod:`repro.runtime` -- the runtime layer on top of everything: the parallel
  :class:`~repro.runtime.evaluation.EvaluationPool` with its structure-keyed cache, JSON
  checkpoint/resume of searches, the :class:`~repro.runtime.runner.SearchRunner` pipeline
  facade and the ``python -m repro`` CLI (see ``docs/CLI.md``).
"""

from repro.version import __version__

__all__ = ["__version__"]
