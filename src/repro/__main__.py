"""Entry point of ``python -m repro``.

Dispatches to :mod:`repro.runtime.cli`, which documents the ``search`` / ``train`` /
``serve`` / ``bench`` subcommands; see ``docs/CLI.md`` for copy-pasteable invocations.
"""

import sys

from repro.runtime.cli import main

if __name__ == "__main__":
    sys.exit(main())
