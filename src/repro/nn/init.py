"""Parameter initialisation schemes."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import SeedLike, new_rng


def uniform(shape, low: float = -0.1, high: float = 0.1, seed: SeedLike = None) -> np.ndarray:
    """Uniform initialisation in ``[low, high)``."""
    rng = new_rng(seed)
    return rng.uniform(low, high, size=shape)


def normal(shape, mean: float = 0.0, std: float = 0.01, seed: SeedLike = None) -> np.ndarray:
    """Gaussian initialisation."""
    rng = new_rng(seed)
    return rng.normal(mean, std, size=shape)


def xavier_uniform(shape, gain: float = 1.0, seed: SeedLike = None) -> np.ndarray:
    """Glorot/Xavier uniform initialisation for 2-D weight matrices."""
    if len(shape) < 2:
        raise ValueError("xavier_uniform requires a shape with at least two dimensions")
    fan_in, fan_out = shape[-2], shape[-1]
    limit = gain * np.sqrt(6.0 / (fan_in + fan_out))
    rng = new_rng(seed)
    return rng.uniform(-limit, limit, size=shape)


def xavier_normal(shape, gain: float = 1.0, seed: SeedLike = None) -> np.ndarray:
    """Glorot/Xavier normal initialisation for 2-D weight matrices."""
    if len(shape) < 2:
        raise ValueError("xavier_normal requires a shape with at least two dimensions")
    fan_in, fan_out = shape[-2], shape[-1]
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    rng = new_rng(seed)
    return rng.normal(0.0, std, size=shape)


def zeros(shape) -> np.ndarray:
    """All-zero initialisation (used for biases)."""
    return np.zeros(shape, dtype=np.float64)
