"""Basic layers: embedding tables and affine maps."""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.autodiff import Tensor
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.utils.rng import SeedLike

IndexLike = Union[np.ndarray, Sequence[int], int]


class Embedding(Module):
    """A lookup table mapping integer ids to dense vectors.

    Entity and relation embeddings of every KG embedding model in this library are
    instances of this layer; gradients flow only into the rows that were looked up.
    """

    def __init__(self, num_embeddings: int, dim: int, scale: float = 0.1, seed: SeedLike = None) -> None:
        super().__init__()
        if num_embeddings <= 0 or dim <= 0:
            raise ValueError("num_embeddings and dim must be positive")
        self.num_embeddings = num_embeddings
        self.dim = dim
        if scale == 0.0:
            # uniform(-0, 0) would fill the table with zeros anyway; calloc-backed
            # zeros keep the pages untouched, which artifact loaders rely on when the
            # real weights arrive afterwards as memory-mapped arrays.
            table = np.zeros((num_embeddings, dim), dtype=np.float64)
        else:
            table = init.uniform((num_embeddings, dim), -scale, scale, seed=seed)
        self.weight = Parameter(table, name="embedding")

    def forward(self, indices: IndexLike) -> Tensor:
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= self.num_embeddings):
            raise IndexError(
                f"embedding index out of range: valid ids are [0, {self.num_embeddings}), "
                f"got range [{indices.min()}, {indices.max()}]"
            )
        return self.weight[indices]

    def all(self) -> Tensor:
        """The full table as a tensor (used for 1-vs-all scoring)."""
        return self.weight

    def __repr__(self) -> str:
        return f"Embedding(num_embeddings={self.num_embeddings}, dim={self.dim})"


class Linear(Module):
    """Affine transformation ``y = x W + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True, seed: SeedLike = None) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("in_features and out_features must be positive")
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((in_features, out_features), seed=seed), name="weight")
        self.has_bias = bias
        if bias:
            self.bias = Parameter(init.zeros((out_features,)), name="bias")

    def forward(self, x: Tensor) -> Tensor:
        x = Tensor._lift(x)
        out = x @ self.weight
        if self.has_bias:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return f"Linear(in_features={self.in_features}, out_features={self.out_features}, bias={self.has_bias})"
