"""LSTM cell and layer.

The ERAS controller (Section IV-B of the paper) samples architecture decisions
autoregressively with an LSTM; REINFORCE gradients therefore have to flow through the
recurrent computation, which this implementation supports out of the box.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.autodiff import Tensor
from repro.autodiff.functional import concat
from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.utils.rng import SeedLike, new_rng, spawn_rng


class LSTMCell(Module):
    """A single LSTM step: ``(x_t, (h, c)) -> (h', c')``."""

    def __init__(self, input_size: int, hidden_size: int, seed: SeedLike = None) -> None:
        super().__init__()
        if input_size <= 0 or hidden_size <= 0:
            raise ValueError("input_size and hidden_size must be positive")
        self.input_size = input_size
        self.hidden_size = hidden_size
        rng = new_rng(seed)
        seeds = spawn_rng(rng, 2)
        # One fused affine map produces the four gates (input, forget, cell, output).
        self.input_map = Linear(input_size, 4 * hidden_size, seed=seeds[0])
        self.hidden_map = Linear(hidden_size, 4 * hidden_size, bias=False, seed=seeds[1])

    def initial_state(self, batch_size: int = 1) -> Tuple[Tensor, Tensor]:
        """Zero hidden and cell states."""
        zeros = Tensor([[0.0] * self.hidden_size for _ in range(batch_size)])
        return zeros, Tensor(zeros.data.copy())

    def forward(self, x: Tensor, state: Optional[Tuple[Tensor, Tensor]] = None) -> Tuple[Tensor, Tensor]:
        x = Tensor._lift(x)
        if x.ndim != 2:
            raise ValueError(f"LSTMCell expects input of shape (batch, input_size), got {x.shape}")
        if state is None:
            state = self.initial_state(x.shape[0])
        hidden, cell = state
        gates = self.input_map(x) + self.hidden_map(hidden)
        h = self.hidden_size
        input_gate = gates[:, 0:h].sigmoid()
        forget_gate = gates[:, h : 2 * h].sigmoid()
        candidate = gates[:, 2 * h : 3 * h].tanh()
        output_gate = gates[:, 3 * h : 4 * h].sigmoid()
        new_cell = forget_gate * cell + input_gate * candidate
        new_hidden = output_gate * new_cell.tanh()
        return new_hidden, new_cell


class LSTM(Module):
    """A single-layer LSTM unrolled over a sequence of shape (batch, time, input_size)."""

    def __init__(self, input_size: int, hidden_size: int, seed: SeedLike = None) -> None:
        super().__init__()
        self.cell = LSTMCell(input_size, hidden_size, seed=seed)
        self.hidden_size = hidden_size

    def forward(self, sequence: Tensor, state: Optional[Tuple[Tensor, Tensor]] = None) -> Tuple[Tensor, Tuple[Tensor, Tensor]]:
        sequence = Tensor._lift(sequence)
        if sequence.ndim != 3:
            raise ValueError(f"LSTM expects input of shape (batch, time, input_size), got {sequence.shape}")
        batch, time, _ = sequence.shape
        if state is None:
            state = self.cell.initial_state(batch)
        hidden, cell = state
        outputs = []
        for t in range(time):
            hidden, cell = self.cell(sequence[:, t, :], (hidden, cell))
            outputs.append(hidden.reshape(batch, 1, self.hidden_size))
        return concat(outputs, axis=1), (hidden, cell)
