"""Optimisers: SGD, Adagrad (used for KG embeddings in the paper) and Adam (controller).

All optimisers support decoupled L2 penalty (``weight_decay``) and an optional
multiplicative learning-rate decay applied once per :meth:`Optimizer.decay_lr` call,
matching the "learning rate, L2 penalty, decay rate" hyper-parameters the paper tunes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base class holding the parameter list and the shared update bookkeeping."""

    def __init__(self, parameters: Iterable[Parameter], lr: float, weight_decay: float = 0.0) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be non-negative, got {weight_decay}")
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        self.lr = lr
        self.weight_decay = weight_decay

    def zero_grad(self) -> None:
        """Clear every parameter's gradient."""
        for parameter in self.parameters:
            parameter.zero_grad()

    def decay_lr(self, factor: float) -> None:
        """Multiply the learning rate by ``factor`` (e.g. per-epoch decay)."""
        if factor <= 0:
            raise ValueError(f"decay factor must be positive, got {factor}")
        self.lr *= factor

    def _gradient(self, parameter: Parameter) -> np.ndarray:
        grad = parameter.grad if parameter.grad is not None else np.zeros_like(parameter.data)
        if self.weight_decay:
            grad = grad + self.weight_decay * parameter.data
        return grad

    def step(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------ persistence
    def state_dict(self) -> Dict[str, object]:
        """Copy of the optimiser's mutable state (subclasses add their buffers).

        Buffers are listed in parameter order, so a state dict can only be restored
        into an optimiser built over the same parameter list (checked on load).  Used
        by the runtime checkpointing (:mod:`repro.runtime.checkpoint`) to make a
        resumed search bit-identical to an uninterrupted one.
        """
        return {"lr": self.lr}

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore state saved by :meth:`state_dict` into this optimiser."""
        self.lr = float(state["lr"])

    def _load_buffers(self, target: List[np.ndarray], saved: List[object], label: str) -> None:
        if len(saved) != len(target):
            raise ValueError(
                f"{label} state has {len(saved)} buffers but the optimiser holds "
                f"{len(target)} parameters"
            )
        for buffer, value in zip(target, saved):
            value = np.asarray(value, dtype=buffer.dtype)
            if value.shape != buffer.shape:
                raise ValueError(f"{label} buffer shape mismatch: {value.shape} vs {buffer.shape}")
            buffer[...] = value


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr, weight_decay)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for parameter, velocity in zip(self.parameters, self._velocity):
            grad = self._gradient(parameter)
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = velocity
            else:
                update = grad
            parameter.data = parameter.data - self.lr * update

    def state_dict(self) -> Dict[str, object]:
        state = super().state_dict()
        state["velocity"] = [buffer.copy() for buffer in self._velocity]
        return state

    def load_state_dict(self, state: Dict[str, object]) -> None:
        super().load_state_dict(state)
        self._load_buffers(self._velocity, state["velocity"], "SGD velocity")


class Adagrad(Optimizer):
    """Adagrad (Duchi et al., 2011); the paper optimises KG embeddings with it."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.1,
        eps: float = 1e-10,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr, weight_decay)
        self.eps = eps
        self._accumulator = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for parameter, accumulator in zip(self.parameters, self._accumulator):
            grad = self._gradient(parameter)
            accumulator += grad**2
            parameter.data = parameter.data - self.lr * grad / (np.sqrt(accumulator) + self.eps)

    def state_dict(self) -> Dict[str, object]:
        state = super().state_dict()
        state["accumulator"] = [buffer.copy() for buffer in self._accumulator]
        return state

    def load_state_dict(self, state: Dict[str, object]) -> None:
        super().load_state_dict(state)
        self._load_buffers(self._accumulator, state["accumulator"], "Adagrad accumulator")


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2014); the paper optimises the LSTM controller with it."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.001,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr, weight_decay)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.betas = (beta1, beta2)
        self.eps = eps
        self._step_count = 0
        self._first_moment = [np.zeros_like(p.data) for p in self.parameters]
        self._second_moment = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        beta1, beta2 = self.betas
        self._step_count += 1
        bias1 = 1.0 - beta1**self._step_count
        bias2 = 1.0 - beta2**self._step_count
        for parameter, first, second in zip(self.parameters, self._first_moment, self._second_moment):
            grad = self._gradient(parameter)
            first *= beta1
            first += (1.0 - beta1) * grad
            second *= beta2
            second += (1.0 - beta2) * grad**2
            corrected_first = first / bias1
            corrected_second = second / bias2
            parameter.data = parameter.data - self.lr * corrected_first / (np.sqrt(corrected_second) + self.eps)

    def state_dict(self) -> Dict[str, object]:
        state = super().state_dict()
        state["step_count"] = self._step_count
        state["first_moment"] = [buffer.copy() for buffer in self._first_moment]
        state["second_moment"] = [buffer.copy() for buffer in self._second_moment]
        return state

    def load_state_dict(self, state: Dict[str, object]) -> None:
        super().load_state_dict(state)
        self._step_count = int(state["step_count"])
        self._load_buffers(self._first_moment, state["first_moment"], "Adam first moment")
        self._load_buffers(self._second_moment, state["second_moment"], "Adam second moment")
