"""``Module`` / ``Parameter`` base classes, loosely mirroring the PyTorch API surface
that the original ERAS code relies on (named parameters, zero_grad, state dicts)."""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

import numpy as np

from repro.autodiff import Tensor


class Parameter(Tensor):
    """A tensor that is registered as a trainable parameter of a :class:`Module`."""

    def __init__(self, data, name: str | None = None) -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for layers and models.

    Sub-modules and parameters assigned as attributes are discovered automatically, so
    models can be written in the familiar imperative style::

        class MyModel(Module):
            def __init__(self):
                super().__init__()
                self.entities = Embedding(100, 16)

            def forward(self, idx):
                return self.entities(idx)
    """

    def __init__(self) -> None:
        self._parameters: Dict[str, Parameter] = {}
        self._modules: Dict[str, "Module"] = {}
        self.training = True

    # ------------------------------------------------------------------ registration
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    def register_parameter(self, name: str, parameter: Parameter) -> None:
        """Explicitly register a parameter under ``name``."""
        self._parameters[name] = parameter
        object.__setattr__(self, name, parameter)

    # ------------------------------------------------------------------ traversal
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(qualified_name, parameter)`` for this module and all sub-modules."""
        for name, parameter in self._parameters.items():
            yield (f"{prefix}{name}", parameter)
        for module_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{module_name}.")

    def parameters(self) -> list[Parameter]:
        """All trainable parameters of this module and its sub-modules."""
        return [parameter for _, parameter in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        """Yield ``(qualified_name, module)`` for this module and all sub-modules."""
        yield (prefix.rstrip("."), self)
        for module_name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{module_name}.")

    # ------------------------------------------------------------------ training state
    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for parameter in self.parameters():
            parameter.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects dropout-style layers)."""
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        """Switch to evaluation mode."""
        return self.train(False)

    # ------------------------------------------------------------------ persistence
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of every parameter's data keyed by qualified name."""
        return {name: parameter.data.copy() for name, parameter in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameter values saved by :meth:`state_dict`.

        Raises ``KeyError`` for missing entries and ``ValueError`` for shape mismatches.
        """
        parameters = dict(self.named_parameters())
        missing = set(parameters) - set(state)
        if missing:
            raise KeyError(f"state dict is missing parameters: {sorted(missing)}")
        for name, parameter in parameters.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != parameter.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: expected {parameter.data.shape}, got {value.shape}"
                )
            parameter.data = value.copy()

    # ------------------------------------------------------------------ call protocol
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        children = ", ".join(self._modules)
        return f"{type(self).__name__}({children})"
