"""Neural-network substrate: parameters, layers, losses and optimisers.

Built entirely on :mod:`repro.autodiff`; provides what the ERAS reproduction needs:
embedding tables for entities/relations, linear layers and an LSTM cell for the REINFORCE
controller, the multiclass log-loss used to train KG embeddings, and the Adagrad / Adam
optimisers the paper uses for embeddings and controller respectively.
"""

from repro.nn.module import Module, Parameter
from repro.nn.layers import Embedding, Linear
from repro.nn.lstm import LSTMCell, LSTM
from repro.nn import init
from repro.nn.optim import SGD, Adagrad, Adam, Optimizer
from repro.nn.losses import (
    MulticlassLogLoss,
    BCEWithLogitsLoss,
    MarginRankingLoss,
)

__all__ = [
    "Module",
    "Parameter",
    "Embedding",
    "Linear",
    "LSTMCell",
    "LSTM",
    "init",
    "Optimizer",
    "SGD",
    "Adagrad",
    "Adam",
    "MulticlassLogLoss",
    "BCEWithLogitsLoss",
    "MarginRankingLoss",
]
