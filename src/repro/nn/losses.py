"""Loss modules wrapping the functional losses in :mod:`repro.autodiff.functional`."""

from __future__ import annotations

import numpy as np

from repro.autodiff import Tensor, functional as F
from repro.nn.module import Module


class MulticlassLogLoss(Module):
    """Softmax cross-entropy over all candidate entities (Lacroix et al., 2018).

    This is the training objective used by AutoSF and ERAS: for each training triple the
    model scores every entity as the candidate tail (respectively head) and the true
    entity is the target class.
    """

    def __init__(self, reduction: str = "mean") -> None:
        super().__init__()
        self.reduction = reduction

    def forward(self, logits: Tensor, targets: np.ndarray) -> Tensor:
        return F.cross_entropy(logits, targets, reduction=self.reduction)


class BCEWithLogitsLoss(Module):
    """Binary cross-entropy from logits, used for triplet-classification style training."""

    def __init__(self, reduction: str = "mean") -> None:
        super().__init__()
        self.reduction = reduction

    def forward(self, logits: Tensor, targets: np.ndarray) -> Tensor:
        return F.binary_cross_entropy_with_logits(logits, targets, reduction=self.reduction)


class MarginRankingLoss(Module):
    """Margin-based ranking loss, used by the translational baselines (TransE)."""

    def __init__(self, margin: float = 1.0, reduction: str = "mean") -> None:
        super().__init__()
        if margin < 0:
            raise ValueError(f"margin must be non-negative, got {margin}")
        self.margin = margin
        self.reduction = reduction

    def forward(self, positive_scores: Tensor, negative_scores: Tensor) -> Tensor:
        return F.margin_ranking_loss(positive_scores, negative_scores, self.margin, reduction=self.reduction)
