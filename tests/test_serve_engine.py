"""Tests for the link-prediction engine and the micro-batching service facade."""

import time

import numpy as np
import pytest

from repro.autodiff import no_grad
from repro.kg import FilterIndex, Vocabulary
from repro.serve import (
    LinkPredictionEngine,
    LinkQuery,
    ModelArtifactRegistry,
    PredictionService,
    ServiceConfig,
)


def _raw_scores(model, query):
    triples = np.array([[query.anchor if query.direction == "tail" else 0,
                         query.relation,
                         query.anchor if query.direction == "head" else 0]], dtype=np.int64)
    with no_grad():
        if query.direction == "tail":
            return model.score_all_tails(triples).data[0]
        return model.score_all_heads(triples).data[0]


class TestLinkQuery:
    def test_requires_exactly_one_anchor(self):
        with pytest.raises(ValueError):
            LinkQuery(relation=0)
        with pytest.raises(ValueError):
            LinkQuery(relation=0, head=1, tail=2)
        with pytest.raises(ValueError):
            LinkQuery(relation=0, head=1, k=0)

    def test_direction_and_anchor(self):
        tail_query = LinkQuery(relation=1, head=3)
        head_query = LinkQuery(relation=1, tail=4)
        assert (tail_query.direction, tail_query.anchor) == ("tail", 3)
        assert (head_query.direction, head_query.anchor) == ("head", 4)


class TestLinkPredictionEngine:
    def test_unfiltered_top_k_matches_direct_scoring(self, tiny_graph, trained_tiny_model):
        engine = LinkPredictionEngine(trained_tiny_model, filtered=False)
        for query in (LinkQuery(relation=2, head=5, k=7), LinkQuery(relation=1, tail=8, k=7)):
            result = engine.top_k(relation=query.relation, head=query.head, tail=query.tail, k=query.k)
            scores = _raw_scores(trained_tiny_model, query)
            expected = np.argsort(-scores, kind="stable")[: query.k]
            np.testing.assert_array_equal(np.sort(result.entities), np.sort(expected))
            np.testing.assert_allclose(result.scores, np.sort(scores)[::-1][: query.k])
            # Best-first ordering.
            assert list(result.scores) == sorted(result.scores, reverse=True)

    def test_filtered_excludes_known_triples(self, tiny_graph, trained_tiny_model):
        index = FilterIndex.from_graph(tiny_graph)
        engine = LinkPredictionEngine(trained_tiny_model, filter_index=index)
        head, relation = int(tiny_graph.train.heads[0]), int(tiny_graph.train.relations[0])
        known = index.known_tails(head, relation)
        assert known  # the triple itself is known
        result = engine.top_k(relation=relation, head=head, k=tiny_graph.num_entities)
        assert known.isdisjoint(set(result.entities.tolist()))
        assert len(result) == tiny_graph.num_entities - len(known)

    def test_batched_predict_matches_individual_queries(self, tiny_graph, trained_tiny_model):
        queries = [
            LinkQuery(relation=0, head=1, k=5),
            LinkQuery(relation=2, tail=3, k=4),
            LinkQuery(relation=1, head=7, k=6),
            LinkQuery(relation=1, tail=7, k=6),
        ]
        batched = LinkPredictionEngine(trained_tiny_model, filtered=False, cache_size=0).predict(queries)
        for query, result in zip(queries, batched):
            single = LinkPredictionEngine(trained_tiny_model, filtered=False, cache_size=0).top_k(
                relation=query.relation, head=query.head, tail=query.tail, k=query.k
            )
            np.testing.assert_array_equal(result.entities, single.entities)
            np.testing.assert_allclose(result.scores, single.scores)

    def test_small_score_batch_size_chunks_consistently(self, tiny_graph, trained_tiny_model):
        queries = [LinkQuery(relation=r % tiny_graph.num_relations, head=e % tiny_graph.num_entities, k=3)
                   for r, e in zip(range(9), range(3, 12))]
        small = LinkPredictionEngine(trained_tiny_model, filtered=False, score_batch_size=2, cache_size=0)
        large = LinkPredictionEngine(trained_tiny_model, filtered=False, cache_size=0)
        for a, b in zip(small.predict(queries), large.predict(queries)):
            np.testing.assert_array_equal(a.entities, b.entities)
        assert small.stats.batches > large.stats.batches

    def test_lru_cache_hits(self, trained_tiny_model):
        engine = LinkPredictionEngine(trained_tiny_model, filtered=False, cache_size=8)
        first = engine.top_k(relation=0, head=2, k=5)
        second = engine.top_k(relation=0, head=2, k=5)
        assert engine.stats.lru_hits == 1
        assert engine.stats.scored == 1
        np.testing.assert_array_equal(first.entities, second.entities)
        # A different k is a different cache entry.
        engine.top_k(relation=0, head=2, k=3)
        assert engine.stats.scored == 2

    def test_lru_eviction(self, trained_tiny_model):
        engine = LinkPredictionEngine(trained_tiny_model, filtered=False, cache_size=2)
        for head in (0, 1, 2):
            engine.top_k(relation=0, head=head, k=3)
        assert engine.cache_info()["lru_entries"] == 2
        engine.top_k(relation=0, head=0, k=3)  # evicted -> re-scored
        assert engine.stats.scored == 4

    def test_precomputed_relation_cache(self, tiny_graph, trained_tiny_model):
        engine = LinkPredictionEngine(trained_tiny_model, filtered=False, cache_size=0)
        engine.precompute_relation(1, direction="tail")
        cold = LinkPredictionEngine(trained_tiny_model, filtered=False, cache_size=0)
        for head in range(0, tiny_graph.num_entities, 5):
            hot = engine.top_k(relation=1, head=head, k=4)
            reference = cold.top_k(relation=1, head=head, k=4)
            np.testing.assert_array_equal(hot.entities, reference.entities)
            np.testing.assert_allclose(hot.scores, reference.scores)
        assert engine.stats.precomputed_hits > 0
        assert engine.stats.scored == 0

    def test_precompute_respects_entity_limit(self, trained_tiny_model):
        engine = LinkPredictionEngine(trained_tiny_model, filtered=False, max_precompute_entities=10)
        with pytest.raises(ValueError, match="refusing to precompute"):
            engine.precompute_relation(0)

    def test_query_validation(self, trained_tiny_model):
        engine = LinkPredictionEngine(trained_tiny_model, filtered=False)
        with pytest.raises(ValueError, match="relation id"):
            engine.top_k(relation=10_000, head=0)
        with pytest.raises(ValueError, match="entity id"):
            engine.top_k(relation=0, head=10_000)

    def test_labels_from_vocab(self, tiny_graph, trained_tiny_model):
        vocab = Vocabulary.from_ids(tiny_graph.num_entities, "entity")
        relation_vocab = Vocabulary.from_ids(tiny_graph.num_relations, "rel")
        engine = LinkPredictionEngine(
            trained_tiny_model, filtered=False, entity_vocab=vocab, relation_vocab=relation_vocab
        )
        result = engine.predict_symbols(relation="rel_1", head="entity_4", k=3)
        assert result.labels == tuple(f"entity_{e}" for e in result.entities)
        assert engine.label(int(result.entities[0])) == result.labels[0]

    def test_from_artifact_falls_back_to_graph_vocabularies(self, tiny_graph, trained_tiny_model, tmp_path):
        # A graph clone that definitely carries vocabularies: when the manifest stores
        # none, from_artifact(graph=...) must pick these up for labelling.
        from repro.kg import KnowledgeGraph

        graph = KnowledgeGraph(
            name=tiny_graph.name,
            num_entities=tiny_graph.num_entities,
            num_relations=tiny_graph.num_relations,
            train=tiny_graph.train,
            valid=tiny_graph.valid,
            test=tiny_graph.test,
            entity_vocab=Vocabulary.from_ids(tiny_graph.num_entities, "entity"),
            relation_vocab=Vocabulary.from_ids(tiny_graph.num_relations, "rel"),
        )
        registry = ModelArtifactRegistry(tmp_path / "registry")
        registry.save("plain", trained_tiny_model)  # manifest stores no vocabularies
        engine = LinkPredictionEngine.from_artifact(registry, "plain", graph=graph)
        result = engine.top_k(relation=0, head=1, k=3)
        assert result.labels == tuple(f"entity_{e}" for e in result.entities)

    def test_round_trip_through_registry_preserves_top_k(self, tiny_graph, trained_tiny_model, tmp_path):
        """Acceptance: saved + reloaded model answers exactly like the in-memory one."""
        registry = ModelArtifactRegistry(tmp_path / "registry")
        registry.save("tiny", trained_tiny_model)
        served = LinkPredictionEngine.from_artifact(registry, "tiny", graph=tiny_graph)
        direct = LinkPredictionEngine.from_graph(trained_tiny_model, tiny_graph)
        for relation in range(tiny_graph.num_relations):
            for head in range(0, tiny_graph.num_entities, 7):
                a = served.top_k(relation=relation, head=head, k=10)
                b = direct.top_k(relation=relation, head=head, k=10)
                np.testing.assert_array_equal(a.entities, b.entities)
                np.testing.assert_allclose(a.scores, b.scores)


class TestTopKDeterminism:
    def test_ties_across_partition_boundary_break_by_entity_id(self):
        from repro.serve.engine import _top_k

        entities, scores = _top_k(np.array([1.0, 0.5, 1.0, 0.5, 0.5]), k=3)
        np.testing.assert_array_equal(entities, [0, 2, 1])
        np.testing.assert_array_equal(scores, [1.0, 1.0, 0.5])
        # All-equal scores: the surviving subset must be the lowest entity ids.
        entities, _ = _top_k(np.zeros(6), k=2)
        np.testing.assert_array_equal(entities, [0, 1])

    def test_filtered_candidates_dropped(self):
        from repro.serve.engine import _top_k

        entities, scores = _top_k(np.array([-np.inf, 2.0, -np.inf, 1.0]), k=4)
        np.testing.assert_array_equal(entities, [1, 3])
        np.testing.assert_array_equal(scores, [2.0, 1.0])


class TestPredictionService:
    def test_submit_flush_result_cycle(self, trained_tiny_model):
        service = PredictionService(LinkPredictionEngine(trained_tiny_model, filtered=False))
        tickets = [service.submit(LinkQuery(relation=0, head=h, k=3)) for h in range(5)]
        assert service.pending_count == 5
        assert service.flush() == 5
        results = [service.result(t) for t in tickets]
        assert all(len(r) == 3 for r in results)
        assert service.stats.total_queries == 5
        assert service.stats.total_batches == 1

    def test_auto_flush_at_max_batch_size(self, trained_tiny_model):
        config = ServiceConfig(max_batch_size=4)
        service = PredictionService(LinkPredictionEngine(trained_tiny_model, filtered=False), config)
        tickets = [service.submit(LinkQuery(relation=0, head=h % 8, k=2)) for h in range(10)]
        # 10 submits with batch size 4 -> two automatic flushes, 2 still pending.
        assert service.stats.total_batches == 2
        assert service.pending_count == 2
        service.flush()
        assert all(len(service.result(t)) == 2 for t in tickets)

    def test_unflushed_ticket_raises(self, trained_tiny_model):
        service = PredictionService(LinkPredictionEngine(trained_tiny_model, filtered=False))
        ticket = service.submit(LinkQuery(relation=0, head=0, k=2))
        with pytest.raises(KeyError, match="no result"):
            service.result(ticket)

    def test_query_and_query_many(self, trained_tiny_model):
        service = PredictionService(LinkPredictionEngine(trained_tiny_model, filtered=False))
        single = service.query(relation=1, head=2, k=4)
        assert len(single) == 4
        many = service.query_many([LinkQuery(relation=1, head=h, k=4) for h in range(6)])
        assert len(many) == 6
        np.testing.assert_array_equal(many[2].entities, service.query(relation=1, head=2, k=4).entities)

    def test_stats_and_cache_tables(self, trained_tiny_model):
        service = PredictionService(LinkPredictionEngine(trained_tiny_model, filtered=False))
        service.query_many([LinkQuery(relation=0, head=h % 5, k=3) for h in range(20)])
        row = service.stats_table().rows[0]
        assert row["queries"] == 20
        assert row["qps"] > 0
        assert row["p95_ms"] >= row["p50_ms"] >= 0
        cache_row = service.cache_table().rows[0]
        assert cache_row["lru_hits"] + cache_row["lru_entries"] > 0
        assert "serving statistics" in service.stats_table().render()

    def test_invalid_k_rejected_not_defaulted(self, trained_tiny_model):
        service = PredictionService(LinkPredictionEngine(trained_tiny_model, filtered=False))
        with pytest.raises(ValueError, match="k must be positive"):
            service.query(relation=0, head=0, k=0)

    def test_unclaimed_results_are_bounded(self, trained_tiny_model):
        config = ServiceConfig(max_batch_size=2, max_unclaimed_results=4)
        service = PredictionService(LinkPredictionEngine(trained_tiny_model, filtered=False), config)
        tickets = [service.submit(LinkQuery(relation=0, head=h, k=2)) for h in range(6)]
        service.flush()
        # The two oldest results were evicted; the four newest remain redeemable.
        for ticket in tickets[:2]:
            with pytest.raises(KeyError):
                service.result(ticket)
        assert all(len(service.result(t)) == 2 for t in tickets[2:])

    def test_query_many_larger_than_unclaimed_bound(self, trained_tiny_model):
        config = ServiceConfig(max_batch_size=4, max_unclaimed_results=4)
        service = PredictionService(LinkPredictionEngine(trained_tiny_model, filtered=False), config)
        results = service.query_many([LinkQuery(relation=0, head=h % 8, k=2) for h in range(11)])
        assert len(results) == 11
        assert all(len(r) == 2 for r in results)

    def test_malformed_submit_rejected_without_poisoning_batch(self, trained_tiny_model):
        service = PredictionService(LinkPredictionEngine(trained_tiny_model, filtered=False))
        good = service.submit(LinkQuery(relation=0, head=0, k=2))
        with pytest.raises(ValueError, match="relation id"):
            service.submit(LinkQuery(relation=9999, head=0, k=2))
        service.flush()
        assert len(service.result(good)) == 2

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServiceConfig(max_batch_size=0)
        with pytest.raises(ValueError):
            ServiceConfig(default_k=0)
        with pytest.raises(ValueError):
            ServiceConfig(max_unclaimed_results=0)
        with pytest.raises(ValueError, match="flush_interval_s"):
            ServiceConfig(flush_interval_s=0.0)
        with pytest.raises(ValueError, match="flush_interval_s"):
            ServiceConfig(flush_interval_s=-1.0)

    def test_unclaimed_eviction_is_oldest_first(self, trained_tiny_model):
        """Eviction must drop tickets in submission order, not arbitrarily."""
        config = ServiceConfig(max_batch_size=2, max_unclaimed_results=2)
        service = PredictionService(LinkPredictionEngine(trained_tiny_model, filtered=False), config)
        tickets = []
        for batch in range(3):  # three auto-flushed batches of 2 -> 6 results, bound 2
            tickets += [service.submit(LinkQuery(relation=0, head=2 * batch + i, k=2)) for i in range(2)]
        for evicted in tickets[:4]:
            with pytest.raises(KeyError, match="no result"):
                service.result(evicted)
        for survivor in tickets[4:]:
            assert len(service.result(survivor)) == 2


class TestTimeBasedFlushing:
    def test_pending_age_tracks_oldest_query(self, trained_tiny_model):
        service = PredictionService(LinkPredictionEngine(trained_tiny_model, filtered=False))
        assert service.pending_age() == 0.0
        service.submit(LinkQuery(relation=0, head=0, k=2))
        time.sleep(0.03)
        first_age = service.pending_age()
        assert first_age >= 0.03
        # a second submit does not reset the age: it is the *oldest* query's age
        service.submit(LinkQuery(relation=0, head=1, k=2))
        assert service.pending_age() >= first_age
        service.flush()
        assert service.pending_age() == 0.0

    def test_flush_if_due_only_after_interval(self, trained_tiny_model):
        config = ServiceConfig(flush_interval_s=0.05)
        service = PredictionService(LinkPredictionEngine(trained_tiny_model, filtered=False), config)
        ticket = service.submit(LinkQuery(relation=0, head=0, k=2))
        assert service.flush_if_due() == 0  # too young
        assert service.pending_count == 1
        time.sleep(0.06)
        assert service.flush_if_due() == 1
        assert len(service.result(ticket)) == 2
        assert service.flush_if_due() == 0  # empty buffer: nothing due

    def test_flush_if_due_disabled_without_interval(self, trained_tiny_model):
        service = PredictionService(LinkPredictionEngine(trained_tiny_model, filtered=False))
        service.submit(LinkQuery(relation=0, head=0, k=2))
        time.sleep(0.02)
        assert service.flush_if_due() == 0  # flush_interval_s=None -> size-based only
        assert service.pending_count == 1

    def test_withdraw_removes_pending_query(self, trained_tiny_model):
        service = PredictionService(LinkPredictionEngine(trained_tiny_model, filtered=False))
        first = service.submit(LinkQuery(relation=0, head=0, k=2))
        second = service.submit(LinkQuery(relation=0, head=1, k=2))
        assert service.withdraw(first) is True
        assert service.withdraw(first) is False  # already gone
        assert service.pending_count == 1
        service.flush()
        assert len(service.result(second)) == 2
        with pytest.raises(KeyError):
            service.result(first)
        # withdrawing the last pending query resets the buffer age
        third = service.submit(LinkQuery(relation=0, head=2, k=2))
        service.withdraw(third)
        assert service.pending_age() == 0.0

    def test_failed_flush_restores_batch_and_age(self, trained_tiny_model):
        class ExplodingEngine:
            def __init__(self, inner):
                self.inner = inner
                self.explode = True

            def validate_query(self, query):
                self.inner.validate_query(query)

            def predict(self, queries):
                if self.explode:
                    raise RuntimeError("transient scoring failure")
                return self.inner.predict(queries)

        engine = ExplodingEngine(LinkPredictionEngine(trained_tiny_model, filtered=False))
        service = PredictionService(engine, ServiceConfig(flush_interval_s=0.01))
        ticket = service.submit(LinkQuery(relation=0, head=0, k=2))
        time.sleep(0.02)
        with pytest.raises(RuntimeError, match="transient"):
            service.flush()
        # the batch is back in the buffer with its original age: still due
        assert service.pending_count == 1
        assert service.pending_age() >= 0.01
        engine.explode = False
        assert service.flush_if_due() == 1
        assert len(service.result(ticket)) == 2
