"""Tests for dataset TSV IO, negative sampling, batch iteration and the filter index."""

import numpy as np
import pytest

from repro.kg import (
    BatchIterator,
    FilterIndex,
    NegativeSampler,
    TripleSet,
    load_tsv_dataset,
    save_tsv_dataset,
)
from repro.kg.sampling import generate_classification_negatives


class TestTsvIO:
    def test_roundtrip(self, tiny_graph, tmp_path):
        directory = save_tsv_dataset(tiny_graph, tmp_path / "tiny")
        loaded = load_tsv_dataset(directory)
        assert loaded.num_entities == tiny_graph.num_entities
        assert loaded.num_relations == tiny_graph.num_relations
        assert len(loaded.train) == len(tiny_graph.train)
        assert len(loaded.test) == len(tiny_graph.test)
        # The triples themselves must be identical up to the id remapping of the loader.
        original = {
            (tiny_graph.entity_vocab.symbol_of(h), tiny_graph.relation_vocab.symbol_of(r),
             tiny_graph.entity_vocab.symbol_of(t))
            for h, r, t in tiny_graph.train
        }
        reloaded = {
            (loaded.entity_vocab.symbol_of(h), loaded.relation_vocab.symbol_of(r),
             loaded.entity_vocab.symbol_of(t))
            for h, r, t in loaded.train
        }
        assert original == reloaded

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_tsv_dataset(tmp_path / "does_not_exist")

    def test_missing_split_file_raises(self, tmp_path):
        (tmp_path / "train.txt").write_text("a\tr\tb\n")
        with pytest.raises(FileNotFoundError):
            load_tsv_dataset(tmp_path)

    def test_malformed_line_raises(self, tmp_path):
        for name in ("train.txt", "valid.txt", "test.txt"):
            (tmp_path / name).write_text("a\tr\tb\n")
        (tmp_path / "train.txt").write_text("a\tr\n")
        with pytest.raises(ValueError):
            load_tsv_dataset(tmp_path)

    def test_crlf_line_endings_are_stripped(self, tmp_path):
        # Windows-edited exports terminate lines with \r\n; the \r must not end up
        # glued onto the tail symbol (which would silently fork the vocabulary).
        (tmp_path / "train.txt").write_bytes(b"a\tr\tb\r\nb\tr\tc\r\n")
        (tmp_path / "valid.txt").write_bytes(b"a\tr\tc\r\n")
        (tmp_path / "test.txt").write_bytes(b"b\tr\ta\r\n")
        graph = load_tsv_dataset(tmp_path)
        assert set(graph.entity_vocab.symbols()) == {"a", "b", "c"}
        assert graph.num_entities == 3 and len(graph.train) == 2

    def test_duplicate_triples_are_dropped_with_warning(self, tmp_path, caplog):
        (tmp_path / "train.txt").write_text("a\tr\tb\na\tr\tb\nb\tr\tc\n")
        (tmp_path / "valid.txt").write_text("a\tr\tc\n")
        (tmp_path / "test.txt").write_text("b\tr\ta\n")
        with caplog.at_level("WARNING", logger="repro.kg.io"):
            graph = load_tsv_dataset(tmp_path)
        assert len(graph.train) == 2  # first occurrence kept, duplicate dropped
        assert any("duplicate" in record.message for record in caplog.records)

    def test_eval_only_symbols_are_loaded_but_warned_about(self, tmp_path, caplog):
        # Entities/relations appearing only in valid/test have no training signal;
        # the loader must keep them (ids must cover the eval splits) but say so.
        (tmp_path / "train.txt").write_text("a\tr\tb\n")
        (tmp_path / "valid.txt").write_text("a\tr\tnew_entity\n")
        (tmp_path / "test.txt").write_text("a\tnew_relation\tb\n")
        with caplog.at_level("WARNING", logger="repro.kg.io"):
            graph = load_tsv_dataset(tmp_path)
        assert "new_entity" in set(graph.entity_vocab.symbols())
        assert "new_relation" in set(graph.relation_vocab.symbols())
        messages = " ".join(record.message for record in caplog.records)
        assert "only in valid/test" in messages


class TestBatchIterator:
    def test_covers_all_triples(self, tiny_graph):
        iterator = BatchIterator(tiny_graph.train, batch_size=16, seed=0)
        total = sum(len(batch) for batch in iterator)
        assert total == len(tiny_graph.train)

    def test_len_matches_iteration(self, tiny_graph):
        iterator = BatchIterator(tiny_graph.train, batch_size=50, seed=0)
        assert len(list(iterator)) == len(iterator)

    def test_drop_last(self, tiny_graph):
        iterator = BatchIterator(tiny_graph.train, batch_size=32, seed=0, drop_last=True)
        assert all(len(batch) == 32 for batch in iterator)

    def test_invalid_batch_size(self, tiny_graph):
        with pytest.raises(ValueError):
            BatchIterator(tiny_graph.train, batch_size=0)


class TestFilterIndex:
    def test_known_lookups(self):
        triples = TripleSet([(0, 0, 1), (0, 0, 2), (3, 1, 1)])
        index = FilterIndex([triples])
        assert index.known_tails(0, 0) == {1, 2}
        assert index.known_heads(1, 1) == {3}
        assert index.contains(0, 0, 1)
        assert not index.contains(9, 9, 9)
        assert len(index) == 3

    def test_masks_exclude_known_but_keep_target(self):
        triples = TripleSet([(0, 0, 1), (0, 0, 2)])
        index = FilterIndex([triples])
        mask = index.tail_filter_mask(0, 0, true_tail=1, num_entities=4)
        assert mask[2] and not mask[1] and not mask[3]
        head_mask = index.head_filter_mask(0, 1, true_head=0, num_entities=4)
        assert not head_mask[0]

    def test_from_graph_covers_all_splits(self, tiny_graph):
        index = FilterIndex.from_graph(tiny_graph)
        assert len(index) == len(tiny_graph.all_triples())


class TestNegativeSampler:
    def test_corrupt_changes_one_slot(self, tiny_graph, rng):
        sampler = NegativeSampler(tiny_graph.num_entities, seed=0)
        positives = tiny_graph.train.array[:50]
        negatives, corrupted_tail = sampler.corrupt(positives)
        assert negatives.shape == positives.shape
        for row in range(len(positives)):
            if corrupted_tail[row]:
                assert negatives[row, 0] == positives[row, 0]
            else:
                assert negatives[row, 2] == positives[row, 2]
            assert negatives[row, 1] == positives[row, 1]

    def test_negatives_per_positive(self, tiny_graph):
        sampler = NegativeSampler(tiny_graph.num_entities, negatives_per_positive=3, seed=0)
        negatives, _ = sampler.corrupt(tiny_graph.train.array[:10])
        assert len(negatives) == 30

    def test_filtered_sampling_avoids_known_true(self, tiny_graph):
        index = FilterIndex.from_graph(tiny_graph)
        sampler = NegativeSampler(tiny_graph.num_entities, filtered=True, filter_index=index, seed=0)
        negatives, _ = sampler.corrupt(tiny_graph.train.array)
        known = sum(index.contains(int(h), int(r), int(t)) for h, r, t in negatives)
        assert known / len(negatives) < 0.1

    def test_filtered_requires_index(self):
        with pytest.raises(ValueError):
            NegativeSampler(10, filtered=True)

    def test_corrupt_heads_and_tails_only(self, tiny_graph):
        sampler = NegativeSampler(tiny_graph.num_entities, seed=0)
        positives = tiny_graph.train.array[:5]
        tails_only = sampler.corrupt_tails(positives)
        np.testing.assert_array_equal(tails_only[:, 0], positives[:, 0])
        heads_only = sampler.corrupt_heads(positives)
        np.testing.assert_array_equal(heads_only[:, 2], positives[:, 2])

    def test_classification_negatives_match_positive_count(self, tiny_graph):
        index = FilterIndex.from_graph(tiny_graph)
        negatives = generate_classification_negatives(tiny_graph.test, tiny_graph.num_entities, index, seed=0)
        assert len(negatives) == len(tiny_graph.test)
