"""Tests for the composite differentiable functions (softmax, losses)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.autodiff import Tensor, check_gradients, functional as F


class TestSoftmaxFamily:
    def test_softmax_rows_sum_to_one(self, rng):
        logits = Tensor(rng.normal(size=(5, 7)))
        probabilities = F.softmax(logits).data
        np.testing.assert_allclose(probabilities.sum(axis=1), np.ones(5), atol=1e-12)
        assert (probabilities >= 0).all()

    def test_log_softmax_matches_softmax_log(self, rng):
        logits = Tensor(rng.normal(size=(3, 4)))
        np.testing.assert_allclose(F.log_softmax(logits).data, np.log(F.softmax(logits).data), atol=1e-10)

    def test_softmax_shift_invariance(self, rng):
        logits = rng.normal(size=(2, 5))
        shifted = logits + 100.0
        np.testing.assert_allclose(F.softmax(Tensor(logits)).data, F.softmax(Tensor(shifted)).data, atol=1e-10)

    def test_logsumexp_matches_numpy(self, rng):
        data = rng.normal(size=(4, 6))
        expected = np.log(np.exp(data).sum(axis=1))
        np.testing.assert_allclose(F.logsumexp(Tensor(data), axis=1).data.reshape(-1), expected, atol=1e-10)

    def test_softmax_gradient(self, rng):
        logits = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        weights = rng.normal(size=(3, 4))
        check_gradients(lambda inputs: (F.softmax(inputs[0]) * Tensor(weights)).sum(), [logits])


class TestCrossEntropy:
    def test_uniform_logits_give_log_classes(self):
        logits = Tensor(np.zeros((2, 4)))
        loss = F.cross_entropy(logits, np.array([0, 3]))
        assert loss.item() == pytest.approx(np.log(4.0))

    def test_perfect_prediction_loss_near_zero(self):
        logits = np.full((2, 3), -100.0)
        logits[0, 1] = 100.0
        logits[1, 2] = 100.0
        loss = F.cross_entropy(Tensor(logits), np.array([1, 2]))
        assert loss.item() == pytest.approx(0.0, abs=1e-8)

    def test_gradient_matches_numerical(self, rng):
        logits = Tensor(rng.normal(size=(4, 5)), requires_grad=True)
        targets = np.array([0, 1, 2, 4])
        check_gradients(lambda inputs: F.cross_entropy(inputs[0], targets), [logits])

    def test_reduction_modes(self, rng):
        logits = Tensor(rng.normal(size=(3, 4)))
        targets = np.array([1, 2, 0])
        mean_loss = F.cross_entropy(logits, targets, reduction="mean").item()
        sum_loss = F.cross_entropy(logits, targets, reduction="sum").item()
        none_loss = F.cross_entropy(logits, targets, reduction="none").data
        assert sum_loss == pytest.approx(mean_loss * 3)
        assert none_loss.shape == (3,)
        with pytest.raises(ValueError):
            F.cross_entropy(logits, targets, reduction="bogus")

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            F.nll_loss(Tensor(np.zeros((2, 3, 4))), np.array([0, 1]))
        with pytest.raises(ValueError):
            F.nll_loss(Tensor(np.zeros((2, 3))), np.array([0]))


class TestOtherLosses:
    def test_bce_with_logits_matches_reference(self, rng):
        logits_data = rng.normal(size=(6,))
        targets = rng.integers(0, 2, size=6).astype(float)
        loss = F.binary_cross_entropy_with_logits(Tensor(logits_data), targets).item()
        probabilities = 1.0 / (1.0 + np.exp(-logits_data))
        reference = -(targets * np.log(probabilities) + (1 - targets) * np.log(1 - probabilities)).mean()
        assert loss == pytest.approx(reference, rel=1e-6)

    def test_bce_gradient(self, rng):
        logits = Tensor(rng.normal(size=(5,)), requires_grad=True)
        targets = rng.integers(0, 2, size=5).astype(float)
        check_gradients(lambda inputs: F.binary_cross_entropy_with_logits(inputs[0], targets), [logits])

    def test_margin_ranking_loss_zero_when_separated(self):
        positive = Tensor([5.0, 6.0])
        negative = Tensor([1.0, 2.0])
        assert F.margin_ranking_loss(positive, negative, margin=1.0).item() == pytest.approx(0.0)

    def test_margin_ranking_loss_positive_when_violated(self):
        positive = Tensor([1.0])
        negative = Tensor([1.5])
        assert F.margin_ranking_loss(positive, negative, margin=1.0).item() == pytest.approx(1.5)

    def test_softplus_positive_and_accurate(self, rng):
        data = rng.normal(size=(10,)) * 5
        values = F.softplus(Tensor(data)).data
        np.testing.assert_allclose(values, np.log1p(np.exp(-np.abs(data))) + np.maximum(data, 0), atol=1e-10)
        assert (values > 0).all()

    def test_dropout_identity_when_eval_or_zero(self, rng):
        data = rng.normal(size=(4, 4))
        np.testing.assert_allclose(F.dropout(Tensor(data), p=0.0).data, data)
        np.testing.assert_allclose(F.dropout(Tensor(data), p=0.5, training=False).data, data)

    def test_dropout_validates_probability(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor([1.0]), p=1.0)


@settings(max_examples=25, deadline=None)
@given(
    batch=st.integers(min_value=1, max_value=5),
    classes=st.integers(min_value=2, max_value=6),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_cross_entropy_is_non_negative(batch, classes, seed):
    rng = np.random.default_rng(seed)
    logits = Tensor(rng.normal(size=(batch, classes)))
    targets = rng.integers(0, classes, size=batch)
    assert F.cross_entropy(logits, targets).item() >= 0.0


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_property_softmax_is_permutation_equivariant(seed):
    rng = np.random.default_rng(seed)
    logits = rng.normal(size=(1, 6))
    permutation = rng.permutation(6)
    direct = F.softmax(Tensor(logits[:, permutation])).data
    permuted = F.softmax(Tensor(logits)).data[:, permutation]
    np.testing.assert_allclose(direct, permuted, atol=1e-10)
